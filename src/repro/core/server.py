"""Simulated CausalEC server: the sans-I/O core on the discrete-event runtime.

The protocol itself (Algorithms 1-3) lives in
:class:`~repro.protocol.server_core.ServerCore`, a pure state machine;
this module supplies :class:`CausalECServer`, the class every simulation,
benchmark, and model-checking harness instantiates.  It mixes the core
with the :class:`~repro.runtime.sim.EffectNode` adapter, which delivers
scheduler/network events into the core and interprets the returned effects
(sends, timers, persistence) in order -- bit-for-bit equivalent to the
pre-sans-I/O implementation.

What remains here is exactly the simulation-specific machinery: durable
checkpointing against a :class:`~repro.core.snapshot.DurableStore` (with
optional ARQ channel-state capture) and the crash/restart choreography of
:meth:`halt` / :meth:`on_restart`.

``ServerConfig`` and ``ServerStats`` are re-exported from the protocol
package for backward compatibility.
"""

from __future__ import annotations

from ..core.messages import DigestMsg, RepairRequest, RepairResponse
from ..ec.code import LinearCode
from ..protocol.repair_core import RepairConfig, RepairCore
from ..protocol.scrub_core import ScrubConfig, ScrubCore
from ..protocol.server_core import ServerConfig, ServerCore, ServerStats
from ..runtime.sim import EffectNode
from ..sim.network import Network
from ..sim.node import Node
from ..sim.scheduler import Scheduler

__all__ = ["CausalECServer", "ServerConfig", "ServerStats"]

_REPAIR_MESSAGES = (DigestMsg, RepairRequest, RepairResponse)


class CausalECServer(EffectNode, ServerCore):
    """One CausalEC server node (server index == node id).

    ``repair`` attaches the anti-entropy overlay
    (:class:`~repro.protocol.repair_core.RepairCore`): its ``("rep", ...)``
    timers and digest/repair messages are multiplexed here onto the same
    timer table and message stream the protocol core uses.  ``scrub``
    likewise attaches the bit-rot scrubber
    (:class:`~repro.protocol.scrub_core.ScrubCore`, ``("scrub", ...)``
    timers); each round additionally re-checks this server's durable
    checkpoint slot and heals detected rot by re-persisting from memory.
    """

    def __init__(
        self,
        node_id: int,
        scheduler: Scheduler,
        network: Network,
        code: LinearCode,
        config: ServerConfig | None = None,
        repair: RepairConfig | None = None,
        scrub: ScrubConfig | None = None,
    ):
        Node.__init__(self, node_id, scheduler, network)
        ServerCore.__init__(self, node_id, code, config)
        #: durable storage for crash-recovery; wired by attach_durability().
        self.durable = None
        self._transport = None
        self._timers: dict[tuple, object] = {}
        self.decision_log: list[tuple] = []
        self.repair = None if repair is None else RepairCore(self, repair)
        self.scrub = None if scrub is None else ScrubCore(self, scrub)
        self.interpret(self.boot(self.scheduler.now))
        if self.repair is not None:
            self.interpret(self.repair.boot(self.scheduler.now))
        if self.scrub is not None:
            self.interpret(self.scrub.boot(self.scheduler.now))

    # ------------------------------------------------------------------
    # repair-overlay multiplexing

    def handle_message(self, src: int, msg: object, now: float) -> list:
        if isinstance(msg, _REPAIR_MESSAGES):
            if self.repair is None:
                return []  # overlay disabled here: drop peer repair traffic
            return self.repair.handle_message(src, msg, now)
        return ServerCore.handle_message(self, src, msg, now)

    def handle_timer(self, timer_id: tuple, now: float) -> list:
        if timer_id[0] == "rep":
            if self.repair is None:  # pragma: no cover - defensive
                return []
            return self.repair.handle_timer(timer_id, now)
        if timer_id[0] == "scrub":
            if self.scrub is None:  # pragma: no cover - defensive
                return []
            effects = self.scrub.handle_timer(timer_id, now)
            self._scrub_disk()
            return effects
        return ServerCore.handle_timer(self, timer_id, now)

    def _scrub_disk(self) -> None:
        """Disk-side scrub: re-verify this server's checkpoint slot and
        heal detected rot by re-persisting from live memory."""
        if self.durable is None or self.halted:
            return
        ok = self.durable.verify(self.node_id)
        if ok is None:
            return
        stats = self.scrub.stats
        if ok:
            stats.checkpoints_verified += 1
            return
        stats.checkpoints_corrupt += 1
        self._persist()
        stats.checkpoints_rewritten += 1

    # ------------------------------------------------------------------
    # durability and crash-recovery

    def attach_durability(self, store, transport=None) -> None:
        """Persist eagerly to ``store`` (and snapshot ARQ channel state).

        Eager persistence -- a checkpoint after every handled message and
        timer step -- models a synchronous write-ahead log: every state the
        server has acknowledged to anyone is recoverable, so a restart
        never regresses the causal past (no vector-clock rollback, no
        forgotten writes).  Delivery and persistence happen within one
        scheduler event, i.e. atomically with respect to crash events.
        """
        from .snapshot import capture_server_state  # avoid import cycle

        self.durable = store
        self._transport = transport
        self._capture = capture_server_state
        self._persist()

    def _persist(self) -> None:
        if self.durable is None or self.halted:
            return
        self.stats.persists += 1
        self.durable.persist(self._capture(self, self._transport))

    def halt(self) -> None:
        """Crash: lose volatile state (when durability models it as such)."""
        super().halt()
        if self.durable is not None:
            # wipe in-memory protocol state so recovery demonstrably comes
            # from stable storage, not from simulator memory
            self.wipe_volatile()

    def on_restart(self) -> None:
        """Crash-recovery: reload the last durable snapshot and rejoin.

        The restored ARQ channel state resumes retransmission of anything
        this server sent but never saw acknowledged, and deduplicates
        retransmissions of segments it had already delivered -- together
        with eager persistence this re-establishes the paper's reliable
        FIFO channels across the crash.  The core's
        :meth:`~repro.protocol.server_core.ServerCore.after_restart` then
        re-arms GC timers and re-inquires pending reads.
        """
        from .snapshot import restore_server_state  # avoid import cycle

        self.stats.restarts += 1
        if self.durable is not None:
            checkpoint = self.durable.load(self.node_id)
            if checkpoint is not None:
                restore_server_state(self, checkpoint, self._transport)
        self._timers = {}  # timers died with the old incarnation
        self.interpret(self.after_restart(self.scheduler.now))
        if self.repair is not None:
            # the overlay's round state is volatile: reboot it fresh
            self.interpret(self.repair.boot(self.scheduler.now))
        if self.scrub is not None:
            self.interpret(self.scrub.boot(self.scheduler.now))
