"""Vector clocks and tags (Sec. 3, "State variables").

Each server maintains a vector clock ``vc`` with one component per server.
A *tag* is a pair ``(ts, id)`` of a vector-clock value and a client
identifier; writes are identified by tags (Lemma B.3: every write has a
unique tag).

Tag total order
---------------
The paper totally orders tags by ``t1 < t2 iff ts1 < ts2, or ts1 != ts2 and
id1 < id2``.  Taken literally over *arbitrary* tag pairs this relation is not
transitive (three pairwise-incomparable timestamps can form an id cycle), so
we implement the classic Lamport completion, which refines the same partial
order and is a genuine strict total order on every tag set:

    t1 < t2  iff  (lamport(ts1), id1, ts1) <_lex (lamport(ts2), id2, ts2)

where ``lamport(ts) = sum(ts)``.  If ``ts1 < ts2`` componentwise then
``lamport(ts1) < lamport(ts2)``, so the order refines causal arbitration
exactly as Definition 5(b) requires; among concurrent writes ties fall to the
client id, exactly as in the paper's low-cost variant (Sec. 4.2), which
replaces vector timestamps by Lamport timestamps outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

__all__ = ["VectorClock", "Tag", "zero_tag", "LOCALHOST"]

#: Sentinel client identifier for server-internal reads (the paper's
#: ``localhost``, which is not a member of the client set C).
LOCALHOST = -1


class VectorClock:
    """An immutable vector clock; comparisons follow the componentwise order."""

    __slots__ = ("components", "_lamport")

    def __init__(self, components: tuple[int, ...]):
        self.components = tuple(int(c) for c in components)
        self._lamport = sum(self.components)

    @classmethod
    def zero(cls, n: int) -> "VectorClock":
        return cls((0,) * n)

    def __len__(self) -> int:
        return len(self.components)

    def __getitem__(self, i: int) -> int:
        return self.components[i]

    @property
    def lamport(self) -> int:
        """Sum of components: a Lamport-style scalar refinement."""
        return self._lamport

    def increment(self, i: int) -> "VectorClock":
        comps = list(self.components)
        comps[i] += 1
        return VectorClock(tuple(comps))

    def with_component(self, i: int, value: int) -> "VectorClock":
        comps = list(self.components)
        comps[i] = int(value)
        return VectorClock(tuple(comps))

    def merge(self, other: "VectorClock") -> "VectorClock":
        return VectorClock(
            tuple(max(a, b) for a, b in zip(self.components, other.components))
        )

    # partial order --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, VectorClock) and self.components == other.components
        )

    def __hash__(self) -> int:
        return hash(self.components)

    def leq(self, other: "VectorClock") -> bool:
        """Componentwise <= (the vector-clock partial order)."""
        return all(a <= b for a, b in zip(self.components, other.components))

    def less(self, other: "VectorClock") -> bool:
        return self.leq(other) and self.components != other.components

    def concurrent(self, other: "VectorClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VC{self.components}"


@total_ordering
@dataclass(frozen=True)
class Tag:
    """A write identifier: (vector timestamp, client id)."""

    ts: VectorClock
    client_id: int

    def _key(self) -> tuple[int, int, tuple[int, ...]]:
        return (self.ts.lamport, self.client_id, self.ts.components)

    def __lt__(self, other: "Tag") -> bool:
        if not isinstance(other, Tag):
            return NotImplemented
        return self._key() < other._key()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Tag)
            and self.ts == other.ts
            and self.client_id == other.client_id
        )

    def __hash__(self) -> int:
        return hash((self.ts, self.client_id))

    @property
    def is_zero(self) -> bool:
        return self.ts.lamport == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tag(ts={self.ts.components}, id={self.client_id})"


def zero_tag(n: int) -> Tag:
    """The initial tag (all-zero timestamp, id 0); minimal in the total order."""
    return Tag(VectorClock.zero(n), 0)
