"""State snapshots: structured introspection of servers and clusters.

Debugging a distributed protocol lives or dies on being able to *see* the
state.  :func:`snapshot_server` renders one server's full CausalEC state
(vector clock, codeword tags, history/deletion lists, pending reads,
watermarks) as plain dictionaries; :func:`snapshot_cluster` collects all
servers; :func:`format_snapshot` pretty-prints for humans.  Snapshots are
pure data (tags rendered as tuples) -- safe to diff, serialise, or assert
against in tests.
"""

from __future__ import annotations

from typing import Any

from .server import CausalECServer
from .tags import Tag

__all__ = ["snapshot_server", "snapshot_cluster", "format_snapshot"]


def _tag(t: Tag) -> tuple:
    return (t.ts.components, t.client_id)


def snapshot_server(server: CausalECServer) -> dict[str, Any]:
    """A plain-data snapshot of one server's protocol state."""
    code = server.code
    return {
        "server": server.node_id,
        "halted": server.halted,
        "vc": server.vc.components,
        "objects_stored": sorted(server.objects),
        "codeword_tagvec": {
            x: _tag(server.M.tagvec[x]) for x in range(code.K)
        },
        "codeword_value": server.M.value.tolist(),
        "history": {
            x: sorted(_tag(t) for t in server.L[x].tags())
            for x in range(code.K)
            if len(server.L[x])
        },
        "tmax": {x: _tag(server.tmax[x]) for x in range(code.K)},
        "inqueue_len": len(server.inqueue),
        "pending_reads": [
            {
                "opid": e.opid,
                "client": e.client_id,
                "obj": e.obj,
                "symbols_from": sorted(e.symbols),
            }
            for e in server.readl.entries()
        ],
        "deletion_list_entries": {
            x: server.DelL[x].total_entries() for x in range(code.K)
        },
        "stats": vars(server.stats).copy(),
    }


def snapshot_cluster(cluster) -> dict[str, Any]:
    """Snapshots of every server plus cluster-level aggregates."""
    return {
        "time": cluster.now,
        "servers": [snapshot_server(s) for s in cluster.servers],
        "messages": dict(cluster.network.stats.messages),
        "operations": len(cluster.history),
        "pending_operations": len(cluster.history.pending()),
    }


def format_snapshot(snap: dict[str, Any]) -> str:
    """Human-readable rendering of a server or cluster snapshot."""
    if "servers" in snap:
        lines = [f"cluster @ t={snap['time']:.1f} ms, "
                 f"{snap['operations']} ops ({snap['pending_operations']} pending)"]
        for s in snap["servers"]:
            lines.append(format_snapshot(s))
        return "\n".join(lines)
    lines = [
        f"server {snap['server']}"
        + (" [HALTED]" if snap["halted"] else "")
        + f"  vc={snap['vc']}"
    ]
    lines.append(f"  codeword tags: { {x: t[0] for x, t in snap['codeword_tagvec'].items()} }")
    if snap["history"]:
        for x, tags in snap["history"].items():
            lines.append(f"  L[X{x + 1}]: {len(tags)} version(s)")
    if snap["pending_reads"]:
        lines.append(f"  pending reads: {len(snap['pending_reads'])}")
    if snap["inqueue_len"]:
        lines.append(f"  inqueue: {snap['inqueue_len']} waiting")
    return "\n".join(lines)
