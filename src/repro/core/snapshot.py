"""State snapshots: introspection and durable crash-recovery checkpoints.

Debugging a distributed protocol lives or dies on being able to *see* the
state.  :func:`snapshot_server` renders one server's full CausalEC state
(vector clock, codeword tags, history/deletion lists, pending reads,
watermarks) as plain dictionaries; :func:`snapshot_cluster` collects all
servers; :func:`format_snapshot` pretty-prints for humans.  Snapshots are
pure data (tags rendered as tuples) -- safe to diff, serialise, or assert
against in tests.

The second half of the module is *durable* snapshotting for crash-recovery:
:func:`capture_server_state` deep-copies everything a server needs to
resume (protocol state plus, when an ARQ transport is attached, its channel
state), a :class:`DurableStore` models each server's stable storage, and
:func:`restore_server_state` reinstalls a checkpoint into a restarted
server.  Servers persist eagerly -- after every handled message and timer
step -- which models a synchronous write-ahead log: anything a server ever
acknowledged (including transport-level acks) is on disk, so recovery never
regresses the causal past the rest of the system may have observed.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

from .server import CausalECServer
from .tags import Tag

__all__ = [
    "snapshot_server",
    "snapshot_cluster",
    "format_snapshot",
    "ServerCheckpoint",
    "CorruptCheckpoint",
    "DurableStore",
    "capture_server_state",
    "restore_server_state",
]


def _tag(t: Tag) -> tuple:
    return (t.ts.components, t.client_id)


def snapshot_server(server: CausalECServer) -> dict[str, Any]:
    """A plain-data snapshot of one server's protocol state."""
    code = server.code
    return {
        "server": server.node_id,
        "halted": server.halted,
        "vc": server.vc.components,
        "objects_stored": sorted(server.objects),
        "codeword_tagvec": {
            x: _tag(server.M.tagvec[x]) for x in range(code.K)
        },
        "codeword_value": server.M.value.tolist(),
        "history": {
            x: sorted(_tag(t) for t in server.L[x].tags())
            for x in range(code.K)
            if len(server.L[x])
        },
        "tmax": {x: _tag(server.tmax[x]) for x in range(code.K)},
        "inqueue_len": len(server.inqueue),
        "pending_reads": [
            {
                "opid": e.opid,
                "client": e.client_id,
                "obj": e.obj,
                "symbols_from": sorted(e.symbols),
            }
            for e in server.readl.entries()
        ],
        "deletion_list_entries": {
            x: server.DelL[x].total_entries() for x in range(code.K)
        },
        "stats": vars(server.stats).copy(),
    }


def snapshot_cluster(cluster) -> dict[str, Any]:
    """Snapshots of every server plus cluster-level aggregates."""
    return {
        "time": cluster.now,
        "servers": [snapshot_server(s) for s in cluster.servers],
        "messages": dict(cluster.network.stats.messages),
        "operations": len(cluster.history),
        "pending_operations": len(cluster.history.pending()),
    }


def format_snapshot(snap: dict[str, Any]) -> str:
    """Human-readable rendering of a server or cluster snapshot."""
    if "servers" in snap:
        lines = [f"cluster @ t={snap['time']:.1f} ms, "
                 f"{snap['operations']} ops ({snap['pending_operations']} pending)"]
        for s in snap["servers"]:
            lines.append(format_snapshot(s))
        return "\n".join(lines)
    lines = [
        f"server {snap['server']}"
        + (" [HALTED]" if snap["halted"] else "")
        + f"  vc={snap['vc']}"
    ]
    lines.append(f"  codeword tags: { {x: t[0] for x, t in snap['codeword_tagvec'].items()} }")
    if snap["history"]:
        for x, tags in snap["history"].items():
            lines.append(f"  L[X{x + 1}]: {len(tags)} version(s)")
    if snap["pending_reads"]:
        lines.append(f"  pending reads: {len(snap['pending_reads'])}")
    if snap["inqueue_len"]:
        lines.append(f"  inqueue: {snap['inqueue_len']} waiting")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Durable checkpoints (crash-recovery)

#: CausalECServer attributes that constitute recoverable protocol state.
#: Volatile machinery (timers, stats counters, the visibility log) is
#: deliberately excluded: timers belong to an incarnation, and stats/logs
#: are measurement artefacts of the simulation, not protocol state.
_DURABLE_ATTRS = (
    "vc",
    "inqueue",
    "L",
    "DelL",
    "readl",
    "tmax",
    "M",
    "_opid_seq",
    "_del_sent_storing",
    "_del_sent_all",
    "_client_sessions",
    "view",
    # dynamic membership: the epoch a server acknowledged and the ids it
    # knows to be retired must survive a crash-restart, or a recovered
    # server would rejoin fenced out of (or fencing) its own group
    "cfg_epoch",
    "cfg_retired",
)


@dataclass
class ServerCheckpoint:
    """One durable snapshot of a server (plus optional transport state)."""

    server_id: int
    time: float
    state: dict[str, Any]
    transport: dict[str, Any] | None = None


@dataclass
class CorruptCheckpoint:
    """Typed report of a checkpoint that failed integrity verification.

    Stores surface this instead of raising: a corrupt or truncated
    checkpoint is treated as *no* checkpoint (the server restarts empty
    and anti-entropy repair re-derives its state from peers), and the
    report preserves what was detected for operators, scrub stats, and
    chaos-soak assertions.
    """

    server_id: int
    path: str | None
    reason: str


def capture_server_state(server, transport=None) -> ServerCheckpoint:
    """Deep-copy a server's recoverable state into a checkpoint.

    ``server`` may be a simulated :class:`CausalECServer` or a bare
    :class:`~repro.protocol.server_core.ServerCore` driven by a live
    runtime; the checkpoint time comes from the scheduler when there is
    one, else from the core's last-event clock.
    """
    state = {name: copy.deepcopy(getattr(server, name)) for name in _DURABLE_ATTRS}
    tstate = None
    if transport is not None and getattr(transport, "active", False):
        tstate = transport.snapshot_node(server.node_id)
    sched = getattr(server, "scheduler", None)
    return ServerCheckpoint(
        server_id=server.node_id,
        time=sched.now if sched is not None else server.now,
        state=state,
        transport=tstate,
    )


def restore_server_state(
    server, checkpoint: ServerCheckpoint, transport=None
) -> None:
    """Reinstall a checkpoint into ``server`` (same id/code required)."""
    if checkpoint.server_id != server.node_id:
        raise ValueError(
            f"checkpoint belongs to server {checkpoint.server_id}, "
            f"not {server.node_id}"
        )
    for name in _DURABLE_ATTRS:
        if name not in checkpoint.state:
            continue  # checkpoint from an older attr set: keep the default
        setattr(server, name, copy.deepcopy(checkpoint.state[name]))
    # read-timeout timers died with the old incarnation
    server._read_timeouts = {}
    # membership-derived caches (peer fanout) follow the restored
    # retirement set; older cores without the hook need no refresh
    refresh = getattr(server, "_refresh_membership", None)
    if refresh is not None:
        server.cfg_retired = tuple(getattr(server, "cfg_retired", ()))
        refresh()
    # the integrity seal covers the *restored* codeword, not the boot-time one
    server.reseal_codeword()
    if transport is not None and checkpoint.transport is not None:
        transport.restore_node(server.node_id, checkpoint.transport)


@dataclass
class DurableStore:
    """Stable storage for server checkpoints (one slot per server).

    Models each server's local disk: :meth:`persist` atomically replaces
    the server's checkpoint, :meth:`load` returns the latest one (or
    ``None`` before the first persist).  ``persist_counts`` supports tests
    and benchmarks that reason about persistence frequency.

    Bit rot is modelled at *detection* level: :meth:`corrupt` marks a
    slot's checkpoint as damaged, and a subsequent :meth:`load` then
    behaves exactly like the live :class:`~repro.runtime.asyncio_rt
    .FileDurableStore` facing a digest mismatch -- it records a typed
    :class:`CorruptCheckpoint` and returns ``None`` (a fresh persist
    replaces the damaged slot and clears the mark).
    """

    _checkpoints: dict[int, ServerCheckpoint] = field(default_factory=dict)
    persist_counts: dict[int, int] = field(default_factory=dict)
    _corrupt: set[int] = field(default_factory=set)
    #: every corruption detected by :meth:`load`, oldest first
    corruption_reports: list[CorruptCheckpoint] = field(default_factory=list)

    def persist(self, checkpoint: ServerCheckpoint) -> None:
        self._checkpoints[checkpoint.server_id] = checkpoint
        self._corrupt.discard(checkpoint.server_id)
        self.persist_counts[checkpoint.server_id] = (
            self.persist_counts.get(checkpoint.server_id, 0) + 1
        )

    def load(self, server_id: int) -> ServerCheckpoint | None:
        if server_id in self._corrupt:
            self.corruption_reports.append(
                CorruptCheckpoint(server_id, None, "simulated bit rot")
            )
            return None
        return self._checkpoints.get(server_id)

    def verify(self, server_id: int) -> bool | None:
        """Disk-scrub hook: re-check a slot without surfacing its data.

        Returns ``None`` when the slot is empty, ``True`` when intact,
        ``False`` (recording a typed report) when marked rotted -- the
        same contract as the live store's ``verify_file``.
        """
        if server_id not in self._checkpoints:
            return None
        if server_id in self._corrupt:
            self.corruption_reports.append(
                CorruptCheckpoint(server_id, None, "simulated bit rot")
            )
            return False
        return True

    def corrupt(self, server_id: int) -> bool:
        """Damage server ``server_id``'s checkpoint (detected on load).

        Returns whether there was a checkpoint to damage.
        """
        if server_id not in self._checkpoints:
            return False
        self._corrupt.add(server_id)
        return True

    def is_corrupt(self, server_id: int) -> bool:
        return server_id in self._corrupt

    def corrupt_detected(self, server_id: int | None = None) -> int:
        """How many corrupt checkpoints :meth:`load` has reported."""
        if server_id is None:
            return len(self.corruption_reports)
        return sum(
            1 for r in self.corruption_reports if r.server_id == server_id
        )

    def wipe(self, server_id: int) -> None:
        """Simulate disk loss for one server (tests)."""
        self._checkpoints.pop(server_id, None)
        self._corrupt.discard(server_id)
