"""Protocol messages exchanged by CausalEC clients and servers.

Message kinds mirror the paper exactly: ``write``/``write-return-ack``,
``read``/``read-return`` between clients and their home server, and
``app``, ``del``, ``val_inq``, ``val_resp``, ``val_resp_encoded`` between
servers (Algorithms 1-2).

Every message carries ``size_bits`` so the network can account for the
communication costs analysed in Sec. 4.2.  Sizes are assigned by a
:class:`CostModel`: an object value costs B bits, a codeword symbol costs
``r_s * B`` bits, and each tag costs a configurable metadata budget (vector
timestamps by default; the low-cost variant of Sec. 4.2 uses Lamport
timestamps, i.e. a smaller ``tag_bits``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .tags import Tag

__all__ = [
    "CostModel",
    "WriteRequest",
    "WriteAck",
    "ReadRequest",
    "ReadReturn",
    "App",
    "Del",
    "ValInq",
    "ValResp",
    "ValRespEncoded",
    "Heartbeat",
    "DigestMsg",
    "RepairRequest",
    "RepairResponse",
    "MigrateInstall",
    "ViewInstall",
    "ViewInstallAck",
    "ReconfigPropose",
    "ReconfigAck",
    "ReconfigCommit",
]


@dataclass
class CostModel:
    """Bit-size accounting for protocol messages.

    ``value_bits`` is B, the size of one object value.  ``tag_bits`` is the
    metadata cost of one tag/timestamp (vector timestamps: N counters; the
    Sec. 4.2 low-cost variant: one Lamport counter, log L bits).
    ``header_bits`` covers opids and message framing.
    """

    value_bits: float = 64.0
    tag_bits: float = 64.0
    header_bits: float = 16.0

    def size(
        self, n_values: float = 0.0, n_tags: float = 0.0
    ) -> float:
        return self.header_bits + n_values * self.value_bits + n_tags * self.tag_bits


@dataclass
class _Message:
    kind = "message"
    size_bits: float = field(default=0.0, init=False)


@dataclass
class WriteRequest(_Message):
    """Client -> home server: ``<write, opid, X, v>``."""

    kind = "write"
    opid: Any
    obj: int
    value: np.ndarray
    # session floor: the merge of every response ``ts`` this client has
    # observed.  A server whose clock does not dominate it defers the
    # request -- this is what keeps session guarantees (monotone reads,
    # read-your-writes) intact when a client fails over to another server.
    session_ts: Any = field(default=None, init=False)
    # ring epoch the issuing session last observed (sharded deployments);
    # servers adopt it monotonically.  None on unsharded clusters.
    view: int | None = field(default=None, init=False)


@dataclass
class WriteAck(_Message):
    """Server -> client: the write completed (Algorithm 1 line 5)."""

    kind = "write-return-ack"
    opid: Any
    # certificate metadata for the consistency checker (Definition 6):
    # the server's vector clock and the write's tag at the ack point.
    ts: Any = field(default=None, init=False)
    tag: Tag | None = field(default=None, init=False)


@dataclass
class ReadRequest(_Message):
    """Client -> home server: ``<read, opid, X>``."""

    kind = "read"
    opid: Any
    obj: int
    # session floor (see WriteRequest.session_ts)
    session_ts: Any = field(default=None, init=False)
    # ring epoch (see WriteRequest.view)
    view: int | None = field(default=None, init=False)


@dataclass
class ReadReturn(_Message):
    """Server -> client: the read's value."""

    kind = "read-return"
    opid: Any
    value: np.ndarray
    # certificate metadata (Definition 6): the server's vector clock at the
    # response point and the tag of the write whose value is returned.
    ts: Any = field(default=None, init=False)
    value_tag: Tag | None = field(default=None, init=False)


@dataclass
class App(_Message):
    """Write propagation: ``<app, X, v, t>`` (Algorithm 1 line 6)."""

    kind = "app"
    obj: int
    value: np.ndarray
    tag: Tag


@dataclass
class Del(_Message):
    """Garbage-collection notice: ``<del, X, t>``.

    In the low-cost variant (Sec. 4.2 / Appendix G) del messages are routed
    through a leader that forwards them to everyone: ``origin`` preserves
    the original sender's identity across the forwarding hop, and
    ``fanout`` marks a message the leader still needs to forward.
    """

    kind = "del"
    obj: int
    tag: Tag
    origin: int | None = None
    fanout: bool = False


@dataclass
class Heartbeat(_Message):
    """Failure-detector liveness beacon: ``<hb, sender, sent_at>``.

    Not part of the paper's protocol (its model is asynchronous, so no
    failure detector exists); heartbeats are an operational overlay and are
    sent best-effort -- never through the reliable ARQ channel, where
    retransmission would defeat their purpose.
    """

    kind = "heartbeat"
    sender: int
    sent_at: float


@dataclass
class DigestMsg(_Message):
    """Anti-entropy digest: ``<digest, vc, {X: best-known tag}>``.

    Periodic gossip from the repair overlay
    (:class:`~repro.protocol.repair_core.RepairCore`): the sender's vector
    clock plus, per object, the highest tag it holds either in its history
    list or encoded in its codeword symbol.  Objects still at the zero tag
    are omitted, keeping the digest compact.  Like heartbeats, digests are
    operational-overlay traffic sent best-effort (a lost digest is replaced
    by the next tick).
    """

    kind = "digest"
    sender: int
    vc: Any
    tags: dict[int, Tag]
    sent_at: float


@dataclass
class RepairRequest(_Message):
    """Anti-entropy pull: ``<repair_req, {X: known tag}, vc>``.

    Sent when an incoming digest shows a peer holds newer state; carries
    the requester's own tag knowledge so responders ship only the delta.
    """

    kind = "repair_req"
    sender: int
    tags: dict[int, Tag]
    vc: Any


@dataclass
class RepairResponse(_Message):
    """Anti-entropy delta: values, deletion watermarks, and a coded symbol.

    ``entries`` maps objects the requester is behind on to ``(tag, value)``
    pairs where the responder can produce the plain value (history list or
    singleton recovery-set decode); ``symbol``/``tagvec`` are the
    responder's codeword symbol, so the requester can pool symbols across
    responders with matching tag vectors and decode objects no single node
    could serve plainly.  ``dels`` replays per-object deletion-list maxima
    so garbage collection unblocks on both sides of a healed partition.
    """

    kind = "repair_resp"
    sender: int
    tags: dict[int, Tag]
    vc: Any
    entries: dict[int, tuple]
    dels: dict[int, dict[int, Tag]]
    symbol: np.ndarray
    tagvec: dict[int, Tag]


@dataclass
class MigrateInstall(WriteRequest):
    """Migration coordinator -> destination home server: install a moved
    key's latest value as a fresh write.

    A subclass of :class:`WriteRequest` so every server-side write path
    (session-floor parking, opid dedup, tag minting, App broadcast,
    durable checkpointing) applies unchanged; only the decision-log kind
    differs (``migrate`` instead of ``write``) so the online auditor can
    see resharding traffic.  ``gen`` is the key's generation *after* the
    move -- the auditor orders tags by ``(generation, tag)`` so the
    installed copy supersedes every pre-move version even though the
    destination shard's vector clock is unrelated to the source's.
    """

    kind = "migrate"
    gen: int = 0


@dataclass
class ViewInstall(_Message):
    """Coordinator -> server: adopt ring epoch ``version``.

    View installation is monotone gossip, not a barrier: servers also
    adopt newer epochs piggybacked on request ``view`` fields, so a
    server that missed the broadcast (crashed during the view change)
    converges on its first request.  Correctness of the cutover rests on
    the migration watermark floors, not on epoch agreement.
    """

    kind = "view_install"
    version: int


@dataclass
class ViewInstallAck(_Message):
    """Server -> coordinator: epoch adopted; ``ts`` is the server's clock."""

    kind = "view_install_ack"
    version: int
    ts: Any = field(default=None, init=False)


@dataclass
class ReconfigPropose(_Message):
    """Coordinator -> server: membership epoch ``epoch`` is being prepared.

    Carries the full proposed configuration so the message is
    self-contained: ``members`` are the active server ids of the new
    epoch, ``joiner`` is the id of a newly added server (None for
    remove/replace), and ``row_seed`` seeds the deterministic derivation
    of the joiner's encoding-matrix row via
    :func:`~repro.ec.codes.extend_code` (None when the code is
    unchanged).  A propose changes no protocol state -- it only lets the
    coordinator verify the member is reachable and willing before the
    commit fences the old epoch.
    """

    kind = "reconfig_propose"
    epoch: int
    members: tuple
    joiner: int | None = None
    row_seed: int | None = None


@dataclass
class ReconfigAck(_Message):
    """Server -> coordinator: propose/commit for ``epoch`` processed.

    ``ts`` is the server's vector clock at the ack point and ``cfg_epoch``
    the epoch it is actually at afterwards (idempotent re-delivery of an
    old commit acks with the *newer* installed epoch).
    """

    kind = "reconfig_ack"
    epoch: int
    cfg_epoch: int = 0
    ts: Any = field(default=None, init=False)


@dataclass
class ReconfigCommit(_Message):
    """Coordinator -> server: cut over to membership epoch ``epoch``.

    Same self-contained payload as the propose, so a server that missed
    the propose (crashed, partitioned) still installs the epoch correctly
    from the commit alone.  On install the server fences its wire layer:
    peer channels that last advertised a lower ``cfg_epoch`` are rejected
    until they re-handshake at the new epoch.
    """

    kind = "reconfig_commit"
    epoch: int
    members: tuple
    joiner: int | None = None
    row_seed: int | None = None


@dataclass
class ValInq(_Message):
    """Read inquiry carrying the wanted tag vector (Algorithm 1 line 18)."""

    kind = "val_inq"
    client_id: int
    opid: Any
    obj: int
    wanted_tagvec: dict[int, Tag]


@dataclass
class ValResp(_Message):
    """Uncoded response: the wanted object version was in the history list."""

    kind = "val_resp"
    obj: int
    value: np.ndarray
    client_id: int
    opid: Any
    requested_tags: dict[int, Tag]


@dataclass
class ValRespEncoded(_Message):
    """Coded response: a (possibly re-encoded) codeword symbol plus its tags."""

    kind = "val_resp_encoded"
    symbol: np.ndarray
    tagvec: dict[int, Tag]
    client_id: int
    opid: Any
    obj: int
    requested_tags: dict[int, Tag]
