"""Cluster harness: the top-level public API of the reproduction.

A :class:`CausalECCluster` wires together a linear code, N CausalEC servers,
a simulated asynchronous FIFO network, and any number of clients; it records
every operation into a :class:`~repro.consistency.history.History` ready for
consistency checking.

Quickstart::

    from repro import CausalECCluster, example1_code

    cluster = CausalECCluster(example1_code(), seed=1)
    c1 = cluster.add_client(server=0)   # a client near server 1
    c2 = cluster.add_client(server=4)   # a client near server 5
    cluster.execute(c1.write(0, [3]))   # write X1 := 3  (local, fast)
    op = cluster.execute(c2.read(0))    # read X1 via a recovery set
    assert op.value.tolist() == [3]

The generic :class:`Cluster` base also hosts the baseline protocols, which
share the client/network machinery.
"""

from __future__ import annotations

import numpy as np

from ..consistency.history import History, Operation
from ..ec.code import LinearCode
from ..sim.network import LatencyModel, LinkFaults, Network
from ..sim.node import Node
from ..sim.scheduler import Scheduler
from ..sim.transport import ReliableTransport, TransportConfig
from .client import Client, RetryPolicy
from .server import CausalECServer, ServerConfig

__all__ = ["Cluster", "CausalECCluster"]


class Cluster:
    """A simulated deployment: servers + clients + network + history.

    By default the network is the paper's reliable FIFO channel.  Pass
    ``link_faults`` (a :class:`~repro.sim.network.LinkFaults`) to run over
    a lossy substrate instead; an ARQ :class:`~repro.sim.transport
    .ReliableTransport` is then interposed automatically so protocol code
    still sees reliable FIFO channels.  ``transport`` can also be supplied
    explicitly (a :class:`~repro.sim.transport.TransportConfig`) to tune
    or force the ARQ sublayer.  ``self.network`` is the facade nodes send
    through (logical message stats); ``self.wire`` is the underlying
    physical network (wire-level stats, including retransmissions/acks).
    """

    def __init__(
        self,
        num_servers: int,
        latency: LatencyModel | None = None,
        seed: int = 0,
        scheduler: Scheduler | None = None,
        link_faults: LinkFaults | None = None,
        transport: TransportConfig | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.num_servers = num_servers
        self.scheduler = scheduler or Scheduler()
        self.rng = np.random.default_rng(seed)
        self.wire = Network(
            self.scheduler, latency=latency, rng=self.rng, faults=link_faults
        )
        if transport is None and link_faults is not None:
            transport = TransportConfig()
        if transport is not None:
            self.transport: ReliableTransport | None = ReliableTransport(
                self.wire, transport
            )
            self.network = self.transport
        else:
            self.transport = None
            self.network = self.wire
        self.retry = retry
        self.history = History()
        self.servers: list[Node] = []
        self.clients: list[Client] = []
        self._next_node_id = num_servers

    # ------------------------------------------------------------------
    # topology

    def add_client(
        self,
        server: int = 0,
        retry: RetryPolicy | None = None,
        failover: bool = False,
        failover_writes: bool = False,
        node_id: int | None = None,
        opid_counter=None,
    ) -> Client:
        """Create a client attached to ``server`` (a member of C_server).

        ``failover=True`` gives the client every other server (ring order
        after its home) as failover candidates.  ``node_id`` /
        ``opid_counter`` let a sharded session give its per-shard clients
        one shared identity (see :mod:`repro.sharding.sim_store`); ids
        must be unique within this cluster's network and >= the server
        count.
        """
        if not 0 <= server < self.num_servers:
            raise ValueError(f"no such server {server}")
        if node_id is None:
            node_id = self._next_node_id
            self._next_node_id += 1
        elif node_id < self.num_servers:
            raise ValueError(f"client id {node_id} collides with a server id")
        else:
            self._next_node_id = max(self._next_node_id, node_id + 1)
        candidates = None
        if failover:
            candidates = [
                (server + k) % self.num_servers
                for k in range(1, self.num_servers)
            ]
        client = Client(
            node_id,
            self.scheduler,
            self.network,
            server_id=server,
            history=self.history,
            retry=retry if retry is not None else self.retry,
            failover=candidates,
            failover_writes=failover_writes,
            opid_counter=opid_counter,
        )
        self.clients.append(client)
        return client

    def halt_server(self, server: int) -> None:
        """Crash a server (it takes no further steps)."""
        self.servers[server].halt()

    def restart_server(self, server: int) -> None:
        """Recover a crashed server (reloads its durable snapshot, if any)."""
        self.servers[server].restart()

    # ------------------------------------------------------------------
    # execution control

    def run(self, for_time: float | None = None, max_events: int | None = None):
        """Advance the simulation (by ``for_time`` ms, or to quiescence)."""
        until = None if for_time is None else self.scheduler.now + for_time
        self.scheduler.run(until=until, max_events=max_events)
        return self

    def execute(self, op: Operation, max_events: int = 1_000_000) -> Operation:
        """Run the simulation until ``op`` settles (or events exhaust).

        An op settles by completing *or* by failing fast with
        :class:`~repro.core.client.HomeServerUnavailable` (retry policy);
        either way the simulation does not hang on a dead home server.
        """
        self.scheduler.run(max_events=max_events, stop_when=lambda: op.settled)
        return op

    def write_sync(self, client: Client, obj: int, value) -> Operation:
        return self.execute(client.write(obj, value))

    def read_sync(self, client: Client, obj: int) -> Operation:
        return self.execute(client.read(obj))

    def settle(self, rounds: int = 50, max_events: int = 2_000_000) -> None:
        """Run until no more network/protocol events remain.

        With periodic GC timers the scheduler never empties, so this runs in
        bounded slices and stops when only timer events remain and the
        protocol state has stabilised.
        """
        last = None
        for _ in range(rounds):
            self.scheduler.run(
                until=self.scheduler.now + 10_000.0, max_events=max_events
            )
            snapshot = self.state_fingerprint()
            if snapshot == last:
                return
            last = snapshot

    def state_fingerprint(self):
        """Cheap digest of protocol state, for settle()'s fixpoint check."""
        return tuple(
            getattr(s, "transient_state_size", lambda: 0)() for s in self.servers
        )

    # ------------------------------------------------------------------
    # observability

    @property
    def now(self) -> float:
        return self.scheduler.now

    @property
    def stats(self):
        return self.network.stats


class CausalECCluster(Cluster):
    """A cluster of CausalEC servers parametrised by a linear code.

    ``durable=True`` attaches a :class:`~repro.core.snapshot.DurableStore`
    (or pass one explicitly) so servers persist eagerly and survive
    crash-*restart* via :meth:`restart_server`.
    """

    def __init__(
        self,
        code: LinearCode,
        latency: LatencyModel | None = None,
        seed: int = 0,
        config: ServerConfig | None = None,
        scheduler: Scheduler | None = None,
        link_faults: LinkFaults | None = None,
        transport: TransportConfig | None = None,
        retry: RetryPolicy | None = None,
        durable=False,
        repair=None,
        scrub=None,
    ):
        super().__init__(
            code.N,
            latency=latency,
            seed=seed,
            scheduler=scheduler,
            link_faults=link_faults,
            transport=transport,
            retry=retry,
        )
        self.code = code
        self.config = config or ServerConfig()
        self.repair = repair
        self.scrub = scrub
        self.servers = [
            CausalECServer(
                i,
                self.scheduler,
                self.network,
                code,
                self.config,
                repair=repair,
                scrub=scrub,
            )
            for i in range(code.N)
        ]
        self.durable = None
        if durable:
            from .snapshot import DurableStore  # avoid import cycle

            self.durable = durable if isinstance(durable, DurableStore) else (
                DurableStore()
            )
            for s in self.servers:
                s.attach_durability(self.durable, self.transport)

    # ------------------------------------------------------------------

    def server(self, i: int) -> CausalECServer:
        return self.servers[i]

    def replace_server(self, i: int) -> CausalECServer:
        """Permanently retire server ``i``'s machine and boot an *empty*
        replacement into the same slot at a higher configuration epoch.

        The simulator's channels are connectionless, so the live runtime's
        wire-level epoch fencing has nothing to fence here; replacement is
        modelled as: halt the old incarnation, wipe its durable slot (the
        replacement machine has a fresh disk), bump every live server's
        ``cfg_epoch``, and restart the slot empty.  State transfer is the
        same path the live runtime uses -- the anti-entropy repair overlay
        re-derives the slot's codeword row from any recovery set -- so the
        cluster must be constructed with ``repair`` enabled and run for a
        few digest intervals afterwards to heal.
        """
        old = self.servers[i]
        if old.repair is None:
            raise ValueError(
                "replace_server needs the repair overlay: an empty "
                "replacement can only re-derive its row via anti-entropy"
            )
        epoch = max(s.cfg_epoch for s in self.servers) + 1
        if not old.halted:
            old.halt()
        if self.durable is not None:
            self.durable.wipe(i)  # the replacement machine's disk is fresh
        old.wipe_volatile()
        old.permanently_failed = False  # same slot, new machine
        old.cfg_epoch = epoch
        for s in self.servers:
            if s is not old and not s.halted:
                s.cfg_epoch = epoch
        old.restart()
        return old

    def total_transient_entries(self) -> int:
        """Sum over servers of |L| + |InQueue| + |ReadL| (Theorem 4.5)."""
        return sum(
            s.transient_state_size() for s in self.servers if not s.halted
        )

    def total_history_entries(self) -> int:
        return sum(s.history_size() for s in self.servers if not s.halted)

    def repair_stats(self) -> dict[str, float]:
        """Aggregate anti-entropy counters across servers (zeros if off)."""
        totals: dict[str, float] = {}
        for s in self.servers:
            if s.repair is None:
                continue
            for k, v in vars(s.repair.stats).items():
                totals[k] = totals.get(k, 0) + v
        return totals

    def scrub_stats(self) -> dict[str, float]:
        """Aggregate scrub counters across servers (zeros if off), plus
        ``corrupt_dropped`` (link-level frames the network dropped as
        detected-corrupt) and ``checkpoint_reports`` (durable-store
        detections)."""
        totals: dict[str, float] = {}
        for s in self.servers:
            if s.scrub is None:
                continue
            for k, v in vars(s.scrub.stats).items():
                totals[k] = totals.get(k, 0) + v
        lf = self.network.faults
        totals["corrupt_dropped"] = 0 if lf is None else lf.corrupted
        # guard-path detections (read/val-inq/encoding) are on the core's
        # stats, not the scrub overlay's -- surface both
        totals["integrity_quarantines"] = sum(
            s.stats.integrity_quarantines for s in self.servers
        )
        if self.durable is not None:
            totals["checkpoint_reports"] = self.durable.corrupt_detected()
        return totals

    def assert_no_reencoding_errors(self) -> None:
        """Lemmas D.1/D.2: Error1/Error2 never fire in any execution."""
        for s in self.servers:
            if s.stats.error1_events or s.stats.error2_events:
                raise AssertionError(
                    f"server {s.node_id} hit re-encoding errors: "
                    f"Error1={s.stats.error1_events} Error2={s.stats.error2_events}"
                )

    def value(self, raw) -> np.ndarray:
        """Coerce a python scalar/list into an object value for this code."""
        field = self.code.field
        arr = np.asarray(raw)
        if arr.ndim == 0:
            arr = np.full(self.code.value_len, int(arr))
        return field.validate(arr)
