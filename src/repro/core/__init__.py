"""CausalEC: the paper's primary contribution (Algorithms 1-3)."""

from .client import Client, HomeServerUnavailable, RetryPolicy
from .cluster import CausalECCluster, Cluster
from .messages import CostModel
from .snapshot import (
    DurableStore,
    ServerCheckpoint,
    capture_server_state,
    format_snapshot,
    restore_server_state,
    snapshot_cluster,
    snapshot_server,
)
from .server import CausalECServer, ServerConfig, ServerStats
from .tags import LOCALHOST, Tag, VectorClock, zero_tag

__all__ = [
    "CausalECCluster",
    "Cluster",
    "CausalECServer",
    "ServerConfig",
    "ServerStats",
    "Client",
    "RetryPolicy",
    "HomeServerUnavailable",
    "CostModel",
    "Tag",
    "VectorClock",
    "zero_tag",
    "LOCALHOST",
    "snapshot_server",
    "snapshot_cluster",
    "format_snapshot",
    "DurableStore",
    "ServerCheckpoint",
    "capture_server_state",
    "restore_server_state",
]
