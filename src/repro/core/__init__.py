"""CausalEC: the paper's primary contribution (Algorithms 1-3)."""

from .client import Client
from .cluster import CausalECCluster, Cluster
from .messages import CostModel
from .snapshot import format_snapshot, snapshot_cluster, snapshot_server
from .server import CausalECServer, ServerConfig, ServerStats
from .tags import LOCALHOST, Tag, VectorClock, zero_tag

__all__ = [
    "CausalECCluster",
    "Cluster",
    "CausalECServer",
    "ServerConfig",
    "ServerStats",
    "Client",
    "CostModel",
    "Tag",
    "VectorClock",
    "zero_tag",
    "LOCALHOST",
    "snapshot_server",
    "snapshot_cluster",
    "format_snapshot",
]
