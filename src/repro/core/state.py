"""Server-side state containers for CausalEC (Fig. 3 of the paper).

Each server holds:

* ``vc`` -- a vector clock (kept directly on the server),
* ``InQueue`` -- pending ``app`` tuples awaiting causal application,
* ``L``       -- per-object *history lists* of (tag, value) pairs,
* ``DelL``    -- per-object *deletion lists* of (tag, sender) pairs,
* ``M``       -- the codeword symbol plus its per-object tag vector,
* ``ReadL``   -- pending reads (external and ``localhost`` internal),
* ``tmax``    -- per-object garbage-collection watermark.

These containers implement the exact semantics the pseudocode relies on,
plus two bounded-metadata optimisations documented in DESIGN.md (deletion
lists are pruned below the watermark; both preserve every observable
behaviour because tags are totally ordered and watermarks are monotone).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .tags import Tag

__all__ = ["HistoryList", "DeletionList", "InQueue", "ReadEntry", "ReadList", "Codeword"]


class HistoryList:
    """History list L[X]: a set of (tag, value) pairs for one object.

    ``highest_tag`` follows the paper's convention: the zero tag when the
    list is empty.
    """

    __slots__ = ("_items", "_zero")

    def __init__(self, zero: Tag):
        self._zero = zero
        self._items: dict[Tag, np.ndarray] = {}

    def add(self, tag: Tag, value: np.ndarray) -> None:
        self._items[tag] = value

    def get(self, tag: Tag) -> np.ndarray | None:
        return self._items.get(tag)

    def remove(self, tag: Tag) -> None:
        self._items.pop(tag, None)

    def __contains__(self, tag: Tag) -> bool:
        return tag in self._items

    def __len__(self) -> int:
        return len(self._items)

    def tags(self) -> list[Tag]:
        return list(self._items)

    def items(self) -> list[tuple[Tag, np.ndarray]]:
        return list(self._items.items())

    @property
    def highest_tag(self) -> Tag:
        """L[X].HighestTagged.tag; the zero tag for an empty list."""
        if not self._items:
            return self._zero
        return max(self._items)

    def highest_value(self) -> np.ndarray | None:
        if not self._items:
            return None
        return self._items[self.highest_tag]


class DeletionList:
    """Deletion list DelL[X]: per-sender sets of acknowledged tags.

    Supports the three aggregate queries Algorithm 3 needs:

    * ``max_common(nodes)``  -- max(S): the largest tag t such that every
      node in ``nodes`` contributed some tag >= t.  With totally ordered
      tags this is min over nodes of (that node's max contributed tag), or
      None when some node has contributed nothing.
    * ``has_exact_from_all(tag, nodes)`` -- membership of ``tag`` in S-bar:
      every node contributed *exactly* ``tag``.
    * ``max_from(node)`` -- that node's largest contributed tag.
    """

    __slots__ = ("_tags", "_max")

    def __init__(self) -> None:
        self._tags: dict[int, set[Tag]] = {}
        self._max: dict[int, Tag] = {}

    def add(self, tag: Tag, node: int) -> None:
        self._tags.setdefault(node, set()).add(tag)
        cur = self._max.get(node)
        if cur is None or tag > cur:
            self._max[node] = tag

    def max_from(self, node: int) -> Tag | None:
        return self._max.get(node)

    def max_common(self, nodes) -> Tag | None:
        best: Tag | None = None
        for n in nodes:
            m = self._max.get(n)
            if m is None:
                return None
            if best is None or m < best:
                best = m
        return best

    def has_exact_from_all(self, tag: Tag, nodes) -> bool:
        return all(tag in self._tags.get(n, ()) for n in nodes)

    def max_by_node(self) -> dict[int, Tag]:
        """Per-node maxima: enough for a peer to replay lost ``del``s.

        Aggregate queries compare against maxima (``max_common``,
        ``max_from``) or exact membership of those maxima
        (``has_exact_from_all`` after every node converges on one tag), so
        shipping the maxima reconstructs everything anti-entropy needs.
        """
        return dict(self._max)

    def prune_below(self, watermark: Tag) -> None:
        """Drop tags strictly below ``watermark`` (keeping per-node maxima).

        Safe because every aggregate query compares against maxima or the
        current (monotone) watermark; see DESIGN.md "DelL pruning".
        """
        for n, tags in self._tags.items():
            keep = {t for t in tags if not t < watermark}
            keep.add(self._max[n])
            self._tags[n] = keep

    def total_entries(self) -> int:
        return sum(len(v) for v in self._tags.values())


@dataclass
class InQueueEntry:
    """One queued ``app`` tuple: (sender, object, value, tag)."""

    sender: int
    obj: int
    value: np.ndarray
    tag: Tag


class InQueue:
    """Pending ``app`` tuples, scanned in tag order for applicability.

    The paper keeps a priority queue and checks only the head; we scan in
    (Lamport, arrival) order and apply the first entry whose causality
    predicate holds, which generalises head-checking (see DESIGN.md).
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: list[InQueueEntry] = []

    def add(self, entry: InQueueEntry) -> None:
        self._entries.append(entry)
        self._entries.sort(key=lambda e: (e.tag.ts.lamport, e.tag.client_id))

    def __len__(self) -> int:
        return len(self._entries)

    def pop_applicable(self, vc) -> InQueueEntry | None:
        """Remove and return the first entry applicable at vector clock vc.

        Applicability (Algorithm 3 line 4): ``t.ts[p] <= vc[p]`` for every
        ``p != sender`` and ``t.ts[sender] == vc[sender] + 1``.
        """
        for i, e in enumerate(self._entries):
            ts = e.tag.ts
            j = e.sender
            if ts[j] != vc[j] + 1:
                continue
            if all(ts[p] <= vc[p] for p in range(len(vc)) if p != j):
                del self._entries[i]
                return e
        return None

    def purge_covered(self, vc) -> int:
        """Drop entries already covered by ``vc``; returns how many.

        An entry with ``t.ts[sender] <= vc[sender]`` can never again satisfy
        the applicability predicate (``vc`` components are monotone), so
        after a repair merges a peer's clock -- whose causally-closed state
        subsumes these writes, with per-object tags at least as high --
        the entries are dead weight that would hold transient state above
        zero forever.
        """
        before = len(self._entries)
        self._entries = [
            e for e in self._entries if e.tag.ts[e.sender] > vc[e.sender]
        ]
        return before - len(self._entries)


@dataclass
class ReadEntry:
    """A pending read: (clientid, opid, X, tag-vector, partial symbol vector).

    ``symbols`` is the paper's w-bar: per-server codeword symbols collected
    so far (absent server = the null symbol).
    """

    client_id: int
    opid: Any
    obj: int
    tagvec: dict[int, Tag]
    symbols: dict[int, np.ndarray] = field(default_factory=dict)
    registered_at: float = 0.0


class ReadList:
    """Pending-read list ReadL, indexed by operation id."""

    __slots__ = ("_by_opid",)

    def __init__(self) -> None:
        self._by_opid: dict[Any, ReadEntry] = {}

    def add(self, entry: ReadEntry) -> None:
        if entry.opid in self._by_opid:
            raise ValueError(f"duplicate pending read opid {entry.opid!r}")
        self._by_opid[entry.opid] = entry

    def get(self, opid: Any) -> ReadEntry | None:
        return self._by_opid.get(opid)

    def remove(self, opid: Any) -> None:
        self._by_opid.pop(opid, None)

    def __len__(self) -> int:
        return len(self._by_opid)

    def entries(self) -> list[ReadEntry]:
        return list(self._by_opid.values())

    def for_object(self, obj: int) -> list[ReadEntry]:
        return [e for e in self._by_opid.values() if e.obj == obj]

    def localhost_entry_for(self, obj: int, tag: Tag, localhost: int) -> bool:
        """Is there an internal read for object ``obj`` wanting ``tag``?"""
        return any(
            e.client_id == localhost and e.obj == obj and e.tagvec[obj] == tag
            for e in self._by_opid.values()
        )


@dataclass
class Codeword:
    """M: the stored codeword symbol value and its per-object tag vector."""

    value: np.ndarray
    tagvec: dict[int, Tag]
