"""Simulated client: the sans-I/O client core on the discrete-event runtime.

The client protocol (invocation well-formedness, retry with exponential
backoff, fail-fast unavailability) lives in
:class:`~repro.protocol.client_core.ClientCore`; this module supplies
:class:`Client`, the simulated node every cluster and workload driver uses.
``write``/``read`` feed invocations into the core and interpret the
returned effects; completion surfaces through the ``on_complete`` /
``on_failure`` hooks exactly as before the sans-I/O refactor.

``RetryPolicy`` and ``HomeServerUnavailable`` are re-exported from the
protocol package for backward compatibility.
"""

from __future__ import annotations

import numpy as np

from ..consistency.history import History, Operation
from ..protocol.client_core import ClientCore, HomeServerUnavailable, RetryPolicy
from ..runtime.sim import EffectNode
from ..sim.network import Network
from ..sim.node import Node
from ..sim.scheduler import Scheduler

__all__ = ["Client", "RetryPolicy", "HomeServerUnavailable"]


class Client(EffectNode, ClientCore):
    """A client node issuing read/write operations to its home server."""

    def __init__(
        self,
        node_id: int,
        scheduler: Scheduler,
        network: Network,
        server_id: int,
        history: History | None = None,
        retry: RetryPolicy | None = None,
        failover: list[int] | None = None,
        failover_writes: bool = False,
        opid_counter=None,
    ):
        Node.__init__(self, node_id, scheduler, network)
        ClientCore.__init__(
            self,
            node_id,
            server_id,
            history,
            retry,
            failover=failover,
            failover_writes=failover_writes,
            opid_counter=opid_counter,
        )
        self._timers: dict[tuple, object] = {}

    def write(self, obj: int, value: np.ndarray) -> Operation:
        """Invoke write(X, v); returns the operation record (async)."""
        op, effects = self.start_write(obj, value, self.scheduler.now)
        self.interpret(effects)
        return op

    def read(self, obj: int) -> Operation:
        """Invoke read(X); returns the operation record (async)."""
        op, effects = self.start_read(obj, self.scheduler.now)
        self.interpret(effects)
        return op

    def migrate(self, obj: int, value: np.ndarray, gen: int) -> Operation:
        """Install a migrated value (view-change coordinators only)."""
        op, effects = self.start_migrate(obj, value, gen, self.scheduler.now)
        self.interpret(effects)
        return op
