"""The CausalEC client protocol (Sec. 3, "Client protocol").

A client is attached to exactly one server (the partition C_s of Sec. 2.1)
and sends ``write``/``read`` messages to it, awaiting the matching
``write-return-ack``/``read-return``.  Well-formedness is enforced: a client
has at most one pending invocation at any point.

The same client class drives every protocol in this repository (CausalEC and
the baselines) since they share the client-facing message types.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..consistency.history import History, Operation
from ..sim.network import Network
from ..sim.node import Node
from ..sim.scheduler import Scheduler
from .messages import ReadRequest, ReadReturn, WriteAck, WriteRequest

__all__ = ["Client"]


class Client(Node):
    """A client node issuing read/write operations to its home server."""

    def __init__(
        self,
        node_id: int,
        scheduler: Scheduler,
        network: Network,
        server_id: int,
        history: History | None = None,
    ):
        super().__init__(node_id, scheduler, network)
        self.server_id = server_id
        self.history = history
        self._op_counter = itertools.count()
        self._pending: Operation | None = None

    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._pending is not None

    def write(self, obj: int, value: np.ndarray) -> Operation:
        """Invoke write(X, v); returns the operation record (async)."""
        op = self._invoke("write", obj, value)
        msg = WriteRequest(op.opid, obj, np.asarray(value))
        msg.size_bits = 0.0
        self.send(self.server_id, msg)
        return op

    def read(self, obj: int) -> Operation:
        """Invoke read(X); returns the operation record (async)."""
        op = self._invoke("read", obj, None)
        msg = ReadRequest(op.opid, obj)
        msg.size_bits = 0.0
        self.send(self.server_id, msg)
        return op

    def _invoke(self, kind: str, obj: int, value) -> Operation:
        if self._pending is not None:
            raise RuntimeError(
                f"client {self.node_id} already has a pending operation "
                f"(well-formedness, Sec. 2.1)"
            )
        op = Operation(
            client_id=self.node_id,
            opid=(self.node_id, next(self._op_counter)),
            kind=kind,
            obj=obj,
            value=None if value is None else np.asarray(value),
            invoke_time=self.scheduler.now,
        )
        self._pending = op
        if self.history is not None:
            self.history.record_invoke(op)
        return op

    # ------------------------------------------------------------------

    def on_message(self, src: int, msg: object) -> None:
        op = self._pending
        if op is None:
            return
        if isinstance(msg, WriteAck) and msg.opid == op.opid:
            op.response_time = self.scheduler.now
            op.ts = msg.ts
            op.tag = msg.tag
            self._pending = None
            self.on_complete(op)
        elif isinstance(msg, ReadReturn) and msg.opid == op.opid:
            op.response_time = self.scheduler.now
            op.value = msg.value
            op.ts = msg.ts
            op.tag = msg.value_tag
            self._pending = None
            self.on_complete(op)

    def on_complete(self, op: Operation) -> None:
        """Hook for workload drivers; default is a no-op."""
