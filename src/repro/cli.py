"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``   -- the quickstart scenario on the Example 1 code.
* ``fig2``   -- regenerate the Fig. 2 comparison table (analytic).
* ``ycsb``   -- the Sec. 4.2 YCSB storage analysis at paper scale.
* ``design`` -- run the cross-object code designer on the AWS topology.
* ``bench``  -- a quick throughput/latency run of CausalEC under load.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _print_table(headers: list[str], rows: list[list]) -> None:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def cmd_demo(args: argparse.Namespace) -> int:
    """Quickstart demo on the Example 1 code."""
    from repro import (
        CausalECCluster,
        ConstantLatency,
        PrimeField,
        ServerConfig,
        example1_code,
    )

    cluster = CausalECCluster(
        example1_code(PrimeField(257)),
        latency=ConstantLatency(args.rtt / 2),
        config=ServerConfig(gc_interval=50.0),
    )
    alice, bob = cluster.add_client(0), cluster.add_client(4)
    w = cluster.execute(alice.write(0, cluster.value(42)))
    print(f"write X1=42 at server 1: {w.latency:.1f} ms (local)")
    cluster.run(for_time=1000)
    r = cluster.execute(bob.read(0))
    print(f"read X1 at server 5: {int(r.value[0])} in {r.latency:.1f} ms "
          f"(recovery-set decode)")
    cluster.run(for_time=2000)
    print("history entries after GC:",
          [s.history_size() for s in cluster.servers])
    return 0


def cmd_fig2(args: argparse.Namespace) -> int:
    """Print the analytic Fig. 2 comparison table."""
    from repro.analysis import (
        Topology,
        cross_object_costs,
        cross_object_latency,
        intra_object_costs,
        intra_object_latency,
        partial_replication_costs,
        search_partial_replication,
    )
    from repro.ec import six_dc_code

    topo = Topology.aws_six_dc()
    pr = search_partial_replication(topo, 4)
    prc = partial_replication_costs(topo, pr.placement_sets(), 4)
    io = intra_object_latency(topo, 4)
    ioc = intra_object_costs(topo, 4)
    code = six_dc_code()
    co = cross_object_latency(topo, code)
    coc = cross_object_costs(topo, code)
    rows = [
        ["Partial Replication", f"{pr.profile.worst_case:.0f}",
         f"{pr.profile.average:.2f}", f"{prc.read_value_units:.2f}B",
         f"{prc.write_value_units:.1f}B"],
        ["Intra-Object Coding", f"{io.worst_case:.0f}", f"{io.average:.2f}",
         f"{ioc.read_value_units:.2f}B", f"{ioc.write_value_units:.1f}B"],
        ["Cross-Object Coding", f"{co.worst_case:.0f}", f"{co.average:.2f}",
         f"{coc.read_value_units:.2f}B", f"{coc.write_value_units:.1f}B"],
    ]
    _print_table(
        ["Scheme", "Worst(ms)", "Avg(ms)", "Read", "Write"], rows
    )
    return 0


def cmd_ycsb(args: argparse.Namespace) -> int:
    """Print the Sec. 4.2 YCSB storage analysis."""
    from repro.analysis import analyze_ycsb

    analysis = analyze_ycsb(t_gc=args.t_gc, k=args.k)
    print(analysis.summary())
    return 0


def cmd_design(args: argparse.Namespace) -> int:
    """Run the cross-object code designer on the AWS topology."""
    from repro.analysis import Topology, design_cross_object_code

    topo = Topology.aws_six_dc()
    result = design_cross_object_code(
        topo, args.objects, objective=args.objective,
        restarts=args.restarts, seed=args.seed,
    )
    print(f"objective {args.objective}: worst={result.profile.worst_case:.0f} ms, "
          f"avg={result.profile.average:.2f} ms")
    for s, objs in enumerate(result.assignment):
        symbol = "+".join(f"X{k + 1}" for k in sorted(objs))
        print(f"  {topo.names[s]:<14} stores {symbol}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run a workload and print latency percentiles and throughput."""
    from repro import (
        CausalECCluster,
        PrimeField,
        ServerConfig,
        UniformLatency,
        example1_code,
    )
    from repro.analysis import summarize, throughput
    from repro.workloads import ClosedLoopDriver, WorkloadConfig

    cluster = CausalECCluster(
        example1_code(PrimeField(257)),
        latency=UniformLatency(0.5, args.max_latency),
        seed=args.seed,
        config=ServerConfig(gc_interval=30.0),
    )
    driver = ClosedLoopDriver(
        cluster, num_objects=3,
        config=WorkloadConfig(
            ops_per_client=args.ops, read_ratio=args.read_ratio,
            seed=args.seed,
        ),
    )
    driver.run()
    cluster.run(for_time=5000)
    cluster.assert_no_reencoding_errors()
    stats = summarize(cluster.history)
    rows = [[kind] + s.row() for kind, s in stats.items()]
    _print_table(["op", "count", "mean", "p50", "p95", "p99", "worst"], rows)
    print(f"throughput: {throughput(cluster.history):.0f} ops/s (simulated)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CausalEC reproduction (PODC 2023) -- demos and analyses",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", help="quickstart on the Example 1 code")
    p.add_argument("--rtt", type=float, default=10.0)
    p.set_defaults(fn=cmd_demo)

    p = sub.add_parser("fig2", help="regenerate the Fig. 2 table (analytic)")
    p.set_defaults(fn=cmd_fig2)

    p = sub.add_parser("ycsb", help="Sec. 4.2 YCSB storage analysis")
    p.add_argument("--t-gc", type=float, default=120.0)
    p.add_argument("--k", type=int, default=4)
    p.set_defaults(fn=cmd_ycsb)

    p = sub.add_parser("design", help="cross-object code designer")
    p.add_argument("--objects", type=int, default=4)
    p.add_argument("--objective", default="worst_then_avg",
                   choices=["worst_then_avg", "avg_then_worst"])
    p.add_argument("--restarts", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_design)

    p = sub.add_parser("bench", help="workload run with latency summary")
    p.add_argument("--ops", type=int, default=60)
    p.add_argument("--read-ratio", type=float, default=0.5)
    p.add_argument("--max-latency", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_bench)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
