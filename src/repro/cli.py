"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``    -- the quickstart scenario on the Example 1 code.
* ``fig2``    -- regenerate the Fig. 2 comparison table (analytic).
* ``ycsb``    -- the Sec. 4.2 YCSB storage analysis at paper scale.
* ``design``  -- run the cross-object code designer on the AWS topology.
* ``bench``   -- a quick throughput/latency run of CausalEC under load.
* ``cluster`` -- boot a live asyncio TCP cluster on localhost sockets.
* ``serve``   -- run one CausalEC server as a standalone TCP process.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _print_table(headers: list[str], rows: list[list]) -> None:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def cmd_demo(args: argparse.Namespace) -> int:
    """Quickstart demo on the Example 1 code."""
    from repro import (
        CausalECCluster,
        ConstantLatency,
        PrimeField,
        ServerConfig,
        example1_code,
    )

    cluster = CausalECCluster(
        example1_code(PrimeField(257)),
        latency=ConstantLatency(args.rtt / 2),
        config=ServerConfig(gc_interval=50.0),
    )
    alice, bob = cluster.add_client(0), cluster.add_client(4)
    w = cluster.execute(alice.write(0, cluster.value(42)))
    print(f"write X1=42 at server 1: {w.latency:.1f} ms (local)")
    cluster.run(for_time=1000)
    r = cluster.execute(bob.read(0))
    print(f"read X1 at server 5: {int(r.value[0])} in {r.latency:.1f} ms "
          f"(recovery-set decode)")
    cluster.run(for_time=2000)
    print("history entries after GC:",
          [s.history_size() for s in cluster.servers])
    return 0


def cmd_fig2(args: argparse.Namespace) -> int:
    """Print the analytic Fig. 2 comparison table."""
    from repro.analysis import (
        Topology,
        cross_object_costs,
        cross_object_latency,
        intra_object_costs,
        intra_object_latency,
        partial_replication_costs,
        search_partial_replication,
    )
    from repro.ec import six_dc_code

    topo = Topology.aws_six_dc()
    pr = search_partial_replication(topo, 4)
    prc = partial_replication_costs(topo, pr.placement_sets(), 4)
    io = intra_object_latency(topo, 4)
    ioc = intra_object_costs(topo, 4)
    code = six_dc_code()
    co = cross_object_latency(topo, code)
    coc = cross_object_costs(topo, code)
    rows = [
        ["Partial Replication", f"{pr.profile.worst_case:.0f}",
         f"{pr.profile.average:.2f}", f"{prc.read_value_units:.2f}B",
         f"{prc.write_value_units:.1f}B"],
        ["Intra-Object Coding", f"{io.worst_case:.0f}", f"{io.average:.2f}",
         f"{ioc.read_value_units:.2f}B", f"{ioc.write_value_units:.1f}B"],
        ["Cross-Object Coding", f"{co.worst_case:.0f}", f"{co.average:.2f}",
         f"{coc.read_value_units:.2f}B", f"{coc.write_value_units:.1f}B"],
    ]
    _print_table(
        ["Scheme", "Worst(ms)", "Avg(ms)", "Read", "Write"], rows
    )
    return 0


def cmd_ycsb(args: argparse.Namespace) -> int:
    """Print the Sec. 4.2 YCSB storage analysis."""
    from repro.analysis import analyze_ycsb

    analysis = analyze_ycsb(t_gc=args.t_gc, k=args.k)
    print(analysis.summary())
    return 0


def cmd_design(args: argparse.Namespace) -> int:
    """Run the cross-object code designer on the AWS topology."""
    from repro.analysis import Topology, design_cross_object_code

    topo = Topology.aws_six_dc()
    result = design_cross_object_code(
        topo, args.objects, objective=args.objective,
        restarts=args.restarts, seed=args.seed,
    )
    print(f"objective {args.objective}: worst={result.profile.worst_case:.0f} ms, "
          f"avg={result.profile.average:.2f} ms")
    for s, objs in enumerate(result.assignment):
        symbol = "+".join(f"X{k + 1}" for k in sorted(objs))
        print(f"  {topo.names[s]:<14} stores {symbol}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run a workload and print latency percentiles and throughput."""
    from repro import (
        CausalECCluster,
        PrimeField,
        ServerConfig,
        UniformLatency,
        example1_code,
    )
    from repro.analysis import summarize, throughput
    from repro.workloads import ClosedLoopDriver, WorkloadConfig

    cluster = CausalECCluster(
        example1_code(PrimeField(257)),
        latency=UniformLatency(0.5, args.max_latency),
        seed=args.seed,
        config=ServerConfig(gc_interval=30.0),
    )
    driver = ClosedLoopDriver(
        cluster, num_objects=3,
        config=WorkloadConfig(
            ops_per_client=args.ops, read_ratio=args.read_ratio,
            seed=args.seed,
        ),
    )
    driver.run()
    cluster.run(for_time=5000)
    cluster.assert_no_reencoding_errors()
    stats = summarize(cluster.history)
    rows = [[kind] + s.row() for kind, s in stats.items()]
    _print_table(["op", "count", "mean", "p50", "p95", "p99", "worst"], rows)
    print(f"throughput: {throughput(cluster.history):.0f} ops/s (simulated)")
    return 0


def _cli_code(name: str):
    from repro.ec.codes import example1_code, six_dc_code

    return six_dc_code() if name == "six-dc" else example1_code()


def cmd_cluster(args: argparse.Namespace) -> int:
    """Boot a live N-server asyncio cluster on localhost and drive it."""
    import asyncio

    import numpy as np

    from repro.consistency.causal import check_causal_consistency
    from repro.protocol.client_core import RetryPolicy
    from repro.protocol.server_core import ServerConfig
    from repro.runtime.asyncio_rt import AsyncioCluster

    code = _cli_code(args.code)

    async def run() -> int:
        cluster = AsyncioCluster(
            code,
            config=ServerConfig(gc_interval=args.gc_interval),
            retry=RetryPolicy(timeout=40.0, max_retries=8),
        )
        await cluster.start()
        ports = [s.port for s in cluster.servers]
        print(f"booted {code.N} servers on localhost ports {ports}")
        clients = [await cluster.add_client(i) for i in range(code.N)]
        rng = np.random.default_rng(args.seed)
        kill_at = args.ops // 2 if args.kill is not None else None
        for n in range(args.ops):
            if n == kill_at:
                print(f"killing server {args.kill} mid-workload ...")
                await cluster.kill_server(args.kill)
            client = clients[int(rng.integers(code.N))]
            if args.kill is not None and client.core.server_id == args.kill \
                    and cluster.servers[args.kill].halted:
                continue  # its home server is down; skip, not hang
            obj = int(rng.integers(code.K))
            if rng.random() < 0.5:
                op = await client.write(obj, cluster.value(int(rng.integers(100))))
            else:
                op = await client.read(obj)
            if op.failed:
                print(f"  op {op.opid} failed fast: {op.error}")
        if kill_at is not None:
            await cluster.restart_server(args.kill)
            print(f"server {args.kill} restarted from its durable checkpoint")
        await cluster.quiesce()
        completed = [op for op in cluster.history.operations if op.done]
        check_causal_consistency(cluster.history, code.zero_value())
        lat = [op.latency for op in completed]
        print(f"{len(completed)} operations completed, causally consistent")
        if lat:
            print(f"latency: mean {np.mean(lat):.2f} ms, "
                  f"max {np.max(lat):.2f} ms (real sockets, localhost)")
        print(f"durable persists: {sum(cluster.store.persist_counts.values())}")
        await cluster.shutdown()
        return 0

    return asyncio.run(run())


def cmd_serve(args: argparse.Namespace) -> int:
    """Run one standalone CausalEC server on a real TCP socket."""
    import asyncio
    import tempfile

    from repro.protocol.server_core import ServerConfig, ServerCore
    from repro.runtime.asyncio_rt import AsyncioServer, FileDurableStore

    code = _cli_code(args.code)
    addresses: dict[int, tuple[str, int]] = {}
    for i, hostport in enumerate(args.peers.split(",")):
        host, _, port = hostport.strip().rpartition(":")
        addresses[i] = (host or "127.0.0.1", int(port))
    if len(addresses) != code.N:
        print(f"error: --peers must list {code.N} host:port entries for "
              f"code {code.name}", file=sys.stderr)
        return 2
    if not 0 <= args.id < code.N:
        print(f"error: --id must be in [0, {code.N})", file=sys.stderr)
        return 2
    store_dir = args.store or tempfile.mkdtemp(prefix="causalec-serve-")

    async def run() -> int:
        host, port = addresses[args.id]
        store = FileDurableStore(store_dir)
        server = AsyncioServer(
            ServerCore(args.id, code, ServerConfig(gc_interval=args.gc_interval)),
            store, host=host, port=port,
        )
        server.set_peers(addresses)
        if store.load(args.id) is not None:
            await server.restart()  # resume from the on-disk checkpoint
            resumed = " (resumed from checkpoint)"
        else:
            await server.start()
            server.connect_peers()
            resumed = ""
        print(f"server {args.id}/{code.N} ({code.name}) listening on "
              f"{server.host}:{server.port}{resumed}; checkpoints in "
              f"{store_dir}")
        await asyncio.Event().wait()  # serve until interrupted
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CausalEC reproduction (PODC 2023) -- demos and analyses",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", help="quickstart on the Example 1 code")
    p.add_argument("--rtt", type=float, default=10.0)
    p.set_defaults(fn=cmd_demo)

    p = sub.add_parser("fig2", help="regenerate the Fig. 2 table (analytic)")
    p.set_defaults(fn=cmd_fig2)

    p = sub.add_parser("ycsb", help="Sec. 4.2 YCSB storage analysis")
    p.add_argument("--t-gc", type=float, default=120.0)
    p.add_argument("--k", type=int, default=4)
    p.set_defaults(fn=cmd_ycsb)

    p = sub.add_parser("design", help="cross-object code designer")
    p.add_argument("--objects", type=int, default=4)
    p.add_argument("--objective", default="worst_then_avg",
                   choices=["worst_then_avg", "avg_then_worst"])
    p.add_argument("--restarts", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_design)

    p = sub.add_parser("bench", help="workload run with latency summary")
    p.add_argument("--ops", type=int, default=60)
    p.add_argument("--read-ratio", type=float, default=0.5)
    p.add_argument("--max-latency", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "cluster", help="boot a live asyncio TCP cluster on localhost"
    )
    p.add_argument("--code", default="example1", choices=["example1", "six-dc"])
    p.add_argument("--ops", type=int, default=24)
    p.add_argument("--gc-interval", type=float, default=25.0)
    p.add_argument("--kill", type=int, default=None, metavar="SERVER",
                   help="crash this server mid-workload, then restart it")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_cluster)

    p = sub.add_parser(
        "serve", help="run one CausalEC server as a standalone TCP process"
    )
    p.add_argument("--id", type=int, required=True,
                   help="this server's id in [0, N)")
    p.add_argument("--peers", required=True,
                   help="comma-separated host:port for servers 0..N-1")
    p.add_argument("--code", default="example1", choices=["example1", "six-dc"])
    p.add_argument("--store", default=None,
                   help="checkpoint directory (default: a fresh temp dir)")
    p.add_argument("--gc-interval", type=float, default=25.0)
    p.set_defaults(fn=cmd_serve)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
