"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``    -- the quickstart scenario on the Example 1 code.
* ``fig2``    -- regenerate the Fig. 2 comparison table (analytic).
* ``ycsb``    -- the Sec. 4.2 YCSB storage analysis at paper scale.
* ``design``  -- run the cross-object code designer on the AWS topology.
* ``bench``   -- a quick throughput/latency run of CausalEC under load.
* ``bench-macro`` -- open-loop throughput/latency sweep on the live
  cluster (``--shards N`` for the sharded lane), appending run records
  to ``BENCH_macro.json``.
* ``reshard`` -- live resharding demo: add a shard under traffic with
  the online causal auditor attached.
* ``reconfig`` -- live dynamic-membership demo: add, remove, or
  (auto-)replace a server under traffic, epoch-fenced, audited.
* ``cluster`` -- boot a live asyncio TCP cluster on localhost sockets.
* ``chaos``   -- seeded chaos soaks against the live asyncio runtime.
* ``scrub``   -- seeded corruption chaos (frame damage, codeword rot,
  checkpoint rot) under the bit-rot scrubber, in the simulator.
* ``serve``   -- run one CausalEC server as a standalone TCP process.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _print_table(headers: list[str], rows: list[list]) -> None:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def cmd_demo(args: argparse.Namespace) -> int:
    """Quickstart demo on the Example 1 code."""
    from repro import (
        CausalECCluster,
        ConstantLatency,
        PrimeField,
        ServerConfig,
        example1_code,
    )

    cluster = CausalECCluster(
        example1_code(PrimeField(257)),
        latency=ConstantLatency(args.rtt / 2),
        config=ServerConfig(gc_interval=50.0),
    )
    alice, bob = cluster.add_client(0), cluster.add_client(4)
    w = cluster.execute(alice.write(0, cluster.value(42)))
    print(f"write X1=42 at server 1: {w.latency:.1f} ms (local)")
    cluster.run(for_time=1000)
    r = cluster.execute(bob.read(0))
    print(f"read X1 at server 5: {int(r.value[0])} in {r.latency:.1f} ms "
          f"(recovery-set decode)")
    cluster.run(for_time=2000)
    print("history entries after GC:",
          [s.history_size() for s in cluster.servers])
    return 0


def cmd_fig2(args: argparse.Namespace) -> int:
    """Print the analytic Fig. 2 comparison table."""
    from repro.analysis import (
        Topology,
        cross_object_costs,
        cross_object_latency,
        intra_object_costs,
        intra_object_latency,
        partial_replication_costs,
        search_partial_replication,
    )
    from repro.ec import six_dc_code

    topo = Topology.aws_six_dc()
    pr = search_partial_replication(topo, 4)
    prc = partial_replication_costs(topo, pr.placement_sets(), 4)
    io = intra_object_latency(topo, 4)
    ioc = intra_object_costs(topo, 4)
    code = six_dc_code()
    co = cross_object_latency(topo, code)
    coc = cross_object_costs(topo, code)
    rows = [
        ["Partial Replication", f"{pr.profile.worst_case:.0f}",
         f"{pr.profile.average:.2f}", f"{prc.read_value_units:.2f}B",
         f"{prc.write_value_units:.1f}B"],
        ["Intra-Object Coding", f"{io.worst_case:.0f}", f"{io.average:.2f}",
         f"{ioc.read_value_units:.2f}B", f"{ioc.write_value_units:.1f}B"],
        ["Cross-Object Coding", f"{co.worst_case:.0f}", f"{co.average:.2f}",
         f"{coc.read_value_units:.2f}B", f"{coc.write_value_units:.1f}B"],
    ]
    _print_table(
        ["Scheme", "Worst(ms)", "Avg(ms)", "Read", "Write"], rows
    )
    return 0


def cmd_ycsb(args: argparse.Namespace) -> int:
    """Print the Sec. 4.2 YCSB storage analysis."""
    from repro.analysis import analyze_ycsb

    analysis = analyze_ycsb(t_gc=args.t_gc, k=args.k)
    print(analysis.summary())
    return 0


def cmd_design(args: argparse.Namespace) -> int:
    """Run the cross-object code designer on the AWS topology."""
    from repro.analysis import Topology, design_cross_object_code

    topo = Topology.aws_six_dc()
    result = design_cross_object_code(
        topo, args.objects, objective=args.objective,
        restarts=args.restarts, seed=args.seed,
    )
    print(f"objective {args.objective}: worst={result.profile.worst_case:.0f} ms, "
          f"avg={result.profile.average:.2f} ms")
    for s, objs in enumerate(result.assignment):
        symbol = "+".join(f"X{k + 1}" for k in sorted(objs))
        print(f"  {topo.names[s]:<14} stores {symbol}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run a workload and print latency percentiles and throughput."""
    from repro import (
        CausalECCluster,
        PrimeField,
        ServerConfig,
        UniformLatency,
        example1_code,
    )
    from repro.analysis import summarize, throughput
    from repro.workloads import ClosedLoopDriver, WorkloadConfig

    cluster = CausalECCluster(
        example1_code(PrimeField(257)),
        latency=UniformLatency(0.5, args.max_latency),
        seed=args.seed,
        config=ServerConfig(gc_interval=30.0),
    )
    driver = ClosedLoopDriver(
        cluster, num_objects=3,
        config=WorkloadConfig(
            ops_per_client=args.ops, read_ratio=args.read_ratio,
            seed=args.seed,
        ),
    )
    driver.run()
    cluster.run(for_time=5000)
    cluster.assert_no_reencoding_errors()
    stats = summarize(cluster.history)
    rows = [[kind] + s.row() for kind, s in stats.items()]
    _print_table(["op", "count", "mean", "p50", "p95", "p99", "worst"], rows)
    print(f"throughput: {throughput(cluster.history):.0f} ops/s (simulated)")
    return 0


def _cli_code(name: str):
    from repro.ec.codes import example1_code, six_dc_code

    return six_dc_code() if name == "six-dc" else example1_code()


def cmd_bench_macro(args: argparse.Namespace) -> int:
    """Open-loop macro benchmark against the live asyncio cluster."""
    from pathlib import Path

    from repro.ec.codes import example1_code, six_dc_code
    from repro.ec.field import PrimeField
    from repro.runtime.asyncio_rt import install_uvloop
    from repro.workloads.live_open_loop import run_macro_sweep
    from repro.workloads.records import append_bench_record
    from repro.workloads.sharded_open_loop import run_sharded_sweep

    if args.uvloop and install_uvloop():
        print("using uvloop")
    if args.crc_compare and args.shards:
        print("error: --crc-compare and --shards are mutually exclusive",
              file=sys.stderr)
        return 2
    rates = tuple(float(r) for r in args.rates.split(","))
    if args.shards:
        payload = run_sharded_sweep(
            num_shards=args.shards,
            num_keys=args.keys,
            rates=rates,
            duration=args.duration,
            read_ratio=args.read_ratio,
            seed=args.seed,
            value_len=args.value_len,
        )
    elif args.crc_compare:
        from repro.runtime import wire

        make = six_dc_code if args.code == "six-dc" else example1_code
        code = make(PrimeField(257), value_len=args.value_len)
        sweeps = {}
        try:
            for crc_on in (True, False):
                wire.set_crc_enabled(crc_on)
                sweeps[crc_on] = run_macro_sweep(
                    code=code,
                    rates=rates,
                    duration=args.duration,
                    read_ratio=args.read_ratio,
                    seed=args.seed,
                    compare_unbatched=False,
                )
        finally:
            wire.set_crc_enabled(True)
        for crc_on, sweep in sweeps.items():
            for r in sweep["results"]:
                r["crc"] = crc_on
        on_rows = sweeps[True]["results"]
        off_rows = sweeps[False]["results"]
        best_on = max(r["ops_per_s"] for r in on_rows)
        best_off = max(r["ops_per_s"] for r in off_rows)
        payload = sweeps[True]
        payload["results"] = on_rows + off_rows
        payload["crc_compare"] = {
            "crc_on_ops_per_s": best_on,
            "crc_off_ops_per_s": best_off,
            "overhead_pct": (
                100.0 * (best_off - best_on) / best_off if best_off else 0.0
            ),
        }
    else:
        make = six_dc_code if args.code == "six-dc" else example1_code
        code = make(PrimeField(257), value_len=args.value_len)
        payload = run_macro_sweep(
            code=code,
            rates=rates,
            duration=args.duration,
            read_ratio=args.read_ratio,
            seed=args.seed,
            compare_unbatched=not args.no_compare,
        )

    def _lane(r: dict) -> str:
        if args.shards:
            return str(r["shards"])
        if "crc" in r:
            return "crc-on" if r["crc"] else "crc-off"
        return "on" if r["batch"] else "off"

    rows = [
        [
            f"{r['rate']:g}",
            _lane(r),
            r["offered"],
            r["completed"],
            f"{r['ops_per_s']:.1f}",
            f"{r['p50_ms']:.2f}" if r["p50_ms"] is not None else "-",
            f"{r['p99_ms']:.2f}" if r["p99_ms"] is not None else "-",
            f"{r['p999_ms']:.2f}" if r["p999_ms"] is not None else "-",
            f"{r['frames_per_op']:.1f}",
            f"{r['flushes_per_op']:.1f}",
        ]
        for r in payload["results"]
    ]
    _print_table(
        ["rate",
         "shards" if args.shards else (
             "crc" if args.crc_compare else "batch"),
         "offered", "done",
         "ops/s", "p50ms", "p99ms", "p999ms", "frames/op", "flushes/op"],
        rows,
    )
    if args.crc_compare:
        cc = payload["crc_compare"]
        print(f"frame CRC overhead: {cc['crc_on_ops_per_s']:.1f} ops/s on "
              f"vs {cc['crc_off_ops_per_s']:.1f} ops/s off "
              f"({cc['overhead_pct']:+.1f}%)")
    out = Path(args.out)
    doc = append_bench_record(out, payload)
    print(f"appended run {len(doc['runs'])} to {out}")
    return 0


def cmd_reshard(args: argparse.Namespace) -> int:
    """Live resharding demo: add a shard under traffic, audit the history."""
    import asyncio

    from repro.core.server import ServerConfig
    from repro.protocol.client_core import RetryPolicy
    from repro.runtime.sharded_rt import ShardedAsyncioCluster
    from repro.workloads.live_open_loop import LiveOpenLoopConfig
    from repro.workloads.sharded_open_loop import ShardedOpenLoopDriver

    keys = [f"key{i:03d}" for i in range(args.keys)]

    async def run() -> int:
        store = ShardedAsyncioCluster(
            keys,
            num_shards=args.shards,
            slots_per_shard=args.keys,  # capacity for any ring imbalance
            value_len=args.value_len,
            config=ServerConfig(gc_interval=args.gc_interval),
            retry=RetryPolicy(timeout=250.0, max_retries=6),
            audit=True,
        )
        await store.start()
        print(f"booted {args.shards} shards x {store.num_servers} servers; "
              f"{args.keys} keys on ring epoch {store.router.view_version}")
        driver = ShardedOpenLoopDriver(
            store,
            keys,
            LiveOpenLoopConfig(
                rate_per_site=args.rate / store.num_servers,
                duration=args.duration,
                seed=args.seed,
            ),
        )

        async def reshard_mid_run():
            await asyncio.sleep(args.duration / 3)
            print(f"adding shard {args.shards} mid-traffic ...")
            return await store.add_shard(args.shards)

        result, (change, stats) = await asyncio.gather(
            driver.run(), reshard_mid_run()
        )
        await store.quiesce()
        violations = store.finalize_audit()
        await store.shutdown()
        print(f"view v{stats['version']}: {stats['moves']} keys moved "
              f"({len(stats['migrated'])} migrated, "
              f"{len(stats['skipped'])} never written)")
        for mv in change.moves:
            print(f"  {mv.key}: shard {mv.src_shard} -> {mv.dst_shard} "
                  f"(gen {mv.gen})")
        print(f"traffic: {result['completed']}/{result['offered']} ops, "
              f"{result['failed']} failed, {result['dropped']} dropped")
        print(f"online auditor: "
              f"{store.auditor.checker.records_ingested} records, "
              f"{len(violations)} violation(s)")
        for v in violations:
            print(f"  auditor violation: {v.kind}: {v.detail}")
        return 1 if violations else 0

    return asyncio.run(run())


def cmd_reconfig(args: argparse.Namespace) -> int:
    """Live dynamic-membership demo: add/remove/replace under traffic."""
    import asyncio

    import numpy as np

    from repro.consistency.causal import check_causal_consistency
    from repro.protocol.client_core import RetryPolicy
    from repro.protocol.failure_detector import FailureDetectorConfig
    from repro.protocol.repair_core import RepairConfig
    from repro.protocol.server_core import ServerConfig
    from repro.runtime.asyncio_rt import AsyncioCluster
    from repro.runtime.auditor import OnlineAuditor

    code = _cli_code(args.code)
    if not 0 <= args.server < code.N:
        print(f"error: --server must be in [0, {code.N})", file=sys.stderr)
        return 2

    async def run() -> int:
        auditor = OnlineAuditor()
        await auditor.start()
        detector = None
        if args.action == "replace":
            # replace is driven end-to-end by the detector's confirmed-dead
            # escalation: kill the server forever, wait for auto-replace
            detector = FailureDetectorConfig(
                heartbeat_interval=25.0,
                suspect_after=60.0,
                confirm_after=args.confirm_after,
            )
        cluster = AsyncioCluster(
            code,
            config=ServerConfig(gc_interval=args.gc_interval),
            retry=RetryPolicy(timeout=250.0, max_retries=6),
            detector=detector,
            audit_addr=auditor.address,
            repair=RepairConfig(digest_interval=60.0),
            auto_replace=args.action == "replace",
        )
        await cluster.start()
        print(f"booted {code.N} servers ({code.name}) at cfg epoch 0")
        clients = [
            await cluster.add_client(i, node_id=100 + i)
            for i in range(code.N)
        ]
        rng = np.random.default_rng(args.seed)
        failed = 0

        async def traffic(n: int) -> None:
            nonlocal failed
            for _ in range(n):
                client = clients[int(rng.integers(code.N))]
                home = client.core.server_id
                if home < len(cluster.servers) and cluster.servers[home].halted:
                    continue  # its home server is down mid-change
                obj = int(rng.integers(code.K))
                if rng.random() < 0.5:
                    op = await client.write(
                        obj, cluster.value(int(rng.integers(100)))
                    )
                else:
                    op = await client.read(obj)
                failed += bool(op.failed)

        await traffic(args.ops // 2)
        if args.action == "add":
            if args.code == "six-dc":
                from repro.analysis import Topology
                from repro.analysis.happiness import rank_domains
                from repro.ec.codes import extend_code

                topo = Topology.aws_six_dc()
                preview = extend_code(code, 0xCEC0DE)
                ranked = rank_domains(preview, list(range(code.N)))
                (div, hap), best = ranked[0]
                print(f"happiness placement: joiner row lands best in "
                      f"{topo.names[best]} (diversity {div}, happiness {hap})")
            joiner = await cluster.add_server()
            print(f"epoch {cluster.cfg_epoch}: joined server "
                  f"{joiner.core.node_id} (code {joiner.core.code.name}); "
                  f"anti-entropy is re-encoding its row ...")
        elif args.action == "remove":
            await cluster.remove_server(args.server)
            print(f"epoch {cluster.cfg_epoch}: removed server {args.server} "
                  f"(survivors cover every object)")
        else:
            print(f"killing server {args.server} forever ...")
            await cluster.kill_server(args.server, forever=True)
            deadline = asyncio.get_running_loop().time() + 30.0
            while (
                cluster.cfg_epoch == 0 or cluster.servers[args.server].halted
            ):
                if asyncio.get_running_loop().time() > deadline:
                    print("error: auto-replace never fired", file=sys.stderr)
                    return 1
                await asyncio.sleep(0.05)
            print(f"epoch {cluster.cfg_epoch}: detector confirmed server "
                  f"{args.server} dead; auto-replaced with a fresh machine "
                  f"on the same endpoint")
        await traffic(args.ops - args.ops // 2)
        await asyncio.sleep(args.heal)  # anti-entropy heals new incarnations
        await cluster.quiesce()
        completed = [op for op in cluster.history.operations if op.done]
        check_causal_consistency(cluster.history, code.zero_value())
        print(f"{len(completed)} operations completed ({failed} failed "
              f"fast), causally consistent")
        rs = cluster.repair_stats()
        print(f"repair: {int(rs.get('rounds_completed', 0))} round(s), "
              f"{int(rs.get('entries_installed', 0))} install(s), "
              f"{int(rs.get('bits_shipped', 0)) // 8} bytes shipped")
        for note, epoch, members, joiner_id in cluster.reconfig_log:
            extra = f", joiner {joiner_id}" if joiner_id is not None else ""
            print(f"  epoch {epoch}: {note} -> members {list(members)}{extra}")
        fenced = sum(s.reconfig.stats.frames_fenced for s in cluster.servers)
        if fenced:
            print(f"fencing: {fenced} stale-epoch hello(s) rejected")
        violations = auditor.finalize()
        print(f"online auditor: {auditor.checker.records_ingested} records, "
              f"{len(violations)} violation(s)")
        for v in violations:
            print(f"  auditor violation: {v.kind}: {v.detail}")
        await cluster.shutdown()
        await auditor.close()
        return 1 if violations else 0

    return asyncio.run(run())


def cmd_cluster(args: argparse.Namespace) -> int:
    """Boot a live N-server asyncio cluster on localhost and drive it."""
    import asyncio

    import numpy as np

    from repro.consistency.causal import check_causal_consistency
    from repro.protocol.client_core import RetryPolicy
    from repro.protocol.failure_detector import FailureDetectorConfig
    from repro.protocol.repair_core import RepairConfig
    from repro.protocol.scrub_core import ScrubConfig
    from repro.protocol.server_core import ServerConfig
    from repro.runtime.asyncio_rt import AsyncioCluster
    from repro.runtime.auditor import OnlineAuditor
    from repro.runtime.chaos_rt import LiveFaultInjector
    from repro.runtime.supervisor import RestartPolicy, Supervisor
    from repro.sim.network import LinkFaults

    code = _cli_code(args.code)

    async def run() -> int:
        auditor = None
        if args.audit:
            auditor = OnlineAuditor()
            await auditor.start()
        chaos = None
        if args.drop > 0 or args.dup > 0 or args.corrupt > 0:
            chaos = LiveFaultInjector(
                LinkFaults(drop_prob=args.drop, dup_prob=args.dup,
                           corrupt_prob=args.corrupt, seed=args.seed),
                jitter_ms=args.jitter,
            )
        cluster = AsyncioCluster(
            code,
            config=ServerConfig(gc_interval=args.gc_interval),
            retry=RetryPolicy(timeout=40.0, max_retries=8),
            chaos=chaos,
            detector=FailureDetectorConfig() if args.detector else None,
            audit_addr=auditor.address if auditor else None,
            repair=(
                RepairConfig(digest_interval=args.repair_interval)
                if args.repair
                else None
            ),
            scrub=(
                ScrubConfig(interval=args.scrub_interval)
                if args.scrub_interval
                else None
            ),
        )
        await cluster.start()
        ports = [s.port for s in cluster.servers]
        print(f"booted {code.N} servers on localhost ports {ports}")
        supervisor = None
        if args.supervise:
            supervisor = Supervisor(
                cluster,
                RestartPolicy(initial_delay=args.restart_delay,
                              backoff=args.restart_backoff),
            )
            supervisor.start()
            print(f"supervisor armed (initial delay {args.restart_delay}s, "
                  f"backoff x{args.restart_backoff})")
        clients = [
            await cluster.add_client(i, failover=args.detector)
            for i in range(code.N)
        ]
        rng = np.random.default_rng(args.seed)
        crashes = sorted(args.crash or [])
        # crash injections spread evenly across the workload
        crash_at = {
            (args.ops * (k + 1)) // (len(crashes) + 1): victim
            for k, victim in enumerate(crashes)
        }
        kill_at = args.ops // 2 if args.kill is not None else None
        for n in range(args.ops):
            if n == kill_at:
                print(f"killing server {args.kill} mid-workload ...")
                await cluster.kill_server(args.kill)
            if n in crash_at:
                victim = crash_at[n]
                if supervisor is not None:
                    print(f"injecting crash of server {victim} ...")
                    await supervisor.inject_crash(victim)
                else:
                    print(f"killing server {victim} (no supervisor: down "
                          f"until the workload ends) ...")
                    await cluster.kill_server(victim)
            client = clients[int(rng.integers(code.N))]
            if client.core.server_id < code.N \
                    and cluster.servers[client.core.server_id].halted \
                    and not args.detector:
                continue  # its home server is down; skip, not hang
            obj = int(rng.integers(code.K))
            if rng.random() < 0.5:
                op = await client.write(obj, cluster.value(int(rng.integers(100))))
            else:
                op = await client.read(obj)
            if op.failed:
                print(f"  op {op.opid} failed fast: {op.error}")
        if kill_at is not None:
            await cluster.restart_server(args.kill)
            print(f"server {args.kill} restarted from its durable checkpoint")
        if supervisor is not None:
            deadline = asyncio.get_running_loop().time() + 15.0
            while any(s.halted for s in cluster.servers):
                if asyncio.get_running_loop().time() > deadline:
                    print("error: supervisor failed to heal the cluster",
                          file=sys.stderr)
                    return 1
                await asyncio.sleep(0.05)
        elif crashes:
            for victim in crashes:
                if cluster.servers[victim].halted:
                    await cluster.restart_server(victim)
        if chaos is not None:
            chaos.disable()
        await cluster.quiesce()
        completed = [op for op in cluster.history.operations if op.done]
        check_causal_consistency(cluster.history, code.zero_value())
        lat = [op.latency for op in completed]
        print(f"{len(completed)} operations completed, causally consistent")
        if lat:
            print(f"latency: mean {np.mean(lat):.2f} ms, "
                  f"max {np.max(lat):.2f} ms (real sockets, localhost)")
        print(f"durable persists: {sum(cluster.store.persist_counts.values())}")
        if chaos is not None:
            print(f"chaos: {chaos.dropped} dropped, {chaos.duplicated} "
                  f"duplicated, {chaos.delayed} delayed, "
                  f"{chaos.corrupted} corrupted frames")
        if args.detector:
            suspects = sum(
                1 for _, _, k in cluster.detector_transitions if k == "suspect"
            )
            print(f"failure detector: {suspects} suspicion(s), "
                  f"{sum(len(c.switch_log) for c in clients)} client "
                  f"failover(s)")
        if args.repair:
            rs = cluster.repair_stats()
            print(f"repair: {int(rs.get('rounds_completed', 0))} round(s), "
                  f"{int(rs.get('entries_installed', 0))} install(s), "
                  f"{int(rs.get('bits_shipped', 0)) // 8} bytes shipped")
        if args.scrub_interval:
            ss = cluster.scrub_stats()
            print(f"scrub: {int(ss.get('rounds', 0))} round(s), "
                  f"{int(ss.get('symbols_verified', 0))} symbol(s) and "
                  f"{int(ss.get('checkpoints_verified', 0))} checkpoint(s) "
                  f"verified, "
                  f"{int(ss.get('integrity_quarantines', 0))} quarantine(s), "
                  f"{int(ss.get('healed', 0))} healed, "
                  f"{int(ss.get('frames_corrupt', 0))} CRC rejection(s), "
                  f"{int(ss.get('checkpoint_reports', 0))} checkpoint "
                  f"report(s)")
        if supervisor is not None:
            print(f"supervisor: {sum(supervisor.restarts.values())} "
                  f"restart(s)")
            await supervisor.stop()
        if auditor is not None:
            violations = auditor.finalize()
            print(f"online auditor: {auditor.checker.records_ingested} "
                  f"records, {len(violations)} violation(s)")
            for v in violations:
                print(f"  auditor violation: {v.kind}: {v.detail}")
            await cluster.shutdown()
            await auditor.close()
            return 1 if violations else 0
        await cluster.shutdown()
        return 0

    return asyncio.run(run())


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run seeded live chaos soaks and print one summary per seed."""
    from repro.protocol.repair_core import RepairConfig
    from repro.runtime.live_chaos import run_live_chaos
    from repro.sim.chaos import ChaosConfig

    code = _cli_code(args.code)
    cfg = ChaosConfig(ops_per_client=args.ops)
    failures = 0
    for seed in args.seeds:
        result = run_live_chaos(
            code, seed, config=cfg,
            time_scale=args.time_scale,
            artifact_dir=args.artifacts,
            repair=RepairConfig() if args.repair else None,
        )
        print(result.summary())
        if not result.ok:
            failures += 1
            for path in result.artifacts:
                print(f"  artifact: {path}")
    return 1 if failures else 0


def cmd_scrub(args: argparse.Namespace) -> int:
    """Seeded corruption chaos under the bit-rot scrubber (simulated)."""
    from repro.protocol.repair_core import RepairConfig
    from repro.sim.chaos import ChaosConfig, run_chaos

    code = _cli_code(args.code)
    cfg = ChaosConfig(
        ops_per_client=args.ops,
        corrupt_prob_max=args.corrupt,
        codeword_rots=args.codeword_rots,
        checkpoint_rots=args.checkpoint_rots,
        torn_writes=args.torn_writes,
        scrub_interval=args.scrub_interval,
    )
    failures = 0
    for seed in args.seeds:
        # checkpoint damage needs the repair overlay: the victim restarts
        # empty and only anti-entropy can re-derive its state from peers
        result = run_chaos(code, seed, cfg, repair=RepairConfig())
        print(result.summary())
        if not result.ok:
            failures += 1
    return 1 if failures else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run one standalone CausalEC server on a real TCP socket."""
    import asyncio
    import tempfile

    from repro.protocol.server_core import ServerConfig, ServerCore
    from repro.runtime.asyncio_rt import AsyncioServer, FileDurableStore

    code = _cli_code(args.code)
    addresses: dict[int, tuple[str, int]] = {}
    for i, hostport in enumerate(args.peers.split(",")):
        host, _, port = hostport.strip().rpartition(":")
        addresses[i] = (host or "127.0.0.1", int(port))
    if len(addresses) != code.N:
        print(f"error: --peers must list {code.N} host:port entries for "
              f"code {code.name}", file=sys.stderr)
        return 2
    if not 0 <= args.id < code.N:
        print(f"error: --id must be in [0, {code.N})", file=sys.stderr)
        return 2
    store_dir = args.store or tempfile.mkdtemp(prefix="causalec-serve-")

    async def run() -> int:
        host, port = addresses[args.id]
        store = FileDurableStore(store_dir)
        server = AsyncioServer(
            ServerCore(args.id, code, ServerConfig(gc_interval=args.gc_interval)),
            store, host=host, port=port,
        )
        server.set_peers(addresses)
        if store.load(args.id) is not None:
            await server.restart()  # resume from the on-disk checkpoint
            resumed = " (resumed from checkpoint)"
        else:
            await server.start()
            server.connect_peers()
            resumed = ""
        print(f"server {args.id}/{code.N} ({code.name}) listening on "
              f"{server.host}:{server.port}{resumed}; checkpoints in "
              f"{store_dir}")
        await asyncio.Event().wait()  # serve until interrupted
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CausalEC reproduction (PODC 2023) -- demos and analyses",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", help="quickstart on the Example 1 code")
    p.add_argument("--rtt", type=float, default=10.0)
    p.set_defaults(fn=cmd_demo)

    p = sub.add_parser("fig2", help="regenerate the Fig. 2 table (analytic)")
    p.set_defaults(fn=cmd_fig2)

    p = sub.add_parser("ycsb", help="Sec. 4.2 YCSB storage analysis")
    p.add_argument("--t-gc", type=float, default=120.0)
    p.add_argument("--k", type=int, default=4)
    p.set_defaults(fn=cmd_ycsb)

    p = sub.add_parser("design", help="cross-object code designer")
    p.add_argument("--objects", type=int, default=4)
    p.add_argument("--objective", default="worst_then_avg",
                   choices=["worst_then_avg", "avg_then_worst"])
    p.add_argument("--restarts", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_design)

    p = sub.add_parser("bench", help="workload run with latency summary")
    p.add_argument("--ops", type=int, default=60)
    p.add_argument("--read-ratio", type=float, default=0.5)
    p.add_argument("--max-latency", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "bench-macro",
        help="open-loop ops/s + latency sweep on the live cluster",
    )
    p.add_argument("--code", default="example1", choices=["example1", "six-dc"])
    p.add_argument(
        "--rates", default="60,120",
        help="comma-separated cluster-wide arrival rates (ops/s)",
    )
    p.add_argument("--duration", type=float, default=1.5,
                   help="seconds of arrivals per rate")
    p.add_argument("--read-ratio", type=float, default=0.5)
    p.add_argument("--value-len", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-compare", action="store_true",
                   help="skip the unbatched comparison lane")
    p.add_argument("--uvloop", action="store_true",
                   help="use uvloop when installed")
    p.add_argument("--shards", type=int, default=0,
                   help="run the sharded lane: N consistent-hash shards, "
                        "each its own coding group (0 = unsharded)")
    p.add_argument("--keys", type=int, default=8,
                   help="number of keys in the sharded lane's keyspace")
    p.add_argument("--crc-compare", action="store_true",
                   help="run every rate twice, frame CRC on vs off, and "
                        "record the throughput overhead")
    p.add_argument("--out", default="BENCH_macro.json",
                   help="append the run record to this JSON file")
    p.set_defaults(fn=cmd_bench_macro)

    p = sub.add_parser(
        "reshard",
        help="live resharding demo: add a shard under open-loop traffic "
             "with the online causal auditor attached",
    )
    p.add_argument("--shards", type=int, default=2,
                   help="initial shard count (one more is added mid-run)")
    p.add_argument("--keys", type=int, default=10)
    p.add_argument("--rate", type=float, default=80.0,
                   help="cluster-wide arrival rate (ops/s)")
    p.add_argument("--duration", type=float, default=1.5,
                   help="seconds of arrivals (the view change fires at 1/3)")
    p.add_argument("--value-len", type=int, default=8)
    p.add_argument("--gc-interval", type=float, default=50.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_reshard)

    p = sub.add_parser(
        "reconfig",
        help="live dynamic-membership demo: add/remove/replace a server "
             "under open-loop traffic with the online auditor attached",
    )
    p.add_argument("action", choices=["add", "remove", "replace"],
                   help="add: join a redundancy server (extended code); "
                        "remove: retire a server; replace: kill a server "
                        "forever and let the detector auto-replace it")
    p.add_argument("--code", default="example1", choices=["example1", "six-dc"])
    p.add_argument("--server", type=int, default=2,
                   help="victim server for remove/replace")
    p.add_argument("--ops", type=int, default=24)
    p.add_argument("--gc-interval", type=float, default=50.0)
    p.add_argument("--confirm-after", type=float, default=150.0,
                   help="detector confirmed-dead threshold in ms (replace)")
    p.add_argument("--heal", type=float, default=1.5,
                   help="seconds to let anti-entropy heal new incarnations")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_reconfig)

    p = sub.add_parser(
        "cluster", help="boot a live asyncio TCP cluster on localhost"
    )
    p.add_argument("--code", default="example1", choices=["example1", "six-dc"])
    p.add_argument("--ops", type=int, default=24)
    p.add_argument("--gc-interval", type=float, default=25.0)
    p.add_argument("--kill", type=int, default=None, metavar="SERVER",
                   help="crash this server mid-workload, then restart it")
    p.add_argument("--crash", type=int, action="append", metavar="SERVER",
                   help="inject a crash of this server mid-workload "
                        "(repeatable); with --supervise the supervisor "
                        "restarts it with exponential backoff")
    p.add_argument("--supervise", action="store_true",
                   help="run a supervisor that auto-restarts crashed servers")
    p.add_argument("--restart-delay", type=float, default=0.1,
                   help="supervisor initial restart delay in seconds")
    p.add_argument("--restart-backoff", type=float, default=2.0,
                   help="supervisor restart delay multiplier")
    p.add_argument("--detector", action="store_true",
                   help="run heartbeat failure detectors and give clients "
                        "read failover to other servers")
    p.add_argument("--repair", action="store_true",
                   help="run the anti-entropy repair overlay (digest "
                        "gossip + background symbol re-encoding)")
    p.add_argument("--repair-interval", type=float, default=100.0,
                   help="repair digest gossip interval in ms")
    p.add_argument("--audit", action="store_true",
                   help="stream decision logs to an online causal-"
                        "consistency auditor; exit 1 on any violation")
    p.add_argument("--drop", type=float, default=0.0,
                   help="per-frame drop probability on server channels")
    p.add_argument("--dup", type=float, default=0.0,
                   help="per-frame duplication probability")
    p.add_argument("--jitter", type=float, default=0.0,
                   help="max per-frame extra delay in ms (reordering)")
    p.add_argument("--corrupt", type=float, default=0.0,
                   help="per-frame in-flight bit-flip probability (the "
                        "frame CRC rejects damaged frames; ARQ retransmits)")
    p.add_argument("--scrub-interval", type=float, default=0.0,
                   help="run the bit-rot scrubber at this interval in ms "
                        "(0 = off); pairs well with --repair so "
                        "quarantined symbols heal")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_cluster)

    p = sub.add_parser(
        "chaos", help="seeded chaos soak against the live asyncio runtime"
    )
    p.add_argument("--code", default="six-dc", choices=["example1", "six-dc"])
    p.add_argument("--seeds", type=lambda s: [int(x) for x in s.split(",")],
                   default=[1, 2, 3],
                   help="comma-separated seeds, one soak each")
    p.add_argument("--ops", type=int, default=8,
                   help="operations per client")
    p.add_argument("--time-scale", type=float, default=4.0,
                   help="real ms per simulated schedule ms")
    p.add_argument("--repair", action="store_true",
                   help="run the anti-entropy repair overlay during the soak")
    p.add_argument("--artifacts", default=None, metavar="DIR",
                   help="write auditor/supervisor dumps here on failure")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "scrub",
        help="seeded corruption chaos under the bit-rot scrubber "
             "(simulated: frame damage, codeword rot, checkpoint rot)",
    )
    p.add_argument("--code", default="example1", choices=["example1", "six-dc"])
    p.add_argument("--seeds", type=lambda s: [int(x) for x in s.split(",")],
                   default=[7, 11],
                   help="comma-separated seeds, one soak each")
    p.add_argument("--ops", type=int, default=12,
                   help="operations per client")
    p.add_argument("--corrupt", type=float, default=0.1,
                   help="in-flight frame corruption probability ceiling")
    p.add_argument("--codeword-rots", type=int, default=2,
                   help="seeded in-memory codeword bit flips")
    p.add_argument("--checkpoint-rots", type=int, default=1,
                   help="checkpoint files damaged inside crash windows")
    p.add_argument("--torn-writes", type=int, default=1,
                   help="checkpoint files truncated inside crash windows")
    p.add_argument("--scrub-interval", type=float, default=50.0,
                   help="scrub round interval in simulated ms")
    p.set_defaults(fn=cmd_scrub)

    p = sub.add_parser(
        "serve", help="run one CausalEC server as a standalone TCP process"
    )
    p.add_argument("--id", type=int, required=True,
                   help="this server's id in [0, N)")
    p.add_argument("--peers", required=True,
                   help="comma-separated host:port for servers 0..N-1")
    p.add_argument("--code", default="example1", choices=["example1", "six-dc"])
    p.add_argument("--store", default=None,
                   help="checkpoint directory (default: a fresh temp dir)")
    p.add_argument("--gc-interval", type=float, default=25.0)
    p.set_defaults(fn=cmd_serve)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
