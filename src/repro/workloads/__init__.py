"""Workload generation: key distributions and load drivers."""

from .driver import ClosedLoopDriver, WorkloadConfig
from .live_open_loop import (
    LiveOpenLoopConfig,
    LiveOpenLoopDriver,
    run_macro_sweep,
)
from .open_loop import OpenLoopConfig, OpenLoopDriver
from .records import append_bench_record
from .sharded_open_loop import ShardedOpenLoopDriver, run_sharded_sweep
from .ycsb import (
    YCSB_PRESETS,
    LatestGenerator,
    YcsbPreset,
    ycsb_preset,
)
from .generators import (
    HotspotGenerator,
    KeyGenerator,
    UniformGenerator,
    ZipfianGenerator,
    zipf_harmonic,
    zipf_tail_mass,
)

__all__ = [
    "YcsbPreset",
    "YCSB_PRESETS",
    "ycsb_preset",
    "LatestGenerator",
    "ClosedLoopDriver",
    "WorkloadConfig",
    "OpenLoopDriver",
    "OpenLoopConfig",
    "LiveOpenLoopDriver",
    "LiveOpenLoopConfig",
    "run_macro_sweep",
    "ShardedOpenLoopDriver",
    "run_sharded_sweep",
    "append_bench_record",
    "KeyGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
    "HotspotGenerator",
    "zipf_harmonic",
    "zipf_tail_mass",
]
