"""Append-only benchmark record files.

``BENCH_macro.json`` used to be overwritten on every run, destroying the
history CI had accumulated.  :func:`append_bench_record` instead keeps an
accumulating document::

    {"schema": "repro-macro-bench-runs/v1",
     "runs": [ {<sweep payload>, "git_sha": ..., "recorded_at": ...}, ... ]}

Each appended run is stamped with the current git commit (``None`` when
not running inside a git checkout) and a UTC timestamp.  A pre-existing
legacy file holding a single ``repro-macro-bench/v1`` payload is wrapped
as the first run, so old artifacts upgrade in place.
"""

from __future__ import annotations

import json
import subprocess
from datetime import datetime, timezone
from pathlib import Path

__all__ = ["RUNS_SCHEMA", "append_bench_record"]

#: schema tag of the accumulating multi-run document
RUNS_SCHEMA = "repro-macro-bench-runs/v1"


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def append_bench_record(path: str | Path, payload: dict) -> dict:
    """Append one run record to ``path``; returns the full document.

    The payload is stamped with ``git_sha`` and ``recorded_at`` (UTC ISO
    8601) unless it already carries them.  Unreadable or foreign files
    are replaced by a fresh document rather than crashing the benchmark.
    """
    path = Path(path)
    record = dict(payload)
    record.setdefault("git_sha", _git_sha())
    record.setdefault(
        "recorded_at", datetime.now(timezone.utc).isoformat()
    )
    doc = {"schema": RUNS_SCHEMA, "runs": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = None
        if isinstance(existing, dict) and existing.get("schema") == RUNS_SCHEMA:
            doc = existing
            doc.setdefault("runs", [])
        elif isinstance(existing, dict) and "schema" in existing:
            # legacy single-run payload: keep it as the first run
            doc["runs"].append(existing)
    doc["runs"].append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc
