"""YCSB core workload presets (Cooper et al. [17], the paper's reference).

Sec. 4.2 analyses "the default parameters of YCSB workload"; this module
provides the standard core workloads as presets for the closed-loop driver:

| preset | mix                     | distribution |
|--------|-------------------------|--------------|
| A      | 50% read / 50% update   | zipfian      |
| B      | 95% read / 5% update    | zipfian      |
| C      | 100% read               | zipfian      |
| D      | 95% read / 5% insert    | latest       |
| F      | read-modify-write mix   | zipfian      |

(Workload E is a scan workload; range scans are out of scope for a
read/write register store, as in the paper.)

``LatestGenerator`` implements YCSB's "latest" distribution: popularity is
zipfian over *recency ranks*, so the most recently inserted keys are the
hottest.  Workload F issues read-modify-write pairs: the driver reads a key
and immediately writes it back (two operations per logical op).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .generators import KeyGenerator, ZipfianGenerator

__all__ = ["LatestGenerator", "YcsbPreset", "YCSB_PRESETS", "ycsb_preset"]


class LatestGenerator(KeyGenerator):
    """YCSB 'latest': zipfian over recency; rank 0 = newest key.

    ``advance()`` records an insertion, shifting recency.  Keys are the
    integers ``[0, num_keys)``; the newest key is ``newest`` and recency
    rank r maps to key ``(newest - r) mod num_keys``.
    """

    def __init__(self, num_keys: int, theta: float = 0.99):
        self._zipf = ZipfianGenerator(num_keys, theta)
        self.num_keys = num_keys
        self.newest = 0

    def advance(self) -> int:
        """Record an insert: a new key becomes the hottest."""
        self.newest = (self.newest + 1) % self.num_keys
        return self.newest

    def sample(self, rng: np.random.Generator) -> int:
        recency = self._zipf.sample(rng)
        return (self.newest - recency) % self.num_keys

    def probability(self, rank: int) -> float:
        """Probability of the key at *recency* rank ``rank``."""
        return self._zipf.probability(rank)


@dataclass(frozen=True)
class YcsbPreset:
    name: str
    read_ratio: float
    distribution: str  # "zipfian" | "latest"
    read_modify_write: bool = False
    insert_on_write: bool = False  # writes advance the latest-distribution

    def make_keygen(self, num_keys: int, theta: float = 0.99) -> KeyGenerator:
        if self.distribution == "zipfian":
            return ZipfianGenerator(num_keys, theta)
        if self.distribution == "latest":
            return LatestGenerator(num_keys, theta)
        raise ValueError(f"unknown distribution {self.distribution!r}")


YCSB_PRESETS: dict[str, YcsbPreset] = {
    "A": YcsbPreset("A", read_ratio=0.5, distribution="zipfian"),
    "B": YcsbPreset("B", read_ratio=0.95, distribution="zipfian"),
    "C": YcsbPreset("C", read_ratio=1.0, distribution="zipfian"),
    "D": YcsbPreset(
        "D", read_ratio=0.95, distribution="latest", insert_on_write=True
    ),
    "F": YcsbPreset(
        "F", read_ratio=0.5, distribution="zipfian", read_modify_write=True
    ),
}


def ycsb_preset(name: str) -> YcsbPreset:
    try:
        return YCSB_PRESETS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown YCSB preset {name!r}; choose from "
            f"{sorted(YCSB_PRESETS)}"
        )
