"""Closed-loop workload driver for simulated clusters.

Attaches one closed-loop client per configured site: each client repeatedly
issues a read or write (per ``read_ratio``) to a key drawn from the key
generator, waits for the response, thinks for an exponential think time, and
repeats -- until its operation budget is exhausted.  This is the YCSB-style
load pattern the paper's Sec. 4.2 analysis assumes.

Values are generated unique-per-write (a counter embedded in the value
vector) so consistency checkers can match reads to writes black-box.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..consistency.history import Operation
from ..core.client import Client
from ..core.cluster import Cluster
from .generators import KeyGenerator, UniformGenerator

__all__ = ["WorkloadConfig", "ClosedLoopDriver", "encode_unique_value"]


def encode_unique_value(cluster, counter: int) -> np.ndarray:
    """Encode ``counter`` injectively into the cluster's value space.

    Consistency checking attributes reads to writes by value, so written
    values must be unique; raises when the value space is too small for the
    number of writes issued (increase ``value_len`` or write fewer values).
    """
    code = getattr(cluster, "code", None)
    if code is not None:
        vlen, order = code.value_len, code.field.order
    else:
        vlen, order = getattr(cluster, "value_len", 1), 1 << 31
    out = np.zeros(vlen, dtype=np.int64)
    c = counter
    for i in range(vlen):
        out[i] = c % order
        c //= order
    if c:
        raise ValueError(
            f"value space of {order}^{vlen} cannot hold {counter} distinct "
            f"write values; use a larger value_len"
        )
    return out


@dataclass
class WorkloadConfig:
    ops_per_client: int = 50
    read_ratio: float = 0.5
    think_time_mean: float = 1.0  # ms between an op's response and the next op
    seed: int = 0


class _DrivenClient(Client):
    """A client that issues its next op from the driver when one completes."""

    driver: "ClosedLoopDriver | None" = None

    def on_complete(self, op: Operation) -> None:
        if self.driver is not None:
            self.driver._op_finished(self)

    def on_failure(self, op: Operation) -> None:
        # unavailability is not the end of the session: move on to the
        # next operation (the failed one stays recorded in the history)
        if self.driver is not None:
            self.driver._op_failed(self)


class ClosedLoopDriver:
    """Runs a closed-loop workload against a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        num_objects: int,
        client_sites: list[int] | None = None,
        keygen: KeyGenerator | None = None,
        config: WorkloadConfig | None = None,
        make_value=None,
        preset=None,
        retry=None,
    ):
        """``preset`` may be a :class:`~repro.workloads.ycsb.YcsbPreset`:
        it supplies the key generator and read ratio, and enables
        read-modify-write pairs (workload F) and insert-driven recency
        (workload D)."""
        self.cluster = cluster
        self.config = config or WorkloadConfig()
        self.preset = preset
        if preset is not None:
            keygen = keygen or preset.make_keygen(num_objects)
            self.config.read_ratio = preset.read_ratio
        self.keygen = keygen or UniformGenerator(num_objects)
        self._rmw_pending: dict[int, int] = {}  # client node id -> key
        self.rng = np.random.default_rng(self.config.seed)
        self._value_counter = itertools.count(1)
        self._make_value = make_value or self._default_value
        sites = client_sites if client_sites is not None else list(
            range(cluster.num_servers)
        )
        self.clients: list[_DrivenClient] = []
        self._remaining: dict[int, int] = {}
        for site in sites:
            client = _DrivenClient(
                cluster._next_node_id,
                cluster.scheduler,
                cluster.network,
                server_id=site,
                history=cluster.history,
                retry=retry if retry is not None else getattr(
                    cluster, "retry", None
                ),
            )
            cluster._next_node_id += 1
            cluster.clients.append(client)
            client.driver = self
            self.clients.append(client)
            self._remaining[client.node_id] = self.config.ops_per_client

    # ------------------------------------------------------------------

    def _default_value(self, counter: int) -> np.ndarray:
        """A unique value per write: the counter spread across the vector."""
        return encode_unique_value(self.cluster, counter)

    def start(self) -> None:
        """Schedule the first operation of every client."""
        for client in self.clients:
            self._schedule_next(client, initial=True)

    def run(self, max_events: int = 5_000_000) -> None:
        """start() + run the simulation until all budgets are spent."""
        self.start()
        self.cluster.scheduler.run(
            max_events=max_events, stop_when=self._all_done
        )

    def _all_done(self) -> bool:
        return all(v <= 0 for v in self._remaining.values()) and not any(
            c.busy for c in self.clients
        )

    def done(self) -> bool:
        return self._all_done()

    # ------------------------------------------------------------------

    def _schedule_next(self, client: _DrivenClient, initial: bool = False) -> None:
        if self._remaining[client.node_id] <= 0:
            return
        delay = float(self.rng.exponential(self.config.think_time_mean))
        if initial:
            # desynchronise client start times
            delay = float(self.rng.uniform(0, self.config.think_time_mean + 1e-6))
        client.set_timer(delay, lambda: self._issue(client))

    def _issue(self, client: _DrivenClient) -> None:
        if client.busy or self._remaining[client.node_id] <= 0:
            return
        self._remaining[client.node_id] -= 1
        obj = self.keygen.sample(self.rng)
        if self.rng.random() < self.config.read_ratio:
            client.read(obj)
        else:
            if self.preset is not None and self.preset.read_modify_write:
                # workload F: a read that will be followed by a write-back
                self._rmw_pending[client.node_id] = obj
                client.read(obj)
                return
            if self.preset is not None and self.preset.insert_on_write:
                # workload D: the write is an insert; it becomes the newest
                obj = self.keygen.advance()
            client.write(obj, self._make_value(next(self._value_counter)))

    def _op_finished(self, client: _DrivenClient) -> None:
        obj = self._rmw_pending.pop(client.node_id, None)
        if obj is not None:
            # complete the read-modify-write pair immediately
            client.write(obj, self._make_value(next(self._value_counter)))
            return
        self._schedule_next(client)

    def _op_failed(self, client: _DrivenClient) -> None:
        """Home server unavailable: drop the op and continue the session."""
        self._rmw_pending.pop(client.node_id, None)
        self._schedule_next(client)
