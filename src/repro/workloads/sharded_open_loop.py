"""Open-loop workload driver for the live *sharded* runtime.

The sharded sibling of :class:`~repro.workloads.live_open_loop
.LiveOpenLoopDriver`: the same Poisson arrival model per site (gaps drawn
from a per-site stream seeded by ``(seed, site)``), but operations target
string keys through pooled :class:`~repro.runtime.sharded_rt
.ShardedSession` objects, so every arrival exercises the shard router --
and, while a view change is in flight, the migration write fence.

:func:`run_sharded_sweep` is the ``--shards`` lane of ``repro
bench-macro``: same payload shape as :func:`~repro.workloads
.live_open_loop.run_macro_sweep` (one result row per arrival rate) with a
``shards`` field on the payload and each row.
"""

from __future__ import annotations

import asyncio

import numpy as np

from .live_open_loop import MACRO_BENCH_SCHEMA, LiveOpenLoopConfig

__all__ = ["ShardedOpenLoopDriver", "run_sharded_sweep"]


class ShardedOpenLoopDriver:
    """Poisson arrivals per site against a sharded store; pooled sessions."""

    def __init__(self, store, keys, config: LiveOpenLoopConfig | None = None,
                 sites: list[int] | None = None):
        self.store = store
        self.keys = list(keys)
        self.config = config or LiveOpenLoopConfig()
        self.sites = sites if sites is not None else list(
            range(store.num_servers)
        )
        self.offered = 0
        self.dropped = 0  # arrivals that found no free session
        self.failed = 0  # operations that settled unsuccessfully
        self.latencies_ms: list[float] = []
        self._free: dict[int, list] = {s: [] for s in self.sites}
        self._pool_size: dict[int, int] = {s: 0 for s in self.sites}
        self._op_tasks: list[asyncio.Task] = []

    async def run(self) -> dict:
        loop = asyncio.get_running_loop()
        start = loop.time()
        await asyncio.gather(
            *(self._site_loop(site, start) for site in self.sites)
        )
        if self._op_tasks:
            await asyncio.gather(*self._op_tasks)
        return self.summary(loop.time() - start)

    async def _site_loop(self, site: int, start: float) -> None:
        cfg = self.config
        rng = np.random.default_rng((cfg.seed, site))
        mean_gap = 1.0 / cfg.rate_per_site
        loop = asyncio.get_running_loop()
        t = 0.0
        while True:
            t += float(rng.exponential(mean_gap))
            if t > cfg.duration:
                return
            delay = start + t - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            self.offered += 1
            session, create = self._acquire(site)
            if session is None and not create:
                self.dropped += 1
                continue
            key = self.keys[int(rng.integers(len(self.keys)))]
            is_read = bool(rng.random() < cfg.read_ratio)
            value = None if is_read else int(rng.integers(1, 100))
            self._op_tasks.append(asyncio.ensure_future(
                self._do_op(site, session, key, is_read, value)
            ))

    def _acquire(self, site: int):
        free = self._free[site]
        if free:
            return free.pop(), False
        if self._pool_size[site] < self.config.max_clients_per_site:
            self._pool_size[site] += 1  # reserved before the await in _do_op
            return None, True
        return None, False

    async def _do_op(self, site, session, key, is_read: bool, value):
        loop = asyncio.get_running_loop()
        if session is None:
            session = self.store.session(site=site)
        t0 = loop.time()
        try:
            if is_read:
                await session.get(key)
            else:
                await session.put(key, value)
        except Exception:
            self.failed += 1
            return
        finally:
            self._free[site].append(session)
        self.latencies_ms.append((loop.time() - t0) * 1000.0)

    def summary(self, elapsed_s: float) -> dict:
        lats = np.asarray(self.latencies_ms, dtype=float)
        completed = len(lats)
        pct = (
            {
                "p50_ms": float(np.percentile(lats, 50)),
                "p99_ms": float(np.percentile(lats, 99)),
                "p999_ms": float(np.percentile(lats, 99.9)),
            }
            if completed
            else {"p50_ms": None, "p99_ms": None, "p999_ms": None}
        )
        return {
            "offered": self.offered,
            "completed": completed,
            "failed": self.failed,
            "dropped": self.dropped,
            "elapsed_s": elapsed_s,
            "ops_per_s": completed / elapsed_s if elapsed_s > 0 else 0.0,
            **pct,
        }


async def _run_sharded_lane(rate: float, *, keys, num_shards: int,
                            duration: float, read_ratio: float, seed: int,
                            value_len: int, gc_interval: float) -> dict:
    from ..core.server import ServerConfig
    from ..protocol.client_core import RetryPolicy
    from ..runtime.sharded_rt import ShardedAsyncioCluster

    store = ShardedAsyncioCluster(
        keys,
        num_shards=num_shards,
        slots_per_shard=len(keys),  # capacity for any ring imbalance
        value_len=value_len,
        config=ServerConfig(gc_interval=gc_interval),
        retry=RetryPolicy(timeout=250.0, max_retries=6),
    )
    await store.start()
    try:
        driver = ShardedOpenLoopDriver(
            store,
            keys,
            LiveOpenLoopConfig(
                rate_per_site=rate / store.num_servers,
                duration=duration,
                read_ratio=read_ratio,
                seed=seed,
            ),
        )
        result = await driver.run()
        await store.quiesce()
        stats = store.frame_stats()
    finally:
        await store.shutdown()
    done = max(result["completed"], 1)
    return {
        "rate": rate,
        "shards": num_shards,
        "batch": True,
        **result,
        **stats,
        "frames_per_op": stats["frames_sent"] / done,
        "flushes_per_op": stats["flushes"] / done,
    }


def run_sharded_sweep(
    num_shards: int = 2,
    num_keys: int = 8,
    rates: tuple[float, ...] = (100.0, 200.0),
    duration: float = 1.5,
    read_ratio: float = 0.5,
    seed: int = 0,
    value_len: int = 16,
    gc_interval: float = 50.0,
) -> dict:
    """Drive a fresh sharded store at each rate; return the macro payload."""
    import time

    keys = [f"key{i:03d}" for i in range(num_keys)]
    results = [
        asyncio.run(_run_sharded_lane(
            rate, keys=keys, num_shards=num_shards,
            duration=duration, read_ratio=read_ratio, seed=seed,
            value_len=value_len, gc_interval=gc_interval,
        ))
        for rate in rates
    ]
    return {
        "schema": MACRO_BENCH_SCHEMA,
        "unix_time": time.time(),
        "code": f"rs-sharded-x{num_shards}",
        "value_len": value_len,
        "servers": 5 * num_shards,
        "shards": num_shards,
        "keys": num_keys,
        "duration_s": duration,
        "read_ratio": read_ratio,
        "seed": seed,
        "results": results,
    }
