"""Open-loop workload driver for the live asyncio runtime.

The simulator's :class:`~repro.workloads.open_loop.OpenLoopDriver` realises
the paper's Sec. 4.2 arrival-rate model (lambda requests/s per site) in
virtual time; this module does the same against a real
:class:`~repro.runtime.asyncio_rt.AsyncioCluster` in wall-clock time, and is
the engine behind ``repro bench-macro`` and
``benchmarks/test_macro_throughput.py``.

Each site runs a Poisson arrival task: gaps are drawn from a per-site stream
seeded by ``(seed, site)`` (the same convention as the simulator driver, so
arrival sequences are reproducible), each arrival checks out a pooled client
-- growing the pool on demand up to ``max_clients_per_site``, dropping the
arrival if the pool is exhausted, exactly the open-loop semantics -- and the
operation runs as its own task so a slow response never stalls the arrival
process.

:func:`run_macro_sweep` drives a fresh cluster at each requested arrival
rate and emits the ``BENCH_macro.json`` payload: sustained ops/s,
p50/p99/p999 latency, and the frames-per-op / flushes-per-op wire metrics,
including an unbatched comparison lane that quantifies what the per-tick
flush coalescing saves.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "LiveOpenLoopConfig",
    "LiveOpenLoopDriver",
    "run_macro_sweep",
]

#: schema tag for the BENCH_macro.json payload
MACRO_BENCH_SCHEMA = "repro-macro-bench/v1"


@dataclass
class LiveOpenLoopConfig:
    """``rate_per_site`` is in operations per *real* second."""

    rate_per_site: float = 50.0
    duration: float = 1.0  # seconds of arrivals
    read_ratio: float = 0.5
    seed: int = 0
    max_clients_per_site: int = 32
    num_objects: int | None = None  # default: every object of the code


class LiveOpenLoopDriver:
    """Poisson arrivals per site against a live cluster; pooled clients."""

    def __init__(self, cluster, config: LiveOpenLoopConfig | None = None,
                 sites: list[int] | None = None):
        self.cluster = cluster
        self.config = config or LiveOpenLoopConfig()
        self.sites = sites if sites is not None else list(
            range(cluster.num_servers)
        )
        self.offered = 0
        self.dropped = 0  # arrivals that found no free client
        self.failed = 0  # operations that settled unsuccessfully
        self.latencies_ms: list[float] = []
        self._free: dict[int, list] = {s: [] for s in self.sites}
        self._pool_size: dict[int, int] = {s: 0 for s in self.sites}
        self._op_tasks: list[asyncio.Task] = []
        self._num_objects = self.config.num_objects or cluster.code.K

    async def run(self) -> dict:
        """Run the arrival phase, await every in-flight op, summarize."""
        loop = asyncio.get_running_loop()
        start = loop.time()
        await asyncio.gather(
            *(self._site_loop(site, start) for site in self.sites)
        )
        if self._op_tasks:
            await asyncio.gather(*self._op_tasks)
        return self.summary(loop.time() - start)

    async def _site_loop(self, site: int, start: float) -> None:
        cfg = self.config
        rng = np.random.default_rng((cfg.seed, site))
        mean_gap = 1.0 / cfg.rate_per_site
        loop = asyncio.get_running_loop()
        t = 0.0
        while True:
            t += float(rng.exponential(mean_gap))
            if t > cfg.duration:
                return
            delay = start + t - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            self.offered += 1
            client, create = self._acquire(site)
            if client is None and not create:
                self.dropped += 1
                continue
            obj = int(rng.integers(self._num_objects))
            is_read = bool(rng.random() < cfg.read_ratio)
            value = None if is_read else self.cluster.value(
                int(rng.integers(1, 100))
            )
            self._op_tasks.append(asyncio.ensure_future(
                self._do_op(site, client, obj, is_read, value)
            ))

    def _acquire(self, site: int):
        """A free pooled client, a grow-the-pool ticket, or neither."""
        free = self._free[site]
        if free:
            return free.pop(), False
        if self._pool_size[site] < self.config.max_clients_per_site:
            self._pool_size[site] += 1  # reserved before the await in _do_op
            return None, True
        return None, False

    async def _do_op(self, site, client, obj: int, is_read: bool, value):
        loop = asyncio.get_running_loop()
        if client is None:
            client = await self.cluster.add_client(server=site)
        t0 = loop.time()
        try:
            op = await (
                client.read(obj) if is_read else client.write(obj, value)
            )
        except Exception:
            self.failed += 1
            return
        finally:
            self._free[site].append(client)
        if op.failed:
            self.failed += 1
        else:
            self.latencies_ms.append((loop.time() - t0) * 1000.0)

    def summary(self, elapsed_s: float) -> dict:
        lats = np.asarray(self.latencies_ms, dtype=float)
        completed = len(lats)
        pct = (
            {
                "p50_ms": float(np.percentile(lats, 50)),
                "p99_ms": float(np.percentile(lats, 99)),
                "p999_ms": float(np.percentile(lats, 99.9)),
            }
            if completed
            else {"p50_ms": None, "p99_ms": None, "p999_ms": None}
        )
        return {
            "offered": self.offered,
            "completed": completed,
            "failed": self.failed,
            "dropped": self.dropped,
            "elapsed_s": elapsed_s,
            "ops_per_s": completed / elapsed_s if elapsed_s > 0 else 0.0,
            **pct,
        }


async def _run_lane(code, rate: float, batch: bool, *, duration: float,
                    read_ratio: float, seed: int, gc_interval: float) -> dict:
    from ..protocol.client_core import RetryPolicy
    from ..protocol.server_core import ServerConfig
    from ..runtime.asyncio_rt import AsyncioCluster

    cluster = AsyncioCluster(
        code,
        config=ServerConfig(gc_interval=gc_interval),
        retry=RetryPolicy(timeout=250.0, max_retries=6),
        batch=batch,
    )
    await cluster.start()
    try:
        driver = LiveOpenLoopDriver(
            cluster,
            LiveOpenLoopConfig(
                rate_per_site=rate / cluster.num_servers,
                duration=duration,
                read_ratio=read_ratio,
                seed=seed,
            ),
        )
        result = await driver.run()
        await cluster.quiesce()
        stats = cluster.frame_stats()
    finally:
        await cluster.shutdown()
    done = max(result["completed"], 1)
    return {
        "rate": rate,
        "batch": batch,
        **result,
        **stats,
        "frames_per_op": stats["frames_sent"] / done,
        "flushes_per_op": stats["flushes"] / done,
    }


def run_macro_sweep(
    code=None,
    rates: tuple[float, ...] = (100.0, 200.0),
    duration: float = 1.5,
    read_ratio: float = 0.5,
    seed: int = 0,
    value_len: int = 64,
    gc_interval: float = 50.0,
    compare_unbatched: bool = True,
) -> dict:
    """Drive a fresh live cluster at each rate; return the macro payload.

    ``rates`` are cluster-wide arrival rates in ops/s, split evenly across
    sites.  With ``compare_unbatched`` an extra lane re-runs the first rate
    with ``batch=False`` (one write and one ack per frame) so the
    frames-per-op column shows what the coalesced flush path saves.
    """
    if code is None:
        from ..ec.codes import example1_code
        from ..ec.field import PrimeField

        code = example1_code(PrimeField(257), value_len=value_len)
    lanes = [(rate, True) for rate in rates]
    if compare_unbatched:
        lanes.append((rates[0], False))
    results = [
        asyncio.run(_run_lane(
            code, rate, batch,
            duration=duration, read_ratio=read_ratio, seed=seed,
            gc_interval=gc_interval,
        ))
        for rate, batch in lanes
    ]
    return {
        "schema": MACRO_BENCH_SCHEMA,
        "unix_time": time.time(),
        "code": code.name,
        "value_len": code.value_len,
        "servers": code.N,
        "duration_s": duration,
        "read_ratio": read_ratio,
        "seed": seed,
        "results": results,
    }
