"""Open-loop (rate-controlled) workload driver.

The closed-loop driver issues the next operation only when the previous one
completes; the paper's Sec. 4.2 analysis instead reasons about *arrival
rates* (lambda requests/s, per-object write rates rho_w).  The open-loop
driver realises that model: operations arrive at each site as a Poisson
process of a configured rate, independent of response times.  Because
well-formedness allows one pending operation per client (Sec. 2.1), each
site keeps a small pool of clients and grows it on demand when an arrival
finds every client busy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..core.client import Client
from ..core.cluster import Cluster
from .driver import encode_unique_value
from .generators import KeyGenerator, UniformGenerator

__all__ = ["OpenLoopConfig", "OpenLoopDriver"]


@dataclass
class OpenLoopConfig:
    """``rate_per_site`` is in operations per simulated *second*."""

    rate_per_site: float = 100.0
    duration: float = 1_000.0  # ms of arrivals
    read_ratio: float = 0.5
    seed: int = 0
    max_clients_per_site: int = 64


class OpenLoopDriver:
    """Poisson arrivals per site; clients pooled to respect well-formedness."""

    def __init__(
        self,
        cluster: Cluster,
        num_objects: int,
        sites: list[int] | None = None,
        keygen: KeyGenerator | None = None,
        config: OpenLoopConfig | None = None,
        make_value=None,
    ):
        self.cluster = cluster
        self.config = config or OpenLoopConfig()
        self.keygen = keygen or UniformGenerator(num_objects)
        self.rng = np.random.default_rng(self.config.seed)
        self.sites = sites if sites is not None else list(
            range(cluster.num_servers)
        )
        self._pools: dict[int, list[Client]] = {s: [] for s in self.sites}
        self._value_counter = itertools.count(1)
        self._make_value = make_value or self._default_value
        self.dropped = 0  # arrivals that found no free client
        #: per-site gap streams seeded by (seed, site): each site's arrival
        #: times are a pure function of the config, independent of how the
        #: draws interleave across sites
        self._gap_rngs: dict[int, np.random.Generator] = {}
        #: (absolute time, site) for every fired arrival, oldest first
        self.arrival_log: list[tuple[float, int]] = []

    def _default_value(self, counter: int) -> np.ndarray:
        return encode_unique_value(self.cluster, counter)

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm one arrival per site; each arrival schedules its successor.

        Lazy scheduling keeps the event heap at O(sites) entries instead
        of pre-materializing every arrival -- O(rate x duration) events,
        six million heap entries for 100k ops/s x 60 s, before the first
        operation even ran.  The arrival *times* are unchanged for a given
        seed: gaps come from per-site streams seeded by ``(seed, site)``,
        so drawing them on demand yields the same sequence as drawing them
        all up front.
        """
        base = self.cluster.scheduler.now
        for site in self.sites:
            self._gap_rngs[site] = np.random.default_rng(
                (self.config.seed, site)
            )
            self._schedule_next(site, base, 0.0)

    def _schedule_next(self, site: int, base: float, t: float) -> None:
        mean_gap = 1000.0 / self.config.rate_per_site  # ms between arrivals
        t += float(self._gap_rngs[site].exponential(mean_gap))
        if t > self.config.duration:
            return
        self.cluster.scheduler.at(
            base + t, lambda: self._fire(site, base, t)
        )

    def _fire(self, site: int, base: float, t: float) -> None:
        self._schedule_next(site, base, t)
        self.arrival_log.append((base + t, site))
        self._arrival(site)

    def run(self, extra_time: float = 5_000.0) -> None:
        """start() and run until arrivals end plus ``extra_time`` drain."""
        self.start()
        self.cluster.run(for_time=self.config.duration + extra_time)

    # ------------------------------------------------------------------

    def _free_client(self, site: int) -> Client | None:
        for c in self._pools[site]:
            if not c.busy:
                return c
        if len(self._pools[site]) < self.config.max_clients_per_site:
            client = self.cluster.add_client(server=site)
            self._pools[site].append(client)
            return client
        return None

    def _arrival(self, site: int) -> None:
        client = self._free_client(site)
        if client is None:
            self.dropped += 1
            return
        obj = self.keygen.sample(self.rng)
        if self.rng.random() < self.config.read_ratio:
            client.read(obj)
        else:
            client.write(obj, self._make_value(next(self._value_counter)))

    # ------------------------------------------------------------------

    def offered_ops(self) -> int:
        return len(self.cluster.history) + self.dropped
