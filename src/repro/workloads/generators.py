"""Key-popularity distributions for workload generation.

The paper's Sec. 4.2 analysis uses the YCSB default workload: Zipfian object
popularity with parameter 0.99.  :class:`ZipfianGenerator` implements the
bounded Zipfian sampler (exact inverse-CDF for simulation scale) plus the
closed-form tail quantities needed to reproduce the analysis at paper scale
(120M objects) without materialising the distribution.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KeyGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
    "HotspotGenerator",
    "zipf_harmonic",
    "zipf_tail_mass",
]


def zipf_harmonic(n: int, theta: float) -> float:
    """Generalized harmonic number H_{n,theta} = sum_{i=1..n} i^-theta.

    Exact summation below 10^7 terms; Euler--Maclaurin approximation above
    (error < 1e-9 relative for theta in (0, 1.5)), which is what lets the
    Sec. 4.2 analysis run at the paper's 120M-object scale.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    cutoff = 10_000_000
    if n <= cutoff:
        return float(np.sum(np.arange(1, n + 1, dtype=np.float64) ** -theta))
    head = float(np.sum(np.arange(1, cutoff + 1, dtype=np.float64) ** -theta))
    # integral + boundary corrections for the tail (Euler-Maclaurin)
    a, b = float(cutoff), float(n)
    if abs(theta - 1.0) < 1e-12:
        integral = np.log(b) - np.log(a)
    else:
        integral = (b ** (1 - theta) - a ** (1 - theta)) / (1 - theta)
    correction = 0.5 * (b**-theta - a**-theta)
    deriv = -theta * (b ** (-theta - 1) - a ** (-theta - 1)) / 12.0
    return head + integral + correction + deriv


def zipf_tail_mass(n: int, theta: float, start_rank: int) -> float:
    """Probability mass of ranks >= start_rank under Zipf(n, theta)."""
    if start_rank <= 1:
        return 1.0
    total = zipf_harmonic(n, theta)
    head = zipf_harmonic(start_rank - 1, theta)
    return max(0.0, (total - head) / total)


class KeyGenerator:
    """Draws object indices in [0, num_keys)."""

    num_keys: int

    def sample(self, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def probability(self, rank: int) -> float:
        """P(key with popularity rank ``rank``), rank in [0, num_keys)."""
        raise NotImplementedError


class UniformGenerator(KeyGenerator):
    def __init__(self, num_keys: int):
        self.num_keys = num_keys

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.num_keys))

    def probability(self, rank: int) -> float:
        return 1.0 / self.num_keys


class ZipfianGenerator(KeyGenerator):
    """Bounded Zipfian sampler (YCSB-style), popularity rank == key index."""

    def __init__(self, num_keys: int, theta: float = 0.99):
        if num_keys < 1:
            raise ValueError("num_keys must be positive")
        self.num_keys = num_keys
        self.theta = theta
        pmf = np.arange(1, num_keys + 1, dtype=np.float64) ** -theta
        pmf /= pmf.sum()
        self._pmf = pmf
        self._cdf = np.cumsum(pmf)

    def sample(self, rng: np.random.Generator) -> int:
        return int(np.searchsorted(self._cdf, rng.random(), side="right"))

    def probability(self, rank: int) -> float:
        return float(self._pmf[rank])


class HotspotGenerator(KeyGenerator):
    """A fraction of traffic concentrates on a small hot set."""

    def __init__(self, num_keys: int, hot_fraction: float = 0.1,
                 hot_traffic: float = 0.9):
        self.num_keys = num_keys
        self.hot_keys = max(1, int(num_keys * hot_fraction))
        self.hot_traffic = hot_traffic

    def sample(self, rng: np.random.Generator) -> int:
        if rng.random() < self.hot_traffic:
            return int(rng.integers(0, self.hot_keys))
        if self.hot_keys == self.num_keys:
            return int(rng.integers(0, self.num_keys))
        return int(rng.integers(self.hot_keys, self.num_keys))

    def probability(self, rank: int) -> float:
        if rank < self.hot_keys:
            return self.hot_traffic / self.hot_keys
        return (1 - self.hot_traffic) / (self.num_keys - self.hot_keys)
