"""Erasure-coding substrate: finite fields, linear codes, recovery sets."""

from .code import LinearCode
from .codes import (
    SIX_DC_PLACEMENT,
    lrc_code,
    random_linear_code,
    example1_code,
    partial_replication_code,
    reed_solomon_code,
    replication_code,
    six_dc_code,
)
from .report import CodeReport, ObjectReport
from .field import GF256, BinaryExtensionField, Field, PrimeField, default_field

__all__ = [
    "Field",
    "PrimeField",
    "BinaryExtensionField",
    "GF256",
    "default_field",
    "LinearCode",
    "CodeReport",
    "ObjectReport",
    "replication_code",
    "partial_replication_code",
    "reed_solomon_code",
    "example1_code",
    "six_dc_code",
    "SIX_DC_PLACEMENT",
    "random_linear_code",
    "lrc_code",
]
