"""Constructors for the erasure codes discussed in the paper.

* :func:`replication_code` -- classical full replication (every server stores
  every object uncoded), the substrate of [4, 33, 19, 20].
* :func:`partial_replication_code` -- each server stores an explicit subset
  of objects uncoded [42, 49, 26].
* :func:`reed_solomon_code` -- a systematic MDS code over K objects with one
  symbol per server; used cross-object (one object value per coordinate) or
  intra-object (one fragment per coordinate).
* :func:`example1_code` -- the (5,3) code of Sec. 1.2 / Example 1:
  [x1, x2, x3, x1+x2+x3, x1+2x2+x3].
* :func:`six_dc_code` -- the cross-object code of Sec. 1.1 over the six AWS
  DCs: Seoul=X1+X3, Mumbai=X2+X4, Ireland=X1, London=X2, N.California=X4,
  Oregon=X3.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from . import matrix as fmat
from .code import LinearCode
from .field import Field, PrimeField, default_field

__all__ = [
    "random_linear_code",
    "lrc_code",
    "replication_code",
    "partial_replication_code",
    "reed_solomon_code",
    "example1_code",
    "six_dc_code",
    "extend_code",
    "SIX_DC_PLACEMENT",
]


def replication_code(
    field: Field | None = None, num_servers: int = 3, num_objects: int = 2,
    value_len: int = 1,
) -> LinearCode:
    """Full replication: G_s = I_K at every server."""
    field = field or default_field()
    identity = np.eye(num_objects, dtype=field.dtype)
    return LinearCode(
        field,
        num_objects,
        [identity.copy() for _ in range(num_servers)],
        value_len=value_len,
        name=f"replication({num_servers},{num_objects})",
    )


def partial_replication_code(
    field: Field | None,
    num_objects: int,
    placement: Sequence[Sequence[int]] | Mapping[int, Sequence[int]],
    value_len: int = 1,
) -> LinearCode:
    """Partial replication: server s stores the objects in ``placement[s]``.

    ``placement`` maps each server to the (possibly empty) list of object
    indices it replicates.  Every object should appear at >=1 server for all
    objects to be readable.
    """
    field = field or default_field()
    if isinstance(placement, Mapping):
        servers = [placement[s] for s in sorted(placement)]
    else:
        servers = list(placement)
    mats = []
    for objs in servers:
        rows = np.zeros((len(objs), num_objects), dtype=field.dtype)
        for j, k in enumerate(objs):
            rows[j, k] = 1
        mats.append(rows)
    return LinearCode(
        field, num_objects, mats, value_len=value_len,
        name=f"partial-replication({len(servers)},{num_objects})",
    )


def reed_solomon_code(
    field: Field | None = None,
    num_servers: int = 5,
    num_objects: int = 3,
    value_len: int = 1,
    systematic: bool = True,
) -> LinearCode:
    """A systematic (N, K) MDS code with one symbol per server.

    Built from an N x K Vandermonde matrix V with distinct evaluation points;
    for ``systematic=True`` the generator is normalised to G = V V_top^{-1}
    so the first K servers store the K objects uncoded (the "systematic
    Reed-Solomon" the cost analysis of Sec. 4.2 assumes).  Requires
    ``field.order > num_servers`` for distinct evaluation points.
    """
    field = field or default_field()
    n, k = num_servers, num_objects
    if n < k:
        raise ValueError("need at least K servers")
    if field.order <= n:
        raise ValueError("field too small for distinct evaluation points")
    vander = np.zeros((n, k), dtype=field.dtype)
    for i in range(n):
        # evaluation points 1..n avoid the zero point (whose powers collapse)
        x = i + 1
        acc = 1
        for j in range(k):
            vander[i, j] = acc
            acc = field.s_mul(acc, x)
    gen = vander
    if systematic:
        top_inv = fmat.invert(field, vander[:k])
        gen = fmat.matmul(field, vander, top_inv)
    return LinearCode(
        field,
        k,
        [gen[i : i + 1] for i in range(n)],
        value_len=value_len,
        name=f"reed-solomon({n},{k}){'-sys' if systematic else ''}",
    )


def example1_code(field: Field | None = None, value_len: int = 1) -> LinearCode:
    """The (5,3) running example: [x1, x2, x3, x1+x2+x3, x1+2x2+x3].

    Requires odd characteristic (the paper's Example 1): over GF(2^m) the
    fourth and fifth symbols would coincide.  Defaults to GF(257) so whole
    bytes fit in one value coordinate.
    """
    field = field or default_field()
    if field.characteristic == 2:
        raise ValueError("Example 1 requires a field of odd characteristic")
    rows = [
        [1, 0, 0],
        [0, 1, 0],
        [0, 0, 1],
        [1, 1, 1],
        [1, 2, 1],
    ]
    return LinearCode(
        field, 3, [np.array([r]) for r in rows], value_len=value_len,
        name="example1(5,3)",
    )


#: Sec. 1.1 cross-object placement over the six AWS regions, in the region
#: order of Fig. 1: Seoul, Mumbai, Ireland, London, N. California, Oregon.
SIX_DC_PLACEMENT = {
    "Seoul": "X1+X3",
    "Mumbai": "X2+X4",
    "Ireland": "X1",
    "London": "X2",
    "N. California": "X4",
    "Oregon": "X3",
}


def six_dc_code(field: Field | None = None, value_len: int = 1) -> LinearCode:
    """The Sec. 1.1 cross-object code over 6 servers and 4 object groups."""
    field = field or default_field()
    rows = [
        [1, 0, 1, 0],  # Seoul: X1 + X3
        [0, 1, 0, 1],  # Mumbai: X2 + X4
        [1, 0, 0, 0],  # Ireland: X1
        [0, 1, 0, 0],  # London: X2
        [0, 0, 0, 1],  # N. California: X4
        [0, 0, 1, 0],  # Oregon: X3
    ]
    return LinearCode(
        field, 4, [np.array([r]) for r in rows], value_len=value_len,
        name="six-dc-cross-object(6,4)",
    )


def random_linear_code(
    field: Field | None = None,
    num_servers: int = 5,
    num_objects: int = 3,
    value_len: int = 1,
    density: float = 0.7,
    seed: int = 0,
    symbols_per_server: int = 1,
) -> LinearCode:
    """A random linear code with every object recoverable.

    Coefficients are drawn uniformly (zeroed with probability
    ``1 - density``); rejection-samples until each object has at least one
    recovery set.  CausalEC is parametrised by an *arbitrary* linear code,
    so random codes are the natural fuzzing substrate for the protocol.
    """
    import numpy as _np

    field = field or default_field()
    rng = _np.random.default_rng(seed)
    for _ in range(1000):
        mats = []
        for _s in range(num_servers):
            m = rng.integers(
                1, field.order, size=(symbols_per_server, num_objects)
            ).astype(field.dtype)
            mask = rng.random(size=m.shape) < density
            m = m * mask
            mats.append(m)
        code = LinearCode(
            field, num_objects, mats, value_len=value_len,
            name=f"random({num_servers},{num_objects},seed={seed})",
        )
        if all(
            code.is_recovery_set(range(num_servers), k)
            for k in range(num_objects)
        ):
            return code
    raise RuntimeError("could not sample a fully recoverable random code")


def extend_code(
    code: LinearCode, row_seed: int, symbols: int = 1
) -> LinearCode:
    """``code`` plus one joining server whose rows are seeded-random.

    Dynamic membership: a server joining an N-server group becomes server
    index ``N`` of an (N+1)-server code whose first N coefficient matrices
    are unchanged (existing symbols stay valid codeword coordinates).  The
    new rows are drawn from ``default_rng(row_seed)``, so every member of
    the group derives the *same* extended code from the committed
    ``row_seed`` alone -- no matrix bytes travel on the wire.  Rejects the
    all-zero draw (a joiner storing nothing adds no redundancy); since
    recovery sets only gain rows, every object recoverable before stays
    recoverable after.
    """
    import numpy as _np

    if symbols < 1:
        raise ValueError("symbols must be positive")
    field = code.field
    rng = _np.random.default_rng(row_seed)
    for _ in range(1000):
        rows = rng.integers(
            0, field.order, size=(symbols, code.K)
        ).astype(field.dtype)
        if not rows.any():
            continue
        return LinearCode(
            field,
            code.K,
            [m.copy() for m in code.matrices] + [rows],
            value_len=code.value_len,
            name=f"{code.name}+join(seed={row_seed})",
        )
    raise RuntimeError("could not sample a nonzero joining row")


def lrc_code(
    field: Field | None = None,
    local_groups: Sequence[Sequence[int]] = ((0, 1), (2, 3)),
    num_objects: int = 4,
    global_parities: int = 1,
    value_len: int = 1,
) -> LinearCode:
    """A locally repairable code (LRC) layout.

    The first ``num_objects`` servers store single objects uncoded; each
    *local group* (a set of object indices) gets one local-parity server
    storing the group's sum; ``global_parities`` extra servers store
    weighted sums over all objects.  LRCs trade a little storage for small
    recovery sets -- exactly the latency lever cross-object CausalEC pulls.
    """
    import numpy as _np

    field = field or default_field()
    if field.order <= num_objects + global_parities:
        raise ValueError("field too small for distinct global coefficients")
    mats = []
    for k in range(num_objects):
        row = _np.zeros((1, num_objects), dtype=field.dtype)
        row[0, k] = 1
        mats.append(row)
    for group in local_groups:
        row = _np.zeros((1, num_objects), dtype=field.dtype)
        for k in group:
            row[0, k] = 1
        mats.append(row)
    for p in range(global_parities):
        row = _np.zeros((1, num_objects), dtype=field.dtype)
        for k in range(num_objects):
            # evaluation point k+2, raised elementwise in the field
            coeff = 1
            for _ in range(p + 1):
                coeff = field.s_mul(coeff, k + 2)
            row[0, k] = coeff
        mats.append(row)
    return LinearCode(
        field, num_objects, mats, value_len=value_len,
        name=f"lrc({len(mats)},{num_objects})",
    )
