"""Finite field arithmetic for erasure coding.

CausalEC stores object values drawn from a vector space ``V`` over a finite
field ``F`` (Sec. 2.2 of the paper).  This module provides two concrete field
families:

* :class:`PrimeField` -- GF(p) for a prime ``p``, with numpy-vectorised
  arithmetic on int64 arrays.  The paper's running examples (Example 1, the
  (5,3) code of Sec. 1.2) require a field of odd characteristic, for which any
  odd prime works.
* :class:`BinaryExtensionField` -- GF(2^m) via log/antilog tables, the family
  used by practical Reed--Solomon deployments (GF(256) in particular).

Object *values* are represented as 1-D numpy integer arrays whose entries are
field elements; *scalars* (code coefficients) are plain Python ints in
``[0, order)``.  All operations are pure: inputs are never mutated.

Scalar domain rule
------------------

Every scalar handed to a field operation must already be a canonical field
element, i.e. an integer in ``[0, order)``.  Out-of-range scalars raise
``ValueError`` in **both** field families.  In particular :class:`PrimeField`
no longer silently reduces coefficients mod p: callers that want modular
reduction must do it explicitly.  This catches the class of bugs where a
stray coefficient (e.g. 300 in GF(256)) previously either crashed with a raw
numpy ``IndexError`` or silently produced a wrong codeword.

Batched kernels
---------------

Beyond the elementwise operations, every field exposes three batched kernels
that the erasure-coding hot path (:mod:`repro.ec.code`, :mod:`repro.ec.matrix`)
is built on:

* ``matmul(a, b)`` -- field matrix product of an (m, k) and a (k, n) matrix;
* ``matvec(a, x)`` -- field matrix--vector product;
* ``axpy(c, x, y)`` -- ``y + c * x`` for a scalar ``c``, or the batched
  row update ``y + outer(c, x)`` when ``c`` is a 1-D coefficient vector
  (the Gaussian-elimination inner loop).

:class:`PrimeField` implements them with a single int64 GEMM plus one modular
reduction (chunked along the inner dimension when the worst-case partial sum
could overflow int64); :class:`BinaryExtensionField` uses log/antilog gathers
with an XOR accumulation.  ``Field.matmul_reference`` is the schoolbook
per-element ground truth used by the property tests in
``tests/test_vectorized_kernels.py``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Field",
    "PrimeField",
    "BinaryExtensionField",
    "GF256",
    "default_field",
]


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


class Field:
    """Abstract finite field interface.

    Subclasses provide scalar arithmetic (on Python ints) and vectorised
    arithmetic (on numpy arrays of field elements).  ``order`` is the number
    of field elements and ``characteristic`` its additive characteristic.
    """

    order: int
    characteristic: int
    dtype: np.dtype

    # -- scalar domain -----------------------------------------------------

    def check_scalar(self, c: int) -> int:
        """Validate a scalar coefficient, returning it as a Python int.

        Scalars must be integers in ``[0, order)``; anything else raises
        ``ValueError`` (``TypeError`` for non-integers).  Both field families
        enforce this uniformly -- there is no silent modular reduction.
        """
        if isinstance(c, bool) or not isinstance(c, (int, np.integer)):
            raise TypeError(f"scalar must be an integer, got {type(c).__name__}")
        c = int(c)
        if not 0 <= c < self.order:
            raise ValueError(
                f"scalar {c} out of range [0, {self.order}) for {self!r}"
            )
        return c

    # -- scalar operations -------------------------------------------------

    def s_add(self, a: int, b: int) -> int:
        raise NotImplementedError

    def s_neg(self, a: int) -> int:
        raise NotImplementedError

    def s_sub(self, a: int, b: int) -> int:
        return self.s_add(a, self.s_neg(b))

    def s_mul(self, a: int, b: int) -> int:
        raise NotImplementedError

    def s_inv(self, a: int) -> int:
        raise NotImplementedError

    def s_div(self, a: int, b: int) -> int:
        return self.s_mul(a, self.s_inv(b))

    # -- vector operations -------------------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def neg(self, a: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.add(a, self.neg(b))

    def scalar_mul(self, c: int, a: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- batched kernels ---------------------------------------------------

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Field matrix product of ``a`` (m, k) and ``b`` (k, n).

        This generic implementation is the pre-kernel row-loop (one
        ``scalar_mul``/``add`` pass per nonzero coefficient); subclasses
        override it with fully batched arithmetic.
        """
        a, b = self._check_matmul_args(a, b)
        out = np.zeros((a.shape[0], b.shape[1]), dtype=self.dtype)
        for i in range(a.shape[0]):
            acc = self.zeros(b.shape[1])
            for t in range(a.shape[1]):
                c = int(a[i, t])
                if c:
                    acc = self.add(acc, self.scalar_mul(c, b[t]))
            out[i] = acc
        return out

    def matvec(self, a: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Field matrix--vector product of ``a`` (m, k) and ``x`` (k,)."""
        x = np.asarray(x, dtype=self.dtype)
        if x.ndim != 1:
            raise ValueError("matvec expects a 1-D vector")
        return self.matmul(a, x.reshape(-1, 1))[:, 0]

    def axpy(self, c, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``y + c*x`` (scalar ``c``) or ``y + outer(c, x)`` (1-D ``c``).

        The array form is the batched Gaussian-elimination update: ``c`` holds
        one coefficient per row of ``y`` and ``x`` is the (pivot) row being
        folded in.  Pure: returns a new array.
        """
        x = np.asarray(x, dtype=self.dtype)
        y = np.asarray(y, dtype=self.dtype)
        if np.ndim(c) == 0:
            return self.add(y, self.scalar_mul(self.check_scalar(c), x))
        c = self.validate(c)
        if c.ndim != 1 or y.shape != (c.shape[0],) + x.shape:
            raise ValueError("axpy shape mismatch")
        out = np.array(y, copy=True)
        for i in range(c.shape[0]):
            ci = int(c[i])
            if ci:
                out[i] = self.add(out[i], self.scalar_mul(ci, x))
        return out

    def matmul_reference(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Schoolbook per-element matmul over ``s_add``/``s_mul``.

        The obviously-correct scalar-loop ground truth that the vectorized
        kernels are property-tested against.  O(m*k*n) Python-level ops --
        never use it on a hot path.
        """
        a, b = self._check_matmul_args(a, b)
        out = np.zeros((a.shape[0], b.shape[1]), dtype=self.dtype)
        for i in range(a.shape[0]):
            for j in range(b.shape[1]):
                acc = 0
                for t in range(a.shape[1]):
                    acc = self.s_add(acc, self.s_mul(int(a[i, t]), int(b[t, j])))
                out[i, j] = acc
        return out

    def _check_matmul_args(
        self, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("matmul expects 2-D matrices")
        if a.shape[1] != b.shape[0]:
            raise ValueError(
                f"dimension mismatch: {a.shape} @ {b.shape}"
            )
        return a, b

    # -- constructors and checks -------------------------------------------

    def zeros(self, n: int) -> np.ndarray:
        """The zero vector of V = F^n."""
        return np.zeros(n, dtype=self.dtype)

    def is_zero(self, a: np.ndarray) -> bool:
        return not np.any(a)

    def validate(self, a: np.ndarray) -> np.ndarray:
        """Coerce ``a`` to a canonical field-element array, checking range."""
        arr = np.asarray(a, dtype=self.dtype)
        if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= self.order):
            raise ValueError(
                f"array entries must lie in [0, {self.order}) for {self!r}"
            )
        return arr

    def random_vector(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """A uniformly random element of V = F^n."""
        return rng.integers(0, self.order, size=n, dtype=self.dtype)

    def random_scalar(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.order))

    def equal(self, a: np.ndarray, b: np.ndarray) -> bool:
        return a.shape == b.shape and bool(np.array_equal(a, b))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(order={self.order})"


class PrimeField(Field):
    """GF(p) for prime ``p``; elements are ints in ``[0, p)``."""

    def __init__(self, p: int):
        if not _is_prime(p):
            raise ValueError(f"{p} is not prime")
        self.order = p
        self.characteristic = p
        self.dtype = np.dtype(np.int64)
        # int64 multiply of two (p-1) values must not overflow.
        if (p - 1) ** 2 >= 2**63:
            raise ValueError("prime too large for int64 arithmetic")
        # longest inner dimension whose worst-case dot product fits int64
        self._gemm_chunk = max(1, (2**63 - 1) // ((p - 1) ** 2 or 1))

    # scalars
    def s_add(self, a: int, b: int) -> int:
        return (self.check_scalar(a) + self.check_scalar(b)) % self.order

    def s_neg(self, a: int) -> int:
        return (-self.check_scalar(a)) % self.order

    def s_mul(self, a: int, b: int) -> int:
        return (self.check_scalar(a) * self.check_scalar(b)) % self.order

    def s_inv(self, a: int) -> int:
        a = self.check_scalar(a)
        if a == 0:
            raise ZeroDivisionError("0 has no inverse")
        return pow(a, self.order - 2, self.order)

    # vectors
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a + b) % self.order

    def neg(self, a: np.ndarray) -> np.ndarray:
        return (-a) % self.order

    def scalar_mul(self, c: int, a: np.ndarray) -> np.ndarray:
        return (a * self.check_scalar(c)) % self.order

    # batched kernels
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = self._check_matmul_args(a, b)
        inner = a.shape[1]
        if inner <= self._gemm_chunk:
            return (a @ b) % self.order
        out = np.zeros((a.shape[0], b.shape[1]), dtype=self.dtype)
        for lo in range(0, inner, self._gemm_chunk):
            hi = lo + self._gemm_chunk
            out = (out + a[:, lo:hi] @ b[lo:hi]) % self.order
        return out

    def matvec(self, a: np.ndarray, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        if x.ndim != 1:
            raise ValueError("matvec expects a 1-D vector")
        return self.matmul(a, x.reshape(-1, 1))[:, 0]

    def axpy(self, c, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        y = np.asarray(y, dtype=self.dtype)
        if np.ndim(c) == 0:
            return (y + x * self.check_scalar(c)) % self.order
        c = self.validate(c)
        if c.ndim != 1 or y.shape != (c.shape[0],) + x.shape:
            raise ValueError("axpy shape mismatch")
        return (y + c[:, None] * x[None, :]) % self.order


#: shared log/antilog tables keyed by (m, primitive_poly) -- building GF(2^16)
#: tables costs ~65k Python loop iterations, so repeated constructions reuse.
_TABLE_CACHE: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}


class BinaryExtensionField(Field):
    """GF(2^m) with log/antilog table arithmetic, for m in [1, 16].

    ``primitive_poly`` is the integer encoding of an irreducible polynomial of
    degree m over GF(2) (including the x^m term).  Defaults are the standard
    choices (e.g. 0x11D for GF(256), as used by RS(255, k) codecs).

    Log/antilog tables are shared process-wide between instances with the
    same (m, poly); the module-level :data:`GF256` singleton defers building
    them until first use so ``import repro`` stays cheap.
    """

    _DEFAULT_POLY = {
        1: 0b11,
        2: 0b111,
        3: 0b1011,
        4: 0b10011,
        5: 0b100101,
        6: 0b1000011,
        7: 0b10001001,
        8: 0x11D,
        9: 0b1000010001,
        10: 0b10000001001,
        11: 0b100000000101,
        12: 0b1000001010011,
        13: 0b10000000011011,
        14: 0b100010001000011,
        15: 0b1000000000000011,
        16: 0b10001000000001011,
    }

    def __init__(
        self, m: int, primitive_poly: int | None = None, *, _defer_tables: bool = False
    ):
        if not 1 <= m <= 16:
            raise ValueError("m must be in [1, 16]")
        self.m = m
        self.order = 1 << m
        self.characteristic = 2
        self.dtype = np.dtype(np.uint32)
        self._poly = primitive_poly or self._DEFAULT_POLY[m]
        if not _defer_tables:
            self._ensure_tables()

    def _ensure_tables(self) -> None:
        key = (self.m, self._poly)
        tables = _TABLE_CACHE.get(key)
        if tables is None:
            tables = self._build_tables(self._poly)
            _TABLE_CACHE[key] = tables
        self._exp, self._log = tables

    def __getattr__(self, name: str):
        # lazily build the log/antilog tables on first arithmetic use (the
        # GF256 singleton is constructed with _defer_tables=True)
        if name in ("_exp", "_log"):
            self._ensure_tables()
            return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _build_tables(self, poly: int) -> tuple[np.ndarray, np.ndarray]:
        size = self.order
        exp = np.zeros(2 * size, dtype=np.uint32)
        log = np.zeros(size, dtype=np.int64)
        x = 1
        for i in range(size - 1):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & size:
                x ^= poly
        if x != 1:
            raise ValueError(f"poly {poly:#x} is not primitive for GF(2^{self.m})")
        # duplicate so exp[(la + lb)] never needs a modulo
        exp[size - 1 : 2 * (size - 1)] = exp[: size - 1]
        exp.setflags(write=False)
        log.setflags(write=False)
        return exp, log

    # scalars
    def s_add(self, a: int, b: int) -> int:
        return self.check_scalar(a) ^ self.check_scalar(b)

    def s_neg(self, a: int) -> int:
        return self.check_scalar(a)  # characteristic 2

    def s_mul(self, a: int, b: int) -> int:
        a = self.check_scalar(a)
        b = self.check_scalar(b)
        if a == 0 or b == 0:
            return 0
        return int(self._exp[int(self._log[a]) + int(self._log[b])])

    def s_inv(self, a: int) -> int:
        a = self.check_scalar(a)
        if a == 0:
            raise ZeroDivisionError("0 has no inverse")
        return int(self._exp[(self.order - 1) - int(self._log[a])])

    # vectors
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.bitwise_xor(a, b)

    def neg(self, a: np.ndarray) -> np.ndarray:
        return a.copy()

    def scalar_mul(self, c: int, a: np.ndarray) -> np.ndarray:
        c = self.check_scalar(c)
        if c == 0:
            return np.zeros_like(a)
        if c == 1:
            return a.copy()
        out = np.zeros_like(a)
        nz = a != 0
        if np.any(nz):
            out[nz] = self._exp[self._log[a[nz]] + int(self._log[c])]
        return out

    # batched kernels
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = self._check_matmul_args(a, b)
        out = np.zeros((a.shape[0], b.shape[1]), dtype=self.dtype)
        exp, log = self._exp, self._log
        # accumulate rank-1 updates: one gather + XOR per inner index; the
        # inner dimension on the EC hot path is the (small) object count K
        # while the batched axis is the (large) value length.
        for t in range(a.shape[1]):
            col = a[:, t]
            row = b[t]
            nzc = np.flatnonzero(col)
            if not nzc.size:
                continue
            nzr = np.flatnonzero(row)
            if not nzr.size:
                continue
            contrib = exp[log[col[nzc]][:, None] + log[row[nzr]][None, :]]
            out[np.ix_(nzc, nzr)] ^= contrib
        return out

    def axpy(self, c, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        y = np.asarray(y, dtype=self.dtype)
        exp, log = self._exp, self._log
        if np.ndim(c) == 0:
            c = self.check_scalar(c)
            out = y.copy()
            if c == 0:
                return out
            nz = x != 0
            if np.any(nz):
                out[nz] ^= exp[log[x[nz]] + int(log[c])]
            return out
        c = self.validate(c)
        if c.ndim != 1 or y.shape != (c.shape[0],) + x.shape:
            raise ValueError("axpy shape mismatch")
        out = y.copy()
        nzc = np.flatnonzero(c)
        nzx = np.flatnonzero(x)
        if nzc.size and nzx.size:
            out[np.ix_(nzc, nzx)] ^= exp[log[c[nzc]][:, None] + log[x[nzx]][None, :]]
        return out


#: lazily-built cached singleton: metadata (order, dtype, ...) is available
#: immediately; log/antilog tables are constructed on first arithmetic use.
GF256 = BinaryExtensionField(8, _defer_tables=True)


def default_field() -> Field:
    """The field used by examples/benchmarks when none is specified.

    GF(257) satisfies the odd-characteristic requirement of the paper's
    running example codes while staying byte-friendly.
    """
    return PrimeField(257)
