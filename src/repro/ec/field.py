"""Finite field arithmetic for erasure coding.

CausalEC stores object values drawn from a vector space ``V`` over a finite
field ``F`` (Sec. 2.2 of the paper).  This module provides two concrete field
families:

* :class:`PrimeField` -- GF(p) for a prime ``p``, with numpy-vectorised
  arithmetic on int64 arrays.  The paper's running examples (Example 1, the
  (5,3) code of Sec. 1.2) require a field of odd characteristic, for which any
  odd prime works.
* :class:`BinaryExtensionField` -- GF(2^m) via log/antilog tables, the family
  used by practical Reed--Solomon deployments (GF(256) in particular).

Object *values* are represented as 1-D numpy integer arrays whose entries are
field elements; *scalars* (code coefficients) are plain Python ints in
``[0, order)``.  All operations are pure: inputs are never mutated.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Field",
    "PrimeField",
    "BinaryExtensionField",
    "GF256",
    "default_field",
]


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


class Field:
    """Abstract finite field interface.

    Subclasses provide scalar arithmetic (on Python ints) and vectorised
    arithmetic (on numpy arrays of field elements).  ``order`` is the number
    of field elements and ``characteristic`` its additive characteristic.
    """

    order: int
    characteristic: int
    dtype: np.dtype

    # -- scalar operations -------------------------------------------------

    def s_add(self, a: int, b: int) -> int:
        raise NotImplementedError

    def s_neg(self, a: int) -> int:
        raise NotImplementedError

    def s_sub(self, a: int, b: int) -> int:
        return self.s_add(a, self.s_neg(b))

    def s_mul(self, a: int, b: int) -> int:
        raise NotImplementedError

    def s_inv(self, a: int) -> int:
        raise NotImplementedError

    def s_div(self, a: int, b: int) -> int:
        return self.s_mul(a, self.s_inv(b))

    # -- vector operations -------------------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def neg(self, a: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.add(a, self.neg(b))

    def scalar_mul(self, c: int, a: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- constructors and checks -------------------------------------------

    def zeros(self, n: int) -> np.ndarray:
        """The zero vector of V = F^n."""
        return np.zeros(n, dtype=self.dtype)

    def is_zero(self, a: np.ndarray) -> bool:
        return not np.any(a)

    def validate(self, a: np.ndarray) -> np.ndarray:
        """Coerce ``a`` to a canonical field-element array, checking range."""
        arr = np.asarray(a, dtype=self.dtype)
        if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= self.order):
            raise ValueError(
                f"array entries must lie in [0, {self.order}) for {self!r}"
            )
        return arr

    def random_vector(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """A uniformly random element of V = F^n."""
        return rng.integers(0, self.order, size=n, dtype=self.dtype)

    def random_scalar(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.order))

    def equal(self, a: np.ndarray, b: np.ndarray) -> bool:
        return a.shape == b.shape and bool(np.array_equal(a, b))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(order={self.order})"


class PrimeField(Field):
    """GF(p) for prime ``p``; elements are ints in ``[0, p)``."""

    def __init__(self, p: int):
        if not _is_prime(p):
            raise ValueError(f"{p} is not prime")
        self.order = p
        self.characteristic = p
        self.dtype = np.dtype(np.int64)
        # int64 multiply of two (p-1) values must not overflow.
        if (p - 1) ** 2 >= 2**63:
            raise ValueError("prime too large for int64 arithmetic")

    # scalars
    def s_add(self, a: int, b: int) -> int:
        return (a + b) % self.order

    def s_neg(self, a: int) -> int:
        return (-a) % self.order

    def s_mul(self, a: int, b: int) -> int:
        return (a * b) % self.order

    def s_inv(self, a: int) -> int:
        a %= self.order
        if a == 0:
            raise ZeroDivisionError("0 has no inverse")
        return pow(a, self.order - 2, self.order)

    # vectors
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a + b) % self.order

    def neg(self, a: np.ndarray) -> np.ndarray:
        return (-a) % self.order

    def scalar_mul(self, c: int, a: np.ndarray) -> np.ndarray:
        return (a * (c % self.order)) % self.order


class BinaryExtensionField(Field):
    """GF(2^m) with log/antilog table arithmetic, for m in [1, 16].

    ``primitive_poly`` is the integer encoding of an irreducible polynomial of
    degree m over GF(2) (including the x^m term).  Defaults are the standard
    choices (e.g. 0x11D for GF(256), as used by RS(255, k) codecs).
    """

    _DEFAULT_POLY = {
        1: 0b11,
        2: 0b111,
        3: 0b1011,
        4: 0b10011,
        5: 0b100101,
        6: 0b1000011,
        7: 0b10001001,
        8: 0x11D,
        9: 0b1000010001,
        10: 0b10000001001,
        11: 0b100000000101,
        12: 0b1000001010011,
        13: 0b10000000011011,
        14: 0b100010001000011,
        15: 0b1000000000000011,
        16: 0b10001000000001011,
    }

    def __init__(self, m: int, primitive_poly: int | None = None):
        if not 1 <= m <= 16:
            raise ValueError("m must be in [1, 16]")
        self.m = m
        self.order = 1 << m
        self.characteristic = 2
        self.dtype = np.dtype(np.uint32)
        poly = primitive_poly or self._DEFAULT_POLY[m]
        self._build_tables(poly)

    def _build_tables(self, poly: int) -> None:
        size = self.order
        exp = np.zeros(2 * size, dtype=np.uint32)
        log = np.zeros(size, dtype=np.int64)
        x = 1
        for i in range(size - 1):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & size:
                x ^= poly
        if x != 1:
            raise ValueError(f"poly {poly:#x} is not primitive for GF(2^{self.m})")
        # duplicate so exp[(la + lb)] never needs a modulo
        exp[size - 1 : 2 * (size - 1)] = exp[: size - 1]
        self._exp = exp
        self._log = log

    # scalars
    def s_add(self, a: int, b: int) -> int:
        return a ^ b

    def s_neg(self, a: int) -> int:
        return a  # characteristic 2

    def s_mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return int(self._exp[int(self._log[a]) + int(self._log[b])])

    def s_inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("0 has no inverse")
        return int(self._exp[(self.order - 1) - int(self._log[a])])

    # vectors
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.bitwise_xor(a, b)

    def neg(self, a: np.ndarray) -> np.ndarray:
        return a.copy()

    def scalar_mul(self, c: int, a: np.ndarray) -> np.ndarray:
        if c == 0:
            return np.zeros_like(a)
        if c == 1:
            return a.copy()
        out = np.zeros_like(a)
        nz = a != 0
        if np.any(nz):
            out[nz] = self._exp[self._log[a[nz]] + int(self._log[c])]
        return out


GF256 = BinaryExtensionField(8)


def default_field() -> Field:
    """The field used by examples/benchmarks when none is specified.

    GF(257) satisfies the odd-characteristic requirement of the paper's
    running example codes while staying byte-friendly.
    """
    return PrimeField(257)
