"""Code reports: fault tolerance, storage, and locality of a linear code.

Property (II) of the paper means CausalEC inherits the code's structure
wholesale, so evaluating a deployment reduces to evaluating its code:

* **fault tolerance** per object: the largest f such that *any* f server
  crashes leave a live recovery set (footnote 7: an MDS (N, k) code
  tolerates N - k);
* **storage**: symbols per server and the total expansion factor relative
  to the K objects (replication's expansion is N);
* **locality**: which servers can serve each object with zero round trips.

``CodeReport.of(code)`` computes all of it by exhaustive subset analysis
(intended for the small N of deployment codes).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from .code import LinearCode

__all__ = ["ObjectReport", "CodeReport"]


@dataclass(frozen=True)
class ObjectReport:
    """Structure of one object under the code."""

    obj: int
    minimal_recovery_sets: tuple[frozenset[int], ...]
    local_servers: frozenset[int]  # singleton recovery sets
    fault_tolerance: int  # max crashes always survivable

    @property
    def locally_readable(self) -> bool:
        return bool(self.local_servers)


@dataclass(frozen=True)
class CodeReport:
    """Whole-code summary."""

    name: str
    num_servers: int
    num_objects: int
    objects: tuple[ObjectReport, ...]
    symbols_per_server: tuple[int, ...]
    expansion: float  # total stored symbols / K
    is_mds: bool

    @classmethod
    def of(cls, code: LinearCode) -> "CodeReport":
        objects = []
        for k in range(code.K):
            rsets = tuple(code.minimal_recovery_sets(k))
            objects.append(
                ObjectReport(
                    obj=k,
                    minimal_recovery_sets=rsets,
                    local_servers=frozenset(
                        next(iter(r)) for r in rsets if len(r) == 1
                    ),
                    fault_tolerance=_fault_tolerance(code, k),
                )
            )
        symbols = tuple(code.symbols_at(s) for s in range(code.N))
        return cls(
            name=code.name,
            num_servers=code.N,
            num_objects=code.K,
            objects=tuple(objects),
            symbols_per_server=symbols,
            expansion=sum(symbols) / code.K,
            is_mds=code.is_mds(),
        )

    @property
    def fault_tolerance(self) -> int:
        """Crashes tolerated for every object simultaneously."""
        return min(o.fault_tolerance for o in self.objects)

    def summary_lines(self) -> list[str]:
        lines = [
            f"code {self.name}: N={self.num_servers} servers, "
            f"K={self.num_objects} objects",
            f"  storage expansion: {self.expansion:.2f}x "
            f"(replication: {self.num_servers}x)",
            f"  fault tolerance: {self.fault_tolerance} crash(es)"
            + (" [MDS]" if self.is_mds else ""),
        ]
        for o in self.objects:
            local = (
                "servers " + ",".join(str(s + 1) for s in sorted(o.local_servers))
                if o.local_servers
                else "none"
            )
            lines.append(
                f"  X{o.obj + 1}: {len(o.minimal_recovery_sets)} minimal "
                f"recovery sets, local at {local}, tolerates "
                f"{o.fault_tolerance} crash(es)"
            )
        return lines

    def __str__(self) -> str:
        return "\n".join(self.summary_lines())


def _fault_tolerance(code: LinearCode, obj: int) -> int:
    """Largest f such that every f-subset of crashes leaves a recovery set."""
    servers = range(code.N)
    for f in range(code.N + 1):
        for crashed in combinations(servers, f):
            alive = frozenset(servers) - frozenset(crashed)
            if not code.is_recovery_set(alive, obj):
                return f - 1
    return code.N  # unreachable for non-trivial codes
