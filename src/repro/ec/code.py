"""Arbitrary linear erasure codes (Definitions 1-4 of the paper).

A :class:`LinearCode` C(N, K, F) assigns to each of ``N`` servers an encoding
function Phi_s: V^K -> W_s, where V = F^vlen is the object-value space and
W_s = V^{r_s}.  Each Phi_s is specified by an (r_s x K) coefficient matrix
G_s over F: the j-th stored symbol at server s is ``sum_k G_s[j,k] * x_k``.

This representation covers every scheme the paper discusses:

* replication / partial replication (rows of G_s are unit vectors),
* intra-group Reed--Solomon (G_s rows are MDS-generator rows),
* cross-object codes such as Example 1's (5,3) code and the 6-DC code of
  Sec. 1.1 (rows mix several objects).

The class exposes exactly the primitives CausalEC consumes:

* ``objects_at(s)`` -- the set X_s of objects Phi_s depends on (Def. 3),
* ``is_recovery_set(S, k)`` / ``decode(...)`` -- recovery sets and the
  decoding functions Psi (Def. 2),
* ``reencode(s, w, k, old, new)`` -- the re-encoding functions Gamma_{s,k}
  (Def. 4): Gamma(Phi(x), x_k, x'_k) = Phi(x') when x, x' differ only in
  coordinate k.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from . import matrix as fmat
from .field import Field

__all__ = ["LinearCode"]


class LinearCode:
    """A linear code C(N, K, F) given by per-server coefficient matrices."""

    def __init__(
        self,
        field: Field,
        num_objects: int,
        server_matrices: Sequence[np.ndarray | Sequence[Sequence[int]]],
        value_len: int = 1,
        name: str = "linear-code",
    ):
        if num_objects < 1:
            raise ValueError("need at least one object")
        if value_len < 1:
            raise ValueError("value_len must be positive")
        self.field = field
        self.K = num_objects
        self.N = len(server_matrices)
        self.value_len = value_len
        self.name = name
        mats: list[np.ndarray] = []
        for s, g in enumerate(server_matrices):
            arr = np.array(g, dtype=field.dtype)
            if arr.ndim == 1:
                arr = arr.reshape(1, -1)
            if arr.ndim != 2 or arr.shape[1] != num_objects:
                raise ValueError(
                    f"server {s}: expected matrix with {num_objects} columns, "
                    f"got shape {arr.shape}"
                )
            mats.append(field.validate(arr))
        self.matrices = mats
        self._objects_at = [
            frozenset(int(k) for k in range(self.K) if np.any(g[:, k]))
            for g in mats
        ]
        # per-server nonzero-column structure: encode only touches the
        # objects a server actually mixes (X_s), as a single compact matmul
        self._nz_cols = [np.flatnonzero(np.any(g, axis=0)) for g in mats]
        self._g_nz = [g[:, cols] for g, cols in zip(mats, self._nz_cols)]
        self._stacked_g = (
            np.vstack(mats)
            if mats
            else np.zeros((0, num_objects), dtype=field.dtype)
        )
        self._row_offsets = np.concatenate(
            ([0], np.cumsum([g.shape[0] for g in mats]))
        ).astype(int)
        self._recovery_cache: dict[tuple[frozenset[int], int], bool] = {}
        self._coeff_cache: dict[tuple[tuple[int, ...], int], np.ndarray | None] = {}
        self._minimal_cache: dict[int, list[frozenset[int]]] = {}

    # ------------------------------------------------------------------
    # structure

    def symbols_at(self, s: int) -> int:
        """r_s: number of stored symbols (rows of G_s) at server ``s``."""
        return self.matrices[s].shape[0]

    def objects_at(self, s: int) -> frozenset[int]:
        """X_s: the objects server ``s``'s encoding function depends on."""
        return self._objects_at[s]

    def storage_fraction(self, s: int) -> float:
        """Stored symbols at ``s`` as a fraction of one object value."""
        return self.symbols_at(s) / 1.0

    def zero_symbol(self, s: int) -> np.ndarray:
        """The all-zero codeword symbol for server ``s`` (shape r_s x vlen)."""
        return np.zeros((self.symbols_at(s), self.value_len), dtype=self.field.dtype)

    def zero_value(self) -> np.ndarray:
        """The zero object value in V."""
        return self.field.zeros(self.value_len)

    # ------------------------------------------------------------------
    # encoding and re-encoding

    def _value_row(self, k: int, v: np.ndarray) -> np.ndarray:
        arr = np.asarray(v, dtype=self.field.dtype)
        if arr.shape != (self.value_len,):
            raise ValueError(
                f"object {k}: value has shape {arr.shape}, "
                f"expected ({self.value_len},)"
            )
        return arr

    def _values_matrix(
        self, values: Sequence[np.ndarray], cols: Iterable[int]
    ) -> np.ndarray:
        rows = [self._value_row(k, values[k]) for k in cols]
        if not rows:
            return np.zeros((0, self.value_len), dtype=self.field.dtype)
        return np.stack(rows)

    def encode(self, s: int, values: Sequence[np.ndarray]) -> np.ndarray:
        """Phi_s applied to the K object values (each a length-vlen vector).

        A single compact field-matmul over the server's nonzero columns.
        """
        if len(values) != self.K:
            raise ValueError(f"expected {self.K} object values")
        rows = [self._value_row(k, values[k]) for k in range(self.K)]
        cols = self._nz_cols[s]
        if not cols.size:
            return self.zero_symbol(s)
        return self.field.matmul(self._g_nz[s], np.stack([rows[k] for k in cols]))

    def encode_all(self, values: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Phi_s for every server at once, via one stacked field-matmul.

        Returns a list of independent (r_s, value_len) symbol arrays; used by
        write paths that fan a fresh codeword out to all N servers.
        """
        if len(values) != self.K:
            raise ValueError(f"expected {self.K} object values")
        prod = self.field.matmul(
            self._stacked_g, self._values_matrix(values, range(self.K))
        )
        off = self._row_offsets
        return [prod[off[s] : off[s + 1]].copy() for s in range(self.N)]

    def _encode_reference(self, s: int, values: Sequence[np.ndarray]) -> np.ndarray:
        """Pre-kernel scalar-loop Phi_s (ground truth for property tests)."""
        if len(values) != self.K:
            raise ValueError(f"expected {self.K} object values")
        g = self.matrices[s]
        f = self.field
        out = self.zero_symbol(s)
        for j in range(g.shape[0]):
            for k in range(self.K):
                c = int(g[j, k])
                if c:
                    v = values[k]
                    for t in range(self.value_len):
                        out[j, t] = f.s_add(
                            int(out[j, t]), f.s_mul(c, int(v[t]))
                        )
        return out

    def reencode(
        self,
        s: int,
        symbol: np.ndarray,
        k: int,
        old_value: np.ndarray,
        new_value: np.ndarray,
    ) -> np.ndarray:
        """Gamma_{s,k}: swap object k's contribution from old to new value.

        Satisfies Definition 4: for symbol = Phi_s(x) with x_k = old_value,
        the result is Phi_s(x') where x' replaces coordinate k by new_value.
        Passing ``old_value = 0`` applies the new value on top (the "apply"
        step); passing ``new_value = 0`` cancels the old contribution (the
        "remove" step).
        """
        sym = self._check_symbol(s, symbol)
        delta = self.field.sub(
            self._value_row(k, new_value), self._value_row(k, old_value)
        )
        col = self.matrices[s][:, k]
        if self.field.is_zero(delta) or not col.any():
            return sym.copy()
        return self.field.axpy(col, delta, sym)

    def reencode_many(
        self,
        s: int,
        symbol: np.ndarray,
        updates: Iterable[tuple[int, np.ndarray, np.ndarray]],
    ) -> np.ndarray:
        """Apply several Gamma_{s,k} steps as one batched kernel call.

        ``updates`` is an iterable of ``(k, old_value, new_value)`` triples;
        the result equals chaining :meth:`reencode` over them in order (the
        deltas commute), but costs a single field-matmul.
        """
        sym = self._check_symbol(s, symbol)
        g = self.matrices[s]
        ks: list[int] = []
        deltas: list[np.ndarray] = []
        for k, old_value, new_value in updates:
            d = self.field.sub(
                self._value_row(k, new_value), self._value_row(k, old_value)
            )
            if self.field.is_zero(d) or not g[:, k].any():
                continue
            ks.append(int(k))
            deltas.append(d)
        if not ks:
            return sym.copy()
        update = self.field.matmul(g[:, ks], np.stack(deltas))
        return self.field.add(sym, update)

    def _reencode_reference(
        self,
        s: int,
        symbol: np.ndarray,
        k: int,
        old_value: np.ndarray,
        new_value: np.ndarray,
    ) -> np.ndarray:
        """Pre-kernel scalar-loop Gamma_{s,k} (ground truth for tests)."""
        g = self.matrices[s]
        f = self.field
        out = np.array(symbol, dtype=f.dtype, copy=True)
        for j in range(g.shape[0]):
            c = int(g[j, k])
            if c:
                for t in range(self.value_len):
                    d = f.s_sub(int(new_value[t]), int(old_value[t]))
                    out[j, t] = f.s_add(int(out[j, t]), f.s_mul(c, d))
        return out

    def _check_symbol(self, s: int, symbol: np.ndarray) -> np.ndarray:
        sym = np.asarray(symbol, dtype=self.field.dtype)
        expected = (self.symbols_at(s), self.value_len)
        if sym.shape != expected:
            raise ValueError(
                f"server {s}: symbol has shape {sym.shape}, "
                f"expected {expected} (r_s, value_len)"
            )
        return sym

    # ------------------------------------------------------------------
    # recovery sets and decoding

    def _stack(self, servers: Sequence[int]) -> np.ndarray:
        rows = [self.matrices[s] for s in servers]
        if not rows:
            return np.zeros((0, self.K), dtype=self.field.dtype)
        return np.vstack(rows)

    def is_recovery_set(self, servers: Iterable[int], k: int) -> bool:
        """True iff object k is decodable from the symbols at ``servers``.

        Definition 2: S is a recovery set for object k iff the unit vector
        e_k lies in the row space of the stacked coefficient matrices G_S.
        """
        key = (frozenset(int(s) for s in servers), int(k))
        if key not in self._recovery_cache:
            self._recovery_cache[key] = (
                self._decoding_coefficients(tuple(sorted(key[0])), k) is not None
            )
        return self._recovery_cache[key]

    def _decoding_coefficients(
        self, servers: tuple[int, ...], k: int
    ) -> np.ndarray | None:
        key = (servers, int(k))
        if key not in self._coeff_cache:
            stacked = self._stack(servers)
            e_k = np.zeros(self.K, dtype=self.field.dtype)
            e_k[k] = 1
            self._coeff_cache[key] = fmat.solve_left(self.field, stacked, e_k)
        return self._coeff_cache[key]

    def decode(
        self, k: int, symbols: Mapping[int, np.ndarray]
    ) -> np.ndarray | None:
        """Psi: recover object k's value from server->symbol map, or None.

        ``symbols`` maps server ids to their codeword-symbol values (all
        encodings of the *same* object-value vector).  Returns None when the
        provided servers do not form a recovery set for object k.  Each
        symbol must have shape (r_s, value_len); anything else (transposed,
        truncated, flattened) raises ``ValueError``.
        """
        servers = tuple(sorted(symbols))
        stacked = self._stack_symbols(servers, symbols)
        lam = self._decoding_coefficients(servers, k)
        if lam is None:
            return None
        nz = np.flatnonzero(lam)
        if not nz.size:
            return self.field.zeros(self.value_len)
        return self.field.matmul(lam[nz].reshape(1, -1), stacked[nz])[0]

    def decode_many(
        self, ks: Sequence[int], symbols: Mapping[int, np.ndarray]
    ) -> list[np.ndarray] | None:
        """Recover several objects from one symbol set with one field-matmul.

        Returns the decoded values aligned with ``ks``, or None when any
        requested object is not recoverable from the provided servers.
        """
        servers = tuple(sorted(symbols))
        stacked = self._stack_symbols(servers, symbols)
        lams = []
        for k in ks:
            lam = self._decoding_coefficients(servers, k)
            if lam is None:
                return None
            lams.append(lam)
        if not lams:
            return []
        out = self.field.matmul(np.stack(lams), stacked)
        return [out[i] for i in range(len(lams))]

    def _stack_symbols(
        self, servers: Sequence[int], symbols: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        checked = [self._check_symbol(s, symbols[s]) for s in servers]
        if not checked:
            return np.zeros((0, self.value_len), dtype=self.field.dtype)
        return np.vstack(checked)

    def _decode_reference(
        self, k: int, symbols: Mapping[int, np.ndarray]
    ) -> np.ndarray | None:
        """Pre-kernel scalar-loop Psi (ground truth for property tests)."""
        servers = tuple(sorted(symbols))
        lam = self._decoding_coefficients(servers, k)
        if lam is None:
            return None
        f = self.field
        out = f.zeros(self.value_len)
        idx = 0
        for s in servers:
            sym = symbols[s]
            for j in range(self.symbols_at(s)):
                c = int(lam[idx])
                if c:
                    for t in range(self.value_len):
                        out[t] = f.s_add(int(out[t]), f.s_mul(c, int(sym[j][t])))
                idx += 1
        return out

    def recovery_servers(self, k: int) -> frozenset[int]:
        """Servers that participate in at least one minimal recovery set."""
        return frozenset(s for t in self.minimal_recovery_sets(k) for s in t)

    def minimal_recovery_sets(self, k: int) -> list[frozenset[int]]:
        """All minimal (under inclusion) recovery sets for object k.

        Enumerates subsets by increasing size; a set is kept iff it is a
        recovery set and no kept set is a proper subset of it.  Intended for
        the small N the paper's examples use.
        """
        if k not in self._minimal_cache:
            from itertools import combinations

            minimal: list[frozenset[int]] = []
            for size in range(1, self.N + 1):
                for combo in combinations(range(self.N), size):
                    cand = frozenset(combo)
                    if any(m <= cand for m in minimal):
                        continue
                    if self.is_recovery_set(cand, k):
                        minimal.append(cand)
            self._minimal_cache[k] = minimal
        return list(self._minimal_cache[k])

    def is_mds(self) -> bool:
        """True iff every K servers' symbols recover every object.

        Only meaningful for codes with one symbol per server (r_s = 1); this
        is the maximum-distance-separable property of, e.g., Reed--Solomon.
        """
        from itertools import combinations

        if any(self.symbols_at(s) != 1 for s in range(self.N)):
            return False
        for combo in combinations(range(self.N), min(self.K, self.N)):
            for k in range(self.K):
                if not self.is_recovery_set(combo, k):
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinearCode(name={self.name!r}, N={self.N}, K={self.K}, "
            f"field={self.field!r})"
        )
