"""Dense linear algebra over finite fields.

Recovery-set detection (Definition 2) reduces to row-space membership and
decoding reduces to solving a linear system over the code's field; both are
implemented here via fraction-free Gaussian elimination using the scalar
operations of a :class:`repro.ec.field.Field`.

Matrices are 2-D numpy arrays of field elements (the field's dtype).  All
functions are pure.
"""

from __future__ import annotations

import numpy as np

from .field import Field

__all__ = [
    "rref",
    "rank",
    "solve_left",
    "in_rowspan",
    "invert",
    "matmul",
    "matmul_reference",
]


def _as_matrix(field: Field, a: np.ndarray) -> np.ndarray:
    arr = np.array(a, dtype=field.dtype, copy=True)
    if arr.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    return arr


def rref(field: Field, a: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row echelon form of ``a`` and the list of pivot columns."""
    m = _as_matrix(field, a)
    rows, cols = m.shape
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        # find a pivot in column c at or below row r
        below = np.flatnonzero(m[r:, c])
        if not below.size:
            continue
        pivot_row = r + int(below[0])
        if pivot_row != r:
            m[[r, pivot_row]] = m[[pivot_row, r]]
        inv = field.s_inv(int(m[r, c]))
        if inv != 1:
            m[r] = field.scalar_mul(inv, m[r])
        # batched elimination: fold the pivot row out of every other row with
        # a nonzero entry in column c in one axpy kernel call
        targets = np.flatnonzero(m[:, c])
        targets = targets[targets != r]
        if targets.size:
            factors = field.neg(m[targets, c])
            m[targets] = field.axpy(factors, m[r], m[targets])
        pivots.append(c)
        r += 1
    return m, pivots


def rank(field: Field, a: np.ndarray) -> int:
    """Rank of ``a`` over ``field``."""
    _, pivots = rref(field, a)
    return len(pivots)


def matmul(field: Field, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over the field (delegates to the batched kernel)."""
    a = np.asarray(a, dtype=field.dtype)
    b = np.asarray(b, dtype=field.dtype)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError("dimension mismatch")
    return field.matmul(a, b)


def matmul_reference(field: Field, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Schoolbook scalar-loop matrix product (ground truth for tests)."""
    a = np.asarray(a, dtype=field.dtype)
    b = np.asarray(b, dtype=field.dtype)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError("dimension mismatch")
    return field.matmul_reference(a, b)


def solve_left(field: Field, a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    """Solve ``lam @ a = b`` for a row vector ``lam``, or return None.

    ``a`` is (n x m), ``b`` is a length-m row vector; the solution (if any) is
    a length-n row vector.  Used to express a target unit vector as a linear
    combination of stacked codeword-symbol rows (decoding, Definition 2).
    """
    a = np.asarray(a, dtype=field.dtype)
    b = np.asarray(b, dtype=field.dtype)
    n, m = a.shape
    if b.shape != (m,):
        raise ValueError("shape mismatch")
    # Solve a.T x = b.T by eliminating the augmented matrix [a.T | b].
    aug = np.zeros((m, n + 1), dtype=field.dtype)
    aug[:, :n] = a.T
    aug[:, n] = b
    red, pivots = rref(field, aug)
    if n in pivots:
        return None  # inconsistent system
    lam = field.zeros(n)
    for row_idx, c in enumerate(pivots):
        lam[c] = red[row_idx, n]
    return lam


def in_rowspan(field: Field, a: np.ndarray, v: np.ndarray) -> bool:
    """True iff row vector ``v`` lies in the row space of ``a``."""
    return solve_left(field, a, v) is not None


def invert(field: Field, a: np.ndarray) -> np.ndarray:
    """Inverse of a square matrix over the field (raises if singular)."""
    a = np.asarray(a, dtype=field.dtype)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("matrix must be square")
    aug = np.zeros((n, 2 * n), dtype=field.dtype)
    aug[:, :n] = a
    aug[np.arange(n), n + np.arange(n)] = 1
    red, pivots = rref(field, aug)
    if pivots[:n] != list(range(n)):
        raise np.linalg.LinAlgError("matrix is singular over the field")
    return red[:, n:]
