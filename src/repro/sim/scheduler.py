"""Discrete-event scheduler: the clock of the asynchronous system model.

The paper's system model (Sec. 2.1) is an asynchronous message-passing
composition of I/O automata where the only sources of asynchrony are
processing and communication delays.  The scheduler realises that model: it
maintains a simulated clock and an event heap; network deliveries, timers
(e.g. periodic Garbage_Collection), and client invocations are all events.

Determinism: events at equal times fire in schedule order (a monotone
sequence number breaks ties), so a fixed seed yields a reproducible
execution.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Scheduler", "EventHandle"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Scheduler.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Scheduler:
    """Event heap with a simulated clock (time unit: milliseconds)."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def schedule(self, delay: float, fn: Callable[[], None]) -> EventHandle:
        """Run ``fn`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.at(self.now + delay, fn)

    def at(self, time: float, fn: Callable[[], None]) -> EventHandle:
        """Run ``fn`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError("cannot schedule in the past")
        ev = _Event(time, next(self._seq), fn)
        heapq.heappush(self._heap, ev)
        return EventHandle(ev)

    def pending(self) -> int:
        """Number of not-yet-fired (possibly cancelled) events."""
        return len(self._heap)

    def step(self) -> bool:
        """Fire the next event; returns False when the heap is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.now = ev.time
            self.events_processed += 1
            ev.fn()
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> None:
        """Process events until quiescence, a deadline, or a predicate.

        ``until`` is an absolute simulated-time bound (events scheduled at or
        before it still fire); ``max_events`` bounds work; ``stop_when`` is
        checked after every event.
        """
        count = 0
        while self._heap:
            if max_events is not None and count >= max_events:
                return
            nxt = self._heap[0]
            if nxt.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and nxt.time > until:
                self.now = until
                return
            if not self.step():
                return
            count += 1
            if stop_when is not None and stop_when():
                return
        if until is not None and until > self.now:
            self.now = until
