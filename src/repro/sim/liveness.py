"""Shared node-liveness bookkeeping for network implementations.

Both the discrete-event :class:`~repro.sim.network.Network` and the
manually stepped :class:`~repro.sim.manual.ManualNetwork` need the same
registry: which node ids have handlers, and which are currently halted
(crash faults).  Keeping one mixin prevents the two implementations'
crash semantics from drifting -- a halted node neither sends (checked by
the owner's ``send``) nor receives, and a restarted node resumes both.

Messages sent to a node while it was down stay lost -- recovering them is
the job of the ARQ sublayer (:mod:`repro.sim.transport`) and of
durable-snapshot recovery (:mod:`repro.core.snapshot`).
"""

from __future__ import annotations

from collections.abc import Callable

__all__ = ["LivenessRegistry"]


class LivenessRegistry:
    """Handler registry + halted set shared by all network implementations."""

    def __init__(self) -> None:
        self._handlers: dict[int, Callable[[int, object], None]] = {}
        self._halted: set[int] = set()

    def register(
        self, node_id: int, handler: Callable[[int, object], None]
    ) -> None:
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already registered")
        self._handlers[node_id] = handler

    def halt(self, node_id: int) -> None:
        """Crash a node: it receives no further messages and sends none."""
        self._halted.add(node_id)

    def restart(self, node_id: int) -> None:
        """Un-halt a crashed node: it may send and receive again."""
        self._halted.discard(node_id)

    def is_halted(self, node_id: int) -> bool:
        return node_id in self._halted
