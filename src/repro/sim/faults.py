"""Fault injection: scheduled crashes and latency degradation.

The paper's fault model is halting (crash) failures; channels stay reliable
and FIFO, but asynchrony puts no bound on delays.  This module provides

* :class:`FaultPlan` -- halt/restart specific servers at specific times,
  plus scheduled *connection resets* for runtimes with real connections,
* :class:`DegradedLatency` -- a latency-model wrapper that multiplies
  delays on selected channels during configured windows (a "slow but alive"
  adversary, legal under asynchrony).

Link-level faults (:class:`~repro.sim.network.LinkFaults` with drops,
duplications, and :class:`~repro.sim.network.PartitionPlan` partitions) are
defined in :mod:`~repro.sim.network` and re-exported here: together with
:class:`FaultPlan` they form the complete chaos vocabulary, and the *same*
schedule objects drive both the discrete-event simulator and the live
asyncio runtime's fault-injection shim
(:class:`~repro.runtime.chaos_rt.LiveFaultInjector`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .network import LatencyModel, LinkFaults, PartitionPlan, PartitionWindow
from .scheduler import Scheduler

__all__ = [
    "FaultPlan",
    "DegradedLatency",
    "LatencySpike",
    "LinkFaults",
    "PartitionPlan",
    "PartitionWindow",
]


@dataclass
class FaultPlan:
    """A schedule of crash, recovery, and connection-reset faults.

    ``halts``/``restarts`` are (time, server-index) pairs and apply to every
    runtime.  ``resets`` schedules *connection resets*: at the given time
    the server abruptly closes its established peer connections (they
    redial and replay).  Resets only exist where connections do -- the live
    asyncio runtime; the simulator's channels are connectionless, so
    :meth:`apply` ignores them there (a reset is a no-op fault for a model
    whose transport never loses channel state).

    Silent-corruption faults (all seeded by ``rot_seed`` so schedules
    replay identically):

    * ``rots`` -- flip bits in the server's in-memory codeword symbol;
      detected by the integrity seal at the next guard or scrub round.
    * ``disk_rots`` -- flip bits in the server's durable checkpoint (live
      runtime: real bit flips in the file; simulator: the slot is marked
      rotted and fails verification, the same detection-level model).
    * ``torn_writes`` -- truncate the checkpoint mid-file, modelling a
      crash between write and rename on a store without atomic replace.
    """

    halts: list[tuple[float, int]] = field(default_factory=list)
    #: permanent halts: the machine never comes back -- supervisors must
    #: not resurrect it, and dynamic-membership clusters may auto-replace
    kill_forevers: list[tuple[float, int]] = field(default_factory=list)
    restarts: list[tuple[float, int]] = field(default_factory=list)
    resets: list[tuple[float, int]] = field(default_factory=list)
    rots: list[tuple[float, int]] = field(default_factory=list)
    disk_rots: list[tuple[float, int]] = field(default_factory=list)
    torn_writes: list[tuple[float, int]] = field(default_factory=list)
    rot_seed: int = 0

    @staticmethod
    def _validate(at_time: float, server: int) -> tuple[float, int]:
        at_time = float(at_time)
        if not np.isfinite(at_time) or at_time < 0:
            raise ValueError(f"fault time must be finite and >= 0, got {at_time}")
        if not isinstance(server, (int, np.integer)) or isinstance(server, bool):
            raise ValueError(f"server must be an integer index, got {server!r}")
        if server < 0:
            raise ValueError(f"server index must be >= 0, got {server}")
        return at_time, int(server)

    def halt(self, at_time: float, server: int) -> "FaultPlan":
        self.halts.append(self._validate(at_time, server))
        return self

    def halt_forever(self, at_time: float, server: int) -> "FaultPlan":
        """Schedule a *permanent* failure: the server halts and is marked
        never-coming-back (``repro chaos --kill-forever`` / auto-replace)."""
        self.kill_forevers.append(self._validate(at_time, server))
        return self

    def restart(self, at_time: float, server: int) -> "FaultPlan":
        """Schedule a crash-*recovery*: the server rejoins at ``at_time``."""
        self.restarts.append(self._validate(at_time, server))
        return self

    def reset_connections(self, at_time: float, server: int) -> "FaultPlan":
        """Schedule an abrupt close of the server's peer connections."""
        self.resets.append(self._validate(at_time, server))
        return self

    def corrupt_codeword(self, at_time: float, server: int) -> "FaultPlan":
        """Schedule in-memory bit rot of the server's codeword symbol."""
        self.rots.append(self._validate(at_time, server))
        return self

    def corrupt_checkpoint(self, at_time: float, server: int) -> "FaultPlan":
        """Schedule bit rot of the server's durable checkpoint."""
        self.disk_rots.append(self._validate(at_time, server))
        return self

    def torn_write(self, at_time: float, server: int) -> "FaultPlan":
        """Schedule a torn write (truncation) of the durable checkpoint."""
        self.torn_writes.append(self._validate(at_time, server))
        return self

    def all_faults(self) -> list[tuple[float, int]]:
        return (
            self.halts + self.kill_forevers + self.restarts + self.resets
            + self.rots + self.disk_rots + self.torn_writes
        )

    def apply(self, cluster) -> None:
        """Arm all faults on a cluster's scheduler (resets are ignored:
        the simulator's channels have no connection state to reset)."""
        n = len(cluster.servers)
        for at_time, server in self.all_faults():
            if server >= n:
                raise ValueError(
                    f"server index {server} out of range for a "
                    f"{n}-server cluster"
                )
        for at_time, server in self.halts:
            node = cluster.servers[server]
            cluster.scheduler.at(at_time, node.halt)

        def _halt_forever(node) -> None:
            node.halt()
            # the marker is what supervisors/replacement logic key off;
            # simulated servers grow it dynamically
            node.permanently_failed = True

        for at_time, server in self.kill_forevers:
            node = cluster.servers[server]
            cluster.scheduler.at(at_time, lambda node=node: _halt_forever(node))
        for at_time, server in self.restarts:
            node = cluster.servers[server]
            cluster.scheduler.at(at_time, node.restart)
        for at_time, server in self.rots:
            node = cluster.servers[server]
            cluster.scheduler.at(
                at_time,
                lambda node=node: node.corrupt_codeword(seed=self.rot_seed),
            )
        durable = getattr(cluster, "durable", None)
        # torn writes and disk rot converge in the simulator: both damage
        # the slot so verification/load detects it (the live runtime's
        # file store distinguishes the two byte-level mechanisms)
        for at_time, server in self.disk_rots + self.torn_writes:
            if durable is None:
                raise ValueError(
                    "checkpoint-corruption faults need a durable cluster"
                )
            cluster.scheduler.at(
                at_time, lambda s=server: durable.corrupt(s)
            )


@dataclass(frozen=True)
class LatencySpike:
    """One degradation window: delays on matching channels multiply."""

    start: float
    end: float
    factor: float
    src: int | None = None  # None matches every source
    dst: int | None = None  # None matches every destination

    def matches(self, now: float, src: int, dst: int) -> bool:
        return (
            self.start <= now < self.end
            and (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
        )


class DegradedLatency(LatencyModel):
    """Wraps a base model; active spikes multiply the drawn delay."""

    def __init__(
        self,
        base: LatencyModel,
        scheduler: Scheduler,
        spikes: list[LatencySpike] | None = None,
    ):
        self.base = base
        self.scheduler = scheduler
        self.spikes = list(spikes or [])

    def add_spike(self, spike: LatencySpike) -> "DegradedLatency":
        self.spikes.append(spike)
        return self

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        d = self.base.delay(src, dst, rng)
        now = self.scheduler.now
        for spike in self.spikes:
            if spike.matches(now, src, dst):
                d *= spike.factor
        return d
