"""Message tracing: per-message records for debugging and cost accounting.

Attach a :class:`MessageTrace` to any network (simulated or manual) to
capture every send as a timestamped record; summaries slice by message
kind, channel, or time window.  The Fig. 2 and Sec. 4.2 benches use the
aggregate counters on :class:`~repro.sim.network.NetworkStats`; the trace
is the fine-grained tool for drilling into *which* round trips a read paid
for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["MessageRecord", "MessageTrace"]


@dataclass(frozen=True)
class MessageRecord:
    time: float
    src: int
    dst: int
    kind: str
    size_bits: float


class MessageTrace:
    """Records every message sent on an attached network."""

    def __init__(self, clock: Callable[[], float] | None = None):
        self.records: list[MessageRecord] = []
        self._clock = clock

    def attach(self, network) -> "MessageTrace":
        """Install as the network's monitor (replacing any existing one)."""
        scheduler = getattr(network, "scheduler", None)
        if self._clock is None:
            if scheduler is not None:
                self._clock = lambda: scheduler.now
            else:
                self._clock = lambda: float(len(self.records))

        def monitor(src: int, dst: int, msg: object) -> None:
            self.records.append(
                MessageRecord(
                    time=self._clock(),
                    src=src,
                    dst=dst,
                    kind=getattr(msg, "kind", type(msg).__name__),
                    size_bits=float(getattr(msg, "size_bits", 0.0)),
                )
            )

        network.monitor = monitor
        return self

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    def bits_by_kind(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0.0) + r.size_bits
        return out

    def channel(self, src: int, dst: int) -> list[MessageRecord]:
        return [r for r in self.records if r.src == src and r.dst == dst]

    def between(self, t0: float, t1: float) -> list[MessageRecord]:
        return [r for r in self.records if t0 <= r.time <= t1]

    def total_bits(self) -> float:
        return sum(r.size_bits for r in self.records)

    def clear(self) -> None:
        self.records.clear()
