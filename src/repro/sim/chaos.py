"""Chaos harness: seeded random fault schedules against CausalEC.

The paper proves causal consistency (Thm. 4.1) and eventual storage
convergence (Thm. 4.5) assuming reliable FIFO channels and halting faults.
This module stresses the *implementation* of those assumptions: it composes
random message drops (p <= 0.3 by default), duplicate deliveries, a network
partition window, and crash-restarts with durable-snapshot recovery into a
seeded :class:`ChaosSchedule`, runs a workload through the fault window on
the ARQ transport, heals everything, and then checks that

* every completed operation passes the causal-consistency checker (and the
  black-box session/written-value checkers),
* the re-encoding invariants (Lemmas D.1/D.2) never fired, and
* after faults cease the system **converges**: every operation settles
  (completes or failed fast), no ARQ segment stays un-acknowledged, and the
  transient protocol state (history lists, InQueues, ReadLs) drains to
  zero, as Theorem 4.5 promises.

Every decision is derived deterministically from the seed, so a failing
seed is a reproducible counterexample::

    from repro import PrimeField, example1_code
    from repro.sim.chaos import run_chaos

    result = run_chaos(example1_code(PrimeField(257)), seed=7)
    assert result.ok, result.summary()
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .network import LinkFaults, PartitionPlan, PartitionWindow

__all__ = [
    "ChaosConfig",
    "ChaosSchedule",
    "ChaosResult",
    "run_chaos",
    "run_chaos_suite",
]


@dataclass
class ChaosConfig:
    """Knobs for schedule generation and the driven workload."""

    # fault intensity (per-seed values are drawn up to these maxima)
    drop_prob_max: float = 0.3
    dup_prob_max: float = 0.15
    partition: bool = True
    crash_restarts: int = 1
    # fault window [fault_start, fault_end): all probabilistic faults and
    # partition windows live inside it; afterwards the network is clean
    fault_start: float = 20.0
    fault_end: float = 450.0
    # workload
    ops_per_client: int = 12
    num_objects: int = 3
    read_ratio: float = 0.5
    think_time_mean: float = 20.0
    client_sites: list[int] | None = None
    # client fail-fast policy
    retry_timeout: float = 40.0
    retry_backoff: float = 1.5
    retry_max: int = 6
    # server / convergence
    gc_interval: float = 25.0
    settle_slices: int = 40
    settle_slice_ms: float = 500.0
    check_sessions: bool = True


@dataclass
class ChaosSchedule:
    """One concrete, seed-derived fault schedule."""

    seed: int
    drop_prob: float
    dup_prob: float
    partitions: list[PartitionWindow] = field(default_factory=list)
    #: (halt_time, restart_time, server) triples
    crashes: list[tuple[float, float, int]] = field(default_factory=list)

    @classmethod
    def generate(
        cls, seed: int, num_servers: int, config: ChaosConfig | None = None
    ) -> "ChaosSchedule":
        cfg = config or ChaosConfig()
        rng = np.random.default_rng((seed, 0xC4A05))
        t0, t1 = cfg.fault_start, cfg.fault_end
        span = t1 - t0
        sched = cls(
            seed=seed,
            drop_prob=float(rng.uniform(0.05, cfg.drop_prob_max)),
            dup_prob=float(rng.uniform(0.0, cfg.dup_prob_max)),
        )
        if cfg.partition and num_servers >= 2:
            length = float(rng.uniform(0.15 * span, 0.4 * span))
            start = float(rng.uniform(t0, t1 - length))
            perm = rng.permutation(num_servers)
            cut = int(rng.integers(1, num_servers))
            sched.partitions.append(
                PartitionWindow.isolate(
                    start, start + length, perm[:cut].tolist(),
                    perm[cut:].tolist(),
                )
            )
        for _ in range(cfg.crash_restarts):
            victim = int(rng.integers(0, num_servers))
            down = float(rng.uniform(t0, t0 + 0.6 * span))
            up = min(down + float(rng.uniform(0.1 * span, 0.35 * span)), t1)
            sched.crashes.append((down, up, victim))
        return sched


@dataclass
class ChaosResult:
    """Verdict and observability counters for one chaos run."""

    seed: int
    ok: bool
    violations: list[str]
    converged: bool
    completed: int
    failed: int
    unsettled: int
    dropped: int
    duplicated: int
    severed: int
    retransmissions: int
    duplicates_suppressed: int
    server_restarts: int
    schedule: ChaosSchedule

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        lines = [
            f"chaos seed {self.seed}: {verdict} "
            f"(drop={self.schedule.drop_prob:.2f}, "
            f"dup={self.schedule.dup_prob:.2f}, "
            f"partitions={len(self.schedule.partitions)}, "
            f"crash-restarts={len(self.schedule.crashes)})",
            f"  ops: {self.completed} completed, {self.failed} failed fast, "
            f"{self.unsettled} unsettled",
            f"  links: {self.dropped} dropped, {self.duplicated} duplicated, "
            f"{self.severed} severed by partition",
            f"  arq: {self.retransmissions} retransmissions, "
            f"{self.duplicates_suppressed} duplicates suppressed",
            f"  recovery: {self.server_restarts} server restart(s), "
            f"converged={self.converged}",
        ]
        lines.extend(f"  violation: {v}" for v in self.violations)
        return "\n".join(lines)


def run_chaos(code, seed: int, config: ChaosConfig | None = None) -> ChaosResult:
    """Run one seeded chaos schedule against a CausalEC cluster."""
    # imported here: repro.core imports repro.sim submodules, so importing
    # it at sim-package init time would be circular
    from ..consistency import (
        check_causal_consistency,
        check_returns_written_values,
    )
    from ..consistency.sessions import check_session_guarantees
    from ..core.client import RetryPolicy
    from ..core.cluster import CausalECCluster
    from ..core.server import ServerConfig
    from ..workloads import ClosedLoopDriver, WorkloadConfig
    from .network import UniformLatency

    cfg = config or ChaosConfig()
    schedule = ChaosSchedule.generate(seed, code.N, cfg)
    faults = LinkFaults(
        drop_prob=schedule.drop_prob,
        dup_prob=schedule.dup_prob,
        partitions=PartitionPlan(schedule.partitions),
        seed=(seed * 2 + 1),
        until=cfg.fault_end,
    )
    cluster = CausalECCluster(
        code,
        latency=UniformLatency(0.5, 6.0),
        seed=seed,
        config=ServerConfig(gc_interval=cfg.gc_interval),
        link_faults=faults,
        retry=RetryPolicy(
            timeout=cfg.retry_timeout,
            backoff=cfg.retry_backoff,
            max_retries=cfg.retry_max,
        ),
        durable=True,
    )
    for down, up, victim in schedule.crashes:
        cluster.scheduler.at(down, lambda v=victim: cluster.halt_server(v))
        cluster.scheduler.at(up, lambda v=victim: cluster.restart_server(v))

    driver = ClosedLoopDriver(
        cluster,
        num_objects=cfg.num_objects,
        client_sites=cfg.client_sites,
        config=WorkloadConfig(
            ops_per_client=cfg.ops_per_client,
            read_ratio=cfg.read_ratio,
            think_time_mean=cfg.think_time_mean,
            seed=seed,
        ),
    )
    driver.start()

    # phase 1: ride out the fault window
    cluster.run(for_time=cfg.fault_end)
    # phase 2: clean network; run until the state stops changing
    converged = False
    last = None
    for _ in range(cfg.settle_slices):
        cluster.run(for_time=cfg.settle_slice_ms)
        fingerprint = (
            cluster.state_fingerprint(),
            len(cluster.history.unsettled()),
            cluster.transport.in_flight() if cluster.transport else 0,
        )
        if fingerprint == last and _quiescent(cluster):
            converged = True
            break
        last = fingerprint

    violations: list[str] = []
    try:
        cluster.assert_no_reencoding_errors()
    except AssertionError as exc:
        violations.append(str(exc))
    zero = code.zero_value()
    violations += check_causal_consistency(
        cluster.history, zero, raise_on_violation=False
    )
    violations += check_returns_written_values(
        cluster.history, zero, raise_on_violation=False
    )
    if cfg.check_sessions:
        violations += check_session_guarantees(
            cluster.history, zero, raise_on_violation=False
        )
    if not converged:
        violations.append(
            "no convergence after faults ceased: "
            f"{len(cluster.history.unsettled())} unsettled op(s), "
            f"{cluster.total_transient_entries()} transient entrie(s), "
            f"{cluster.transport.in_flight() if cluster.transport else 0} "
            f"ARQ segment(s) in flight"
        )

    history = cluster.history
    return ChaosResult(
        seed=seed,
        ok=not violations,
        violations=violations,
        converged=converged,
        completed=len(history.completed()),
        failed=len(history.failed()),
        unsettled=len(history.unsettled()),
        dropped=faults.dropped,
        duplicated=faults.duplicated,
        severed=faults.severed,
        retransmissions=cluster.transport.retransmissions,
        duplicates_suppressed=cluster.transport.duplicates_suppressed,
        server_restarts=sum(s.stats.restarts for s in cluster.servers),
        schedule=schedule,
    )


def _quiescent(cluster) -> bool:
    """Convergence predicate: Thm. 4.5's transient state has vanished."""
    return (
        not cluster.history.unsettled()
        and cluster.total_transient_entries() == 0
        and (cluster.transport is None or cluster.transport.in_flight() == 0)
        and not any(s.halted for s in cluster.servers)
    )


def run_chaos_suite(
    code,
    seeds=range(20),
    config: ChaosConfig | None = None,
) -> list[ChaosResult]:
    """Run many seeded schedules; returns one :class:`ChaosResult` each."""
    return [run_chaos(code, seed, config) for seed in seeds]
