"""Chaos harness: seeded random fault schedules against CausalEC.

The paper proves causal consistency (Thm. 4.1) and eventual storage
convergence (Thm. 4.5) assuming reliable FIFO channels and halting faults.
This module stresses the *implementation* of those assumptions: it composes
random message drops (p <= 0.3 by default), duplicate deliveries, a network
partition window, and crash-restarts with durable-snapshot recovery into a
seeded :class:`ChaosSchedule`, runs a workload through the fault window on
the ARQ transport, heals everything, and then checks that

* every completed operation passes the causal-consistency checker (and the
  black-box session/written-value checkers),
* the re-encoding invariants (Lemmas D.1/D.2) never fired, and
* after faults cease the system **converges**: every operation settles
  (completes or failed fast), no ARQ segment stays un-acknowledged, and the
  transient protocol state (history lists, InQueues, ReadLs) drains to
  zero, as Theorem 4.5 promises.

Every decision is derived deterministically from the seed, so a failing
seed is a reproducible counterexample::

    from repro import PrimeField, example1_code
    from repro.sim.chaos import run_chaos

    result = run_chaos(example1_code(PrimeField(257)), seed=7)
    assert result.ok, result.summary()
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.messages import DigestMsg
from .network import LinkFaults, PartitionPlan, PartitionWindow

__all__ = [
    "ChaosConfig",
    "ChaosSchedule",
    "ChaosResult",
    "run_chaos",
    "run_chaos_suite",
]


@dataclass
class ChaosConfig:
    """Knobs for schedule generation and the driven workload."""

    # fault intensity (per-seed values are drawn up to these maxima)
    drop_prob_max: float = 0.3
    dup_prob_max: float = 0.15
    partition: bool = True
    crash_restarts: int = 1
    # fault window [fault_start, fault_end): all probabilistic faults and
    # partition windows live inside it; afterwards the network is clean
    fault_start: float = 20.0
    fault_end: float = 450.0
    # workload
    ops_per_client: int = 12
    num_objects: int = 3
    read_ratio: float = 0.5
    think_time_mean: float = 20.0
    client_sites: list[int] | None = None
    # client fail-fast policy
    retry_timeout: float = 40.0
    retry_backoff: float = 1.5
    retry_max: int = 6
    # server / convergence
    gc_interval: float = 25.0
    settle_slices: int = 40
    settle_slice_ms: float = 500.0
    check_sessions: bool = True
    # integrity chaos (all default off, leaving legacy schedules
    # byte-identical): in-flight frame corruption probability ceiling,
    # seeded in-memory codeword bit rot (one per distinct non-crashing
    # server), and checkpoint damage placed inside crash windows -- a
    # file damaged while its owner runs is silently rewritten by the
    # next eager persist, so only a down victim's checkpoint stays
    # damaged long enough for the restart load to detect it
    corrupt_prob_max: float = 0.0
    codeword_rots: int = 0
    checkpoint_rots: int = 0
    torn_writes: int = 0
    scrub_interval: float | None = None


@dataclass
class ChaosSchedule:
    """One concrete, seed-derived fault schedule."""

    seed: int
    drop_prob: float
    dup_prob: float
    partitions: list[PartitionWindow] = field(default_factory=list)
    #: (halt_time, restart_time, server) triples
    crashes: list[tuple[float, float, int]] = field(default_factory=list)
    #: per-frame in-flight corruption probability (0 = off)
    corrupt_prob: float = 0.0
    #: (time, server) in-memory codeword bit-rot events
    rots: list[tuple[float, int]] = field(default_factory=list)
    #: (time, server) checkpoint bit-rot events (inside crash windows)
    disk_rots: list[tuple[float, int]] = field(default_factory=list)
    #: (time, server) checkpoint torn-write events (inside crash windows)
    torn_writes: list[tuple[float, int]] = field(default_factory=list)

    @classmethod
    def generate(
        cls, seed: int, num_servers: int, config: ChaosConfig | None = None
    ) -> "ChaosSchedule":
        cfg = config or ChaosConfig()
        rng = np.random.default_rng((seed, 0xC4A05))
        t0, t1 = cfg.fault_start, cfg.fault_end
        span = t1 - t0
        sched = cls(
            seed=seed,
            drop_prob=float(rng.uniform(0.05, cfg.drop_prob_max)),
            dup_prob=float(rng.uniform(0.0, cfg.dup_prob_max)),
        )
        if cfg.partition and num_servers >= 2:
            length = float(rng.uniform(0.15 * span, 0.4 * span))
            start = float(rng.uniform(t0, t1 - length))
            perm = rng.permutation(num_servers)
            cut = int(rng.integers(1, num_servers))
            sched.partitions.append(
                PartitionWindow.isolate(
                    start, start + length, perm[:cut].tolist(),
                    perm[cut:].tolist(),
                )
            )
        for _ in range(cfg.crash_restarts):
            victim = int(rng.integers(0, num_servers))
            down = float(rng.uniform(t0, t0 + 0.6 * span))
            up = min(down + float(rng.uniform(0.1 * span, 0.35 * span)), t1)
            sched.crashes.append((down, up, victim))
        # integrity chaos: all draws gated on their knobs, so legacy
        # configs consume the identical rng stream
        if cfg.corrupt_prob_max > 0:
            sched.corrupt_prob = float(rng.uniform(0.02, cfg.corrupt_prob_max))
        if cfg.codeword_rots:
            victims = {c[2] for c in sched.crashes}
            pool = [i for i in range(num_servers) if i not in victims]
            pool = pool or list(range(num_servers))
            picks = rng.choice(
                len(pool), size=min(cfg.codeword_rots, len(pool)), replace=False
            )
            for p in picks:
                sched.rots.append(
                    (float(rng.uniform(t0, t0 + 0.5 * span)), pool[int(p)])
                )
        for name, count in (
            ("disk_rots", cfg.checkpoint_rots),
            ("torn_writes", cfg.torn_writes),
        ):
            for _ in range(count):
                if not sched.crashes:
                    break  # nothing is ever down long enough to rot
                down, up, victim = sched.crashes[
                    int(rng.integers(0, len(sched.crashes)))
                ]
                at = float(rng.uniform(down, up)) if up > down else down
                getattr(sched, name).append((at, victim))
        return sched


@dataclass
class ChaosResult:
    """Verdict and observability counters for one chaos run."""

    seed: int
    ok: bool
    violations: list[str]
    converged: bool
    completed: int
    failed: int
    unsettled: int
    dropped: int
    duplicated: int
    severed: int
    retransmissions: int
    duplicates_suppressed: int
    server_restarts: int
    schedule: ChaosSchedule
    #: frames lost to detected in-flight corruption
    corrupted: int = 0
    #: aggregated scrub counters (empty dict when scrub is off)
    scrub: dict = field(default_factory=dict)

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        lines = [
            f"chaos seed {self.seed}: {verdict} "
            f"(drop={self.schedule.drop_prob:.2f}, "
            f"dup={self.schedule.dup_prob:.2f}, "
            f"partitions={len(self.schedule.partitions)}, "
            f"crash-restarts={len(self.schedule.crashes)})",
            f"  ops: {self.completed} completed, {self.failed} failed fast, "
            f"{self.unsettled} unsettled",
            f"  links: {self.dropped} dropped, {self.duplicated} duplicated, "
            f"{self.severed} severed by partition",
            f"  arq: {self.retransmissions} retransmissions, "
            f"{self.duplicates_suppressed} duplicates suppressed",
            f"  recovery: {self.server_restarts} server restart(s), "
            f"converged={self.converged}",
        ]
        if self.corrupted or self.scrub:
            lines.append(
                "  integrity: %d frame(s) corrupted in flight, "
                "%d quarantine(s) (%d by scrub round), %d healed, "
                "%d checkpoint report(s)"
                % (
                    self.corrupted,
                    self.scrub.get("integrity_quarantines", 0),
                    self.scrub.get("corrupt_detected", 0),
                    self.scrub.get("healed", 0),
                    self.scrub.get("checkpoint_reports", 0),
                )
            )
        lines.extend(f"  violation: {v}" for v in self.violations)
        return "\n".join(lines)


def run_chaos(
    code,
    seed: int,
    config: ChaosConfig | None = None,
    repair=None,
    scrub=None,
) -> ChaosResult:
    """Run one seeded chaos schedule against a CausalEC cluster.

    ``repair`` / ``scrub`` attach the anti-entropy and bit-rot overlays
    (:class:`~repro.protocol.repair_core.RepairConfig` /
    :class:`~repro.protocol.scrub_core.ScrubConfig`); ``scrub`` defaults
    from ``config.scrub_interval`` when set.  Schedules with checkpoint
    damage need ``repair`` -- a server restarting from a rotted checkpoint
    comes back empty and only anti-entropy can re-derive its state.
    """
    # imported here: repro.core imports repro.sim submodules, so importing
    # it at sim-package init time would be circular
    from ..consistency import (
        check_causal_consistency,
        check_returns_written_values,
    )
    from ..consistency.sessions import check_session_guarantees
    from ..core.client import RetryPolicy
    from ..core.cluster import CausalECCluster
    from ..core.server import ServerConfig
    from ..protocol.scrub_core import ScrubConfig
    from ..workloads import ClosedLoopDriver, WorkloadConfig
    from .faults import FaultPlan
    from .network import UniformLatency

    cfg = config or ChaosConfig()
    schedule = ChaosSchedule.generate(seed, code.N, cfg)
    if scrub is None and cfg.scrub_interval is not None:
        scrub = ScrubConfig(interval=cfg.scrub_interval)
    faults = LinkFaults(
        drop_prob=schedule.drop_prob,
        dup_prob=schedule.dup_prob,
        partitions=PartitionPlan(schedule.partitions),
        seed=(seed * 2 + 1),
        until=cfg.fault_end,
        corrupt_prob=schedule.corrupt_prob,
    )
    cluster = CausalECCluster(
        code,
        latency=UniformLatency(0.5, 6.0),
        seed=seed,
        config=ServerConfig(gc_interval=cfg.gc_interval),
        link_faults=faults,
        retry=RetryPolicy(
            timeout=cfg.retry_timeout,
            backoff=cfg.retry_backoff,
            max_retries=cfg.retry_max,
        ),
        durable=True,
        repair=repair,
        scrub=scrub,
    )
    for down, up, victim in schedule.crashes:
        cluster.scheduler.at(down, lambda v=victim: cluster.halt_server(v))
        cluster.scheduler.at(up, lambda v=victim: cluster.restart_server(v))
    if schedule.rots or schedule.disk_rots or schedule.torn_writes:
        rot_plan = FaultPlan(rot_seed=seed)
        rot_plan.rots = list(schedule.rots)
        rot_plan.disk_rots = list(schedule.disk_rots)
        rot_plan.torn_writes = list(schedule.torn_writes)
        rot_plan.apply(cluster)

    driver = ClosedLoopDriver(
        cluster,
        num_objects=cfg.num_objects,
        client_sites=cfg.client_sites,
        config=WorkloadConfig(
            ops_per_client=cfg.ops_per_client,
            read_ratio=cfg.read_ratio,
            think_time_mean=cfg.think_time_mean,
            seed=seed,
        ),
    )
    driver.start()

    # phase 1: ride out the fault window
    cluster.run(for_time=cfg.fault_end)
    # phase 2: clean network; run until the state stops changing
    converged = False
    last = None
    for _ in range(cfg.settle_slices):
        cluster.run(for_time=cfg.settle_slice_ms)
        fingerprint = (
            cluster.state_fingerprint(),
            len(cluster.history.unsettled()),
            cluster.transport.in_flight(exclude=(DigestMsg,))
            if cluster.transport
            else 0,
        )
        if fingerprint == last and _quiescent(cluster):
            converged = True
            break
        last = fingerprint

    violations: list[str] = []
    try:
        cluster.assert_no_reencoding_errors()
    except AssertionError as exc:
        violations.append(str(exc))
    zero = code.zero_value()
    violations += check_causal_consistency(
        cluster.history, zero, raise_on_violation=False
    )
    violations += check_returns_written_values(
        cluster.history, zero, raise_on_violation=False
    )
    if cfg.check_sessions:
        violations += check_session_guarantees(
            cluster.history, zero, raise_on_violation=False
        )
    if not converged:
        violations.append(
            "no convergence after faults ceased: "
            f"{len(cluster.history.unsettled())} unsettled op(s), "
            f"{cluster.total_transient_entries()} transient entrie(s), "
            f"{cluster.transport.in_flight(exclude=(DigestMsg,)) if cluster.transport else 0} "
            f"ARQ segment(s) in flight"
        )
    # every injected silent corruption must have been *detected* somewhere
    if schedule.rots:
        expected = len({s for _, s in schedule.rots})
        detected = sum(s.stats.integrity_quarantines for s in cluster.servers)
        if detected < expected:
            violations.append(
                f"silent corruption: {expected} codeword rot(s) injected "
                f"but only {detected} quarantine(s) recorded"
            )
    if schedule.disk_rots or schedule.torn_writes:
        expected = len(
            {s for _, s in schedule.disk_rots + schedule.torn_writes}
        )
        detected = cluster.durable.corrupt_detected()
        if detected < expected:
            violations.append(
                f"silent corruption: checkpoints of {expected} server(s) "
                f"damaged but only {detected} detection(s) recorded"
            )

    history = cluster.history
    return ChaosResult(
        seed=seed,
        ok=not violations,
        violations=violations,
        converged=converged,
        completed=len(history.completed()),
        failed=len(history.failed()),
        unsettled=len(history.unsettled()),
        dropped=faults.dropped,
        duplicated=faults.duplicated,
        severed=faults.severed,
        retransmissions=cluster.transport.retransmissions,
        duplicates_suppressed=cluster.transport.duplicates_suppressed,
        server_restarts=sum(s.stats.restarts for s in cluster.servers),
        schedule=schedule,
        corrupted=faults.corrupted,
        scrub=cluster.scrub_stats() if scrub is not None else {},
    )


def _quiescent(cluster) -> bool:
    """Convergence predicate: Thm. 4.5's transient state has vanished."""
    return (
        not cluster.history.unsettled()
        and cluster.total_transient_entries() == 0
        # perpetual digest gossip means an ack can legitimately be on the
        # wire at any instant; it carries no protocol state, so it does
        # not gate convergence
        and (
            cluster.transport is None
            or cluster.transport.in_flight(exclude=(DigestMsg,)) == 0
        )
        and not any(s.halted for s in cluster.servers)
    )


def run_chaos_suite(
    code,
    seeds=range(20),
    config: ChaosConfig | None = None,
    repair=None,
    scrub=None,
) -> list[ChaosResult]:
    """Run many seeded schedules; returns one :class:`ChaosResult` each."""
    return [
        run_chaos(code, seed, config, repair=repair, scrub=scrub)
        for seed in seeds
    ]
