"""A manually stepped network for adversarial schedule exploration.

:class:`ManualNetwork` implements the same interface protocol code uses
(``register`` / ``send`` / ``halt`` / ``stats``) but queues messages per
channel and delivers only when the *test* says so -- in any order across
channels, FIFO within each channel, exactly the adversary the asynchronous
model of Sec. 2.1 quantifies over.  Hypothesis drives the delivery order to
hunt for schedules that violate causal consistency.

Use with eagerly-triggered internal actions (``gc_interval=None``) so no
scheduler timers are needed.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

import numpy as np

from .liveness import LivenessRegistry
from .network import NetworkStats

__all__ = ["ManualNetwork"]


class ManualNetwork(LivenessRegistry):
    """FIFO per-channel queues with test-controlled delivery.

    Registration and halt/restart bookkeeping come from
    :class:`~repro.sim.liveness.LivenessRegistry`, shared with the
    discrete-event :class:`~repro.sim.network.Network`.
    """

    def __init__(self) -> None:
        super().__init__()
        self.stats = NetworkStats()
        self._queues: dict[tuple[int, int], deque] = {}
        self.monitor: Callable[[int, int, object], None] | None = None
        self.delivered = 0

    # -- Network interface -------------------------------------------------

    def send(self, src: int, dst: int, msg: object) -> None:
        if dst not in self._handlers:
            raise KeyError(f"unknown destination node {dst}")
        if src in self._halted:
            return  # checked before accounting, as in Network.send
        kind = getattr(msg, "kind", type(msg).__name__)
        self.stats.record(kind, float(getattr(msg, "size_bits", 0.0)))
        if self.monitor is not None:
            self.monitor(src, dst, msg)
        self._queues.setdefault((src, dst), deque()).append(msg)

    # -- adversary controls --------------------------------------------------

    def channels(self) -> list[tuple[int, int]]:
        """Non-empty channels, sorted for determinism."""
        return sorted(c for c, q in self._queues.items() if q)

    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def deliver(self, src: int, dst: int, count: int = 1) -> int:
        """Deliver up to ``count`` messages on one channel (FIFO)."""
        q = self._queues.get((src, dst))
        delivered = 0
        while q and delivered < count:
            msg = q.popleft()
            delivered += 1
            if dst not in self._halted:
                self.delivered += 1
                self._handlers[dst](src, msg)
        return delivered

    def deliver_one_of(self, index: int) -> bool:
        """Deliver the head of the ``index``-th non-empty channel (mod)."""
        chans = self.channels()
        if not chans:
            return False
        src, dst = chans[index % len(chans)]
        self.deliver(src, dst)
        return True

    def deliver_all(
        self,
        rng: np.random.Generator | None = None,
        max_messages: int = 1_000_000,
    ) -> int:
        """Drain every channel; random interleaving when ``rng`` given."""
        total = 0
        while total < max_messages:
            chans = self.channels()
            if not chans:
                return total
            if rng is None:
                src, dst = chans[0]
            else:
                src, dst = chans[int(rng.integers(0, len(chans)))]
            total += self.deliver(src, dst)
        raise RuntimeError("deliver_all exceeded max_messages; protocol loop?")

    def drop_channel(self, src: int, dst: int) -> int:
        """Discard everything queued on one channel (for halting tests)."""
        q = self._queues.get((src, dst))
        n = len(q) if q else 0
        if q:
            q.clear()
        return n
