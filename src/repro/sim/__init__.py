"""Asynchronous message-passing simulation substrate."""

from .network import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    LinkFaults,
    MatrixLatency,
    Network,
    NetworkStats,
    PartitionPlan,
    PartitionWindow,
    UniformLatency,
)
from .faults import DegradedLatency, FaultPlan, LatencySpike
from .manual import ManualNetwork
from .node import Node
from .scheduler import EventHandle, Scheduler
from .trace import MessageRecord, MessageTrace
from .transport import ReliableTransport, TransportConfig
from .chaos import ChaosConfig, ChaosResult, ChaosSchedule, run_chaos, run_chaos_suite

__all__ = [
    "Scheduler",
    "EventHandle",
    "Network",
    "NetworkStats",
    "ManualNetwork",
    "MessageTrace",
    "MessageRecord",
    "FaultPlan",
    "DegradedLatency",
    "LatencySpike",
    "LinkFaults",
    "PartitionPlan",
    "PartitionWindow",
    "ReliableTransport",
    "TransportConfig",
    "ChaosConfig",
    "ChaosSchedule",
    "ChaosResult",
    "run_chaos",
    "run_chaos_suite",
    "Node",
    "LatencyModel",
    "ConstantLatency",
    "MatrixLatency",
    "UniformLatency",
    "ExponentialLatency",
]
