"""Asynchronous message-passing simulation substrate."""

from .network import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    MatrixLatency,
    Network,
    NetworkStats,
    UniformLatency,
)
from .faults import DegradedLatency, FaultPlan, LatencySpike
from .manual import ManualNetwork
from .node import Node
from .scheduler import EventHandle, Scheduler
from .trace import MessageRecord, MessageTrace

__all__ = [
    "Scheduler",
    "EventHandle",
    "Network",
    "NetworkStats",
    "ManualNetwork",
    "MessageTrace",
    "MessageRecord",
    "FaultPlan",
    "DegradedLatency",
    "LatencySpike",
    "Node",
    "LatencyModel",
    "ConstantLatency",
    "MatrixLatency",
    "UniformLatency",
    "ExponentialLatency",
]
