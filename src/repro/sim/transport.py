"""ARQ sublayer: the paper's reliable FIFO channel, built from lossy links.

Sec. 2.1 of the paper *assumes* reliable asynchronous FIFO channels.  Real
systems implement that assumption; this module does too, with the classic
automatic-repeat-request (ARQ) recipe:

* **sequence numbers** per directed channel, stamped on every payload;
* **cumulative acknowledgements** sent by the receiver on every segment;
* **retransmission** of unacknowledged segments with exponential backoff
  (capped) plus multiplicative jitter, forever -- a message to a node that
  is merely slow, partitioned, or crashed-and-recovering is eventually
  delivered, which is exactly the reliability the protocol proofs need;
* **deduplication** of segments the link layer duplicated or that were
  retransmitted after their ack got lost;
* **FIFO reassembly** -- out-of-order arrivals (duplicates and
  retransmissions can reorder) are buffered and delivered in sequence
  order, restoring the per-channel FIFO property.

:class:`ReliableTransport` presents the same facade as
:class:`~repro.sim.network.Network` (``register`` / ``send`` / ``halt`` /
``restart`` / ``stats`` / ``monitor``), so protocol nodes plug into it
unchanged.  Its ``stats`` count *logical* protocol messages (one per
``send``); the wrapped network's stats count wire traffic (segments,
retransmissions, acks).

**Pass-through guarantee.**  In ``"auto"`` mode the ARQ machinery engages
only when the wrapped network carries a :class:`~repro.sim.network
.LinkFaults` model.  On a fault-free network every ``send`` is forwarded
verbatim -- no envelopes, no acks, no extra RNG draws -- so executions are
bit-for-bit identical to running without the transport, and the Thm.
4.1-4.5 benchmarks measure the paper's cost model, not ARQ overhead.

**Crash-recovery.**  Per-node channel state (send windows and reassembly
state) can be captured with :meth:`ReliableTransport.snapshot_node` and
reinstalled with :meth:`restore_node`; the durable-snapshot recovery path
in :mod:`repro.core` stores it alongside protocol state so a restarted
server resumes exactly-once, in-order delivery where its last snapshot
left off.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .network import NetworkStats
from .scheduler import EventHandle

__all__ = ["TransportConfig", "ReliableTransport", "Segment", "SegmentAck"]

SEG_HEADER_BITS = 32.0  # sequence number + framing
ACK_BITS = 48.0  # cumulative ack + framing


class Segment:
    """Wire envelope: one protocol message plus its channel sequence number."""

    kind = "arq-seg"
    __slots__ = ("seq", "payload", "size_bits")

    def __init__(self, seq: int, payload: object):
        self.seq = seq
        self.payload = payload
        self.size_bits = float(getattr(payload, "size_bits", 0.0)) + SEG_HEADER_BITS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Segment(seq={self.seq}, payload={self.payload!r})"


class SegmentAck:
    """Cumulative acknowledgement: every seq <= ``cum`` arrived in order."""

    kind = "arq-ack"
    __slots__ = ("cum", "size_bits")

    def __init__(self, cum: int):
        self.cum = cum
        self.size_bits = ACK_BITS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SegmentAck(cum={self.cum})"


@dataclass
class TransportConfig:
    """Tunables for the ARQ sublayer.

    ``mode`` selects when ARQ engages: ``"auto"`` (default) only when the
    wrapped network has a fault model, ``"always"`` unconditionally,
    ``"off"`` never (pure delegation).  ``initial_rto`` is the first
    retransmission timeout (simulated ms); each retransmission multiplies
    it by ``backoff`` up to ``max_rto``, and every wait is stretched by a
    uniform multiplicative jitter in ``[1, 1 + jitter]`` drawn from the
    transport's own RNG (``seed``) to break retransmission synchrony.
    """

    mode: str = "auto"
    initial_rto: float = 12.0
    backoff: float = 2.0
    max_rto: float = 250.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.mode not in ("auto", "always", "off"):
            raise ValueError(f"unknown transport mode {self.mode!r}")
        if self.initial_rto <= 0 or self.max_rto < self.initial_rto:
            raise ValueError("need 0 < initial_rto <= max_rto")
        if self.backoff < 1.0 or self.jitter < 0.0:
            raise ValueError("need backoff >= 1 and jitter >= 0")


@dataclass
class _Outstanding:
    """One unacknowledged segment at the sender."""

    payload: object
    rto: float
    timer: EventHandle | None = field(default=None, compare=False)
    transmissions: int = 0


@dataclass
class _SendState:
    """Sender half of one directed channel."""

    next_seq: int = 0
    unacked: dict[int, _Outstanding] = field(default_factory=dict)


@dataclass
class _RecvState:
    """Receiver half of one directed channel."""

    expected: int = 0  # next in-order sequence number
    buffer: dict[int, object] = field(default_factory=dict)  # out-of-order


class ReliableTransport:
    """Network facade adding ARQ reliability over an unreliable substrate."""

    def __init__(self, network, config: TransportConfig | None = None):
        self.network = network
        self.config = config or TransportConfig()
        self.scheduler = network.scheduler
        self.stats = NetworkStats()  # logical protocol messages
        self.monitor: Callable[[int, int, object], None] | None = None
        self.rng = np.random.default_rng(self.config.seed)
        self._handlers: dict[int, Callable[[int, object], None]] = {}
        self._send_states: dict[tuple[int, int], _SendState] = {}
        self._recv_states: dict[tuple[int, int], _RecvState] = {}
        # observability
        self.retransmissions = 0
        self.acks_sent = 0
        self.duplicates_suppressed = 0

    # ------------------------------------------------------------------
    # Network facade

    @property
    def active(self) -> bool:
        """Whether ARQ is engaged (vs. pure pass-through delegation)."""
        if self.config.mode == "always":
            return True
        if self.config.mode == "off":
            return False
        return getattr(self.network, "faults", None) is not None

    @property
    def faults(self):
        return getattr(self.network, "faults", None)

    def register(self, node_id: int, handler: Callable[[int, object], None]) -> None:
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already registered")
        self._handlers[node_id] = handler
        self.network.register(
            node_id, lambda src, msg, _dst=node_id: self._on_wire(_dst, src, msg)
        )

    def halt(self, node_id: int) -> None:
        self.network.halt(node_id)

    def restart(self, node_id: int) -> None:
        """Un-halt ``node_id`` and resume retransmitting its send windows.

        By default channel state survives the crash in place (as if kept by
        a session layer); durable-recovery callers overwrite it right after
        via :meth:`restore_node` with the snapshotted state.
        """
        self.network.restart(node_id)
        self._rearm_node(node_id)

    def is_halted(self, node_id: int) -> bool:
        return self.network.is_halted(node_id)

    def send(self, src: int, dst: int, msg: object) -> None:
        """Logically send ``msg``; ARQ guarantees eventual FIFO delivery."""
        if dst not in self._handlers:
            raise KeyError(f"unknown destination node {dst}")
        if self.network.is_halted(src):
            return  # a halted node takes no steps
        kind = getattr(msg, "kind", type(msg).__name__)
        self.stats.record(kind, float(getattr(msg, "size_bits", 0.0)))
        if self.monitor is not None:
            self.monitor(src, dst, msg)
        if not self.active:
            self.network.send(src, dst, msg)
            return
        st = self._send_states.setdefault((src, dst), _SendState())
        seq = st.next_seq
        st.next_seq += 1
        st.unacked[seq] = _Outstanding(payload=msg, rto=self.config.initial_rto)
        self._transmit(src, dst, seq)

    # ------------------------------------------------------------------
    # sender side

    def _transmit(self, src: int, dst: int, seq: int) -> None:
        st = self._send_states.get((src, dst))
        out = None if st is None else st.unacked.get(seq)
        if out is None or self.network.is_halted(src):
            return  # acked meanwhile, state replaced, or sender crashed
        if out.transmissions > 0:
            self.retransmissions += 1
        out.transmissions += 1
        self.network.send(src, dst, Segment(seq, out.payload))
        wait = out.rto * (1.0 + self.config.jitter * float(self.rng.random()))
        out.rto = min(out.rto * self.config.backoff, self.config.max_rto)
        out.timer = self.scheduler.schedule(
            wait, lambda: self._transmit(src, dst, seq)
        )

    def _on_ack(self, src: int, dst: int, ack: SegmentAck) -> None:
        """Handle an ack at ``src`` for the channel ``src -> dst``."""
        st = self._send_states.get((src, dst))
        if st is None:
            return
        for seq in [s for s in st.unacked if s <= ack.cum]:
            out = st.unacked.pop(seq)
            if out.timer is not None:
                out.timer.cancel()

    # ------------------------------------------------------------------
    # receiver side

    def _on_wire(self, dst: int, src: int, wire: object) -> None:
        if isinstance(wire, SegmentAck):
            # an ack received at dst concerns the channel dst -> src
            self._on_ack(dst, src, wire)
            return
        if not isinstance(wire, Segment):
            # pass-through traffic (ARQ inactive when it was sent)
            self._handlers[dst](src, wire)
            return
        rc = self._recv_states.setdefault((src, dst), _RecvState())
        if wire.seq < rc.expected or wire.seq in rc.buffer:
            self.duplicates_suppressed += 1
        else:
            rc.buffer[wire.seq] = wire.payload
            while rc.expected in rc.buffer:
                payload = rc.buffer.pop(rc.expected)
                rc.expected += 1
                self._handlers[dst](src, payload)
        # cumulative ack (also re-acks duplicates whose ack was lost)
        self.acks_sent += 1
        self.network.send(dst, src, SegmentAck(rc.expected - 1))

    # ------------------------------------------------------------------
    # crash-recovery support

    def snapshot_node(self, node_id: int) -> dict[str, Any]:
        """Deep-copied channel state owned by ``node_id``.

        Covers both halves: send windows of channels ``node_id -> *`` (so a
        recovered node keeps retransmitting messages it logically sent but
        whose delivery was never acknowledged) and reassembly state of
        channels ``* -> node_id`` (so retransmissions of already-delivered
        segments are deduplicated after recovery instead of being applied
        twice).
        """
        send = {
            chan: _SendState(
                next_seq=st.next_seq,
                unacked={
                    seq: _Outstanding(
                        payload=copy.deepcopy(out.payload),
                        rto=self.config.initial_rto,
                    )
                    for seq, out in st.unacked.items()
                },
            )
            for chan, st in self._send_states.items()
            if chan[0] == node_id
        }
        recv = {
            chan: _RecvState(
                expected=rc.expected, buffer=copy.deepcopy(rc.buffer)
            )
            for chan, rc in self._recv_states.items()
            if chan[1] == node_id
        }
        return {"send": send, "recv": recv}

    def restore_node(self, node_id: int, snap: dict[str, Any]) -> None:
        """Reinstall snapshotted channel state and re-arm retransmissions."""
        for chan in [c for c in self._send_states if c[0] == node_id]:
            for out in self._send_states[chan].unacked.values():
                if out.timer is not None:
                    out.timer.cancel()
            del self._send_states[chan]
        for chan in [c for c in self._recv_states if c[1] == node_id]:
            del self._recv_states[chan]
        for chan, st in snap["send"].items():
            self._send_states[chan] = _SendState(
                next_seq=st.next_seq,
                unacked={
                    seq: _Outstanding(
                        payload=copy.deepcopy(out.payload),
                        rto=self.config.initial_rto,
                    )
                    for seq, out in st.unacked.items()
                },
            )
        for chan, rc in snap["recv"].items():
            self._recv_states[chan] = _RecvState(
                expected=rc.expected, buffer=copy.deepcopy(rc.buffer)
            )
        self._rearm_node(node_id)

    def _rearm_node(self, node_id: int) -> None:
        """Restart retransmission timers for every unacked outgoing segment."""
        for (src, dst), st in self._send_states.items():
            if src != node_id:
                continue
            for seq, out in list(st.unacked.items()):
                if out.timer is not None:
                    out.timer.cancel()
                    out.timer = None
                self._transmit(src, dst, seq)

    # ------------------------------------------------------------------
    # introspection

    def in_flight(
        self, src: int | None = None, exclude: tuple = ()
    ) -> int:
        """Unacknowledged segments (optionally restricted to one sender).

        ``exclude`` skips segments whose payload is one of the given
        message types.  Convergence checks use it to ignore perpetual
        background gossip (e.g. repair digests fire every interval, so at
        any instant an ack may legitimately still be on the wire).
        """
        return sum(
            sum(
                1
                for out in st.unacked.values()
                if not exclude or not isinstance(out.payload, exclude)
            )
            for (s, _), st in self._send_states.items()
            if src is None or s == src
        )
