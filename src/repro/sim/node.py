"""Process base class for simulated nodes (servers and clients)."""

from __future__ import annotations

from .network import Network
from .scheduler import EventHandle, Scheduler

__all__ = ["Node"]


class Node:
    """A process attached to a scheduler and a network.

    Subclasses implement :meth:`on_message`.  A halted node (crash fault)
    takes no further steps: its handlers, timers, and sends become no-ops,
    matching the paper's halting failures ("a halted node does not take any
    further steps in the execution").
    """

    def __init__(self, node_id: int, scheduler: Scheduler, network: Network):
        self.node_id = node_id
        self.scheduler = scheduler
        self.network = network
        self.halted = False
        network.register(node_id, self._receive)

    # ------------------------------------------------------------------

    def send(self, dst: int, msg: object) -> None:
        if not self.halted:
            self.network.send(self.node_id, dst, msg)

    def set_timer(self, delay: float, fn) -> EventHandle:
        """Schedule a local step; suppressed if the node halts meanwhile."""

        def guarded() -> None:
            if not self.halted:
                fn()

        return self.scheduler.schedule(delay, guarded)

    def halt(self) -> None:
        """Crash this node."""
        self.halted = True
        self.network.halt(self.node_id)

    # ------------------------------------------------------------------

    def _receive(self, src: int, msg: object) -> None:
        if not self.halted:
            self.on_message(src, msg)

    def on_message(self, src: int, msg: object) -> None:  # pragma: no cover
        raise NotImplementedError
