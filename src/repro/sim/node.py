"""Process base class for simulated nodes (servers and clients)."""

from __future__ import annotations

from .network import Network
from .scheduler import EventHandle, Scheduler

__all__ = ["Node"]


class Node:
    """A process attached to a scheduler and a network.

    Subclasses implement :meth:`on_message`.  A halted node (crash fault)
    takes no further steps: its handlers, timers, and sends become no-ops,
    matching the paper's halting failures ("a halted node does not take any
    further steps in the execution").

    Beyond the paper's halt-forever faults, a node can be *restarted*
    (crash-recovery).  Each restart begins a new **incarnation**: timers
    armed by a previous incarnation never fire in a later one, modelling the
    loss of all volatile timer state across a crash.  Subclasses hook
    :meth:`on_restart` to reload durable state and re-arm their timers.
    """

    def __init__(self, node_id: int, scheduler: Scheduler, network: Network):
        self.node_id = node_id
        self.scheduler = scheduler
        self.network = network
        self.halted = False
        self.epoch = 0  # incarnation counter, bumped on every restart
        network.register(node_id, self._receive)

    # ------------------------------------------------------------------

    def send(self, dst: int, msg: object) -> None:
        if not self.halted:
            self.network.send(self.node_id, dst, msg)

    def set_timer(self, delay: float, fn) -> EventHandle:
        """Schedule a local step; suppressed if the node halts or restarts
        (new incarnation) before the timer fires."""
        epoch = self.epoch

        def guarded() -> None:
            if not self.halted and self.epoch == epoch:
                fn()

        return self.scheduler.schedule(delay, guarded)

    def halt(self) -> None:
        """Crash this node."""
        self.halted = True
        self.network.halt(self.node_id)

    def restart(self) -> None:
        """Recover a crashed node: a fresh incarnation rejoins the system."""
        if not self.halted:
            return
        self.halted = False
        self.epoch += 1
        self.network.restart(self.node_id)
        self.on_restart()

    def on_restart(self) -> None:
        """Hook run after a restart; default is a no-op (amnesia-free)."""

    # ------------------------------------------------------------------

    def _receive(self, src: int, msg: object) -> None:
        if not self.halted:
            self.on_message(src, msg)

    def on_message(self, src: int, msg: object) -> None:  # pragma: no cover
        raise NotImplementedError
