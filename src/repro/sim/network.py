"""Reliable asynchronous FIFO point-to-point channels (Sec. 2.1).

The paper assumes every pair of servers is connected by a reliable,
asynchronous, FIFO channel; clients exchange messages only with their home
server.  :class:`Network` provides exactly that:

* **Reliable** -- every sent message is eventually delivered (unless the
  destination has halted, in which case delivery is suppressed, modelling a
  crashed node that takes no further steps).
* **FIFO** -- per-channel delivery times are clamped to be non-decreasing,
  so jittery latency models cannot reorder a channel.
* **Asynchronous** -- per-message delay comes from a pluggable
  :class:`LatencyModel` (constant RTT/2 matrix, uniform, exponential, ...).

The network also keeps per-message-type counters (count and payload bits) so
benchmarks can report the communication costs of Sec. 4.2 without touching
protocol code.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from .scheduler import Scheduler

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "MatrixLatency",
    "UniformLatency",
    "ExponentialLatency",
    "Network",
    "NetworkStats",
]


class LatencyModel:
    """One-way message delay between two nodes."""

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Fixed one-way delay for every channel."""

    def __init__(self, delay: float = 1.0):
        self._delay = float(delay)

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return self._delay


class MatrixLatency(LatencyModel):
    """One-way delays from a round-trip-time matrix (Fig. 1 style).

    ``rtt[i][j]`` is the round-trip time between nodes i and j; one-way
    delay is rtt/2.  ``local`` is the delay for a node messaging itself or
    for any endpoint outside the matrix -- client node ids exceed the
    server count, and client<->home-server hops are modelled as local.
    """

    def __init__(self, rtt: np.ndarray, local: float = 0.1):
        self.rtt = np.asarray(rtt, dtype=float)
        self.local = float(local)

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        n = self.rtt.shape[0]
        if src == dst or src >= n or dst >= n:
            return self.local
        return float(self.rtt[src, dst]) / 2.0


class UniformLatency(LatencyModel):
    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self.low, self.high = float(low), float(high)

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))


class ExponentialLatency(LatencyModel):
    """Base delay plus exponential jitter (heavy-ish tail)."""

    def __init__(self, base: float, mean_jitter: float):
        self.base, self.mean_jitter = float(base), float(mean_jitter)

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return self.base + float(rng.exponential(self.mean_jitter))


@dataclass
class NetworkStats:
    """Per-message-type communication accounting."""

    messages: dict[str, int] = field(default_factory=dict)
    bits: dict[str, float] = field(default_factory=dict)

    def record(self, kind: str, size_bits: float) -> None:
        self.messages[kind] = self.messages.get(kind, 0) + 1
        self.bits[kind] = self.bits.get(kind, 0.0) + size_bits

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    @property
    def total_bits(self) -> float:
        return sum(self.bits.values())


class Network:
    """Reliable FIFO message transport among registered handlers."""

    def __init__(
        self,
        scheduler: Scheduler,
        latency: LatencyModel | None = None,
        rng: np.random.Generator | None = None,
        fifo_epsilon: float = 1e-9,
    ):
        self.scheduler = scheduler
        self.latency = latency or ConstantLatency(1.0)
        self.rng = rng or np.random.default_rng(0)
        self.fifo_epsilon = fifo_epsilon
        self.stats = NetworkStats()
        self._handlers: dict[int, Callable[[int, object], None]] = {}
        self._halted: set[int] = set()
        self._last_delivery: dict[tuple[int, int], float] = {}
        self.monitor: Callable[[int, int, object], None] | None = None

    def register(self, node_id: int, handler: Callable[[int, object], None]) -> None:
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already registered")
        self._handlers[node_id] = handler

    def halt(self, node_id: int) -> None:
        """Crash a node: it receives no further messages and sends none."""
        self._halted.add(node_id)

    def is_halted(self, node_id: int) -> bool:
        return node_id in self._halted

    def send(self, src: int, dst: int, msg: object) -> None:
        """Enqueue ``msg`` for FIFO delivery from ``src`` to ``dst``."""
        if dst not in self._handlers:
            raise KeyError(f"unknown destination node {dst}")
        if src in self._halted:
            return  # a halted node takes no steps
        kind = getattr(msg, "kind", type(msg).__name__)
        self.stats.record(kind, float(getattr(msg, "size_bits", 0.0)))
        if self.monitor is not None:
            self.monitor(src, dst, msg)
        delay = self.latency.delay(src, dst, self.rng)
        deliver_at = self.scheduler.now + delay
        chan = (src, dst)
        floor = self._last_delivery.get(chan)
        if floor is not None and deliver_at <= floor:
            deliver_at = floor + self.fifo_epsilon
        self._last_delivery[chan] = deliver_at
        self.scheduler.at(deliver_at, lambda: self._deliver(src, dst, msg))

    def _deliver(self, src: int, dst: int, msg: object) -> None:
        if dst in self._halted:
            return
        self._handlers[dst](src, msg)
