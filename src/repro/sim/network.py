"""Point-to-point channels (Sec. 2.1), optionally made unreliable.

The paper assumes every pair of servers is connected by a reliable,
asynchronous, FIFO channel; clients exchange messages only with their home
server.  By default :class:`Network` provides exactly that:

* **Reliable** -- every sent message is eventually delivered (unless the
  destination has halted, in which case delivery is suppressed, modelling a
  crashed node that takes no further steps).
* **FIFO** -- per-channel delivery times are clamped to be non-decreasing,
  so jittery latency models cannot reorder a channel.
* **Asynchronous** -- per-message delay comes from a pluggable
  :class:`LatencyModel` (constant RTT/2 matrix, uniform, exponential, ...).

Real deployments do not get that channel for free; they build it out of a
lossy substrate.  Attaching a :class:`LinkFaults` model turns the network
into that substrate: per-channel drop and duplication probabilities, timed
:class:`PartitionWindow` cuts between node groups, and crash-*restart*
(:meth:`Network.restart`) in addition to permanent halts.  The ARQ sublayer
in :mod:`repro.sim.transport` then re-establishes the paper's reliable FIFO
abstraction on top, so protocol code is unchanged either way.

Fault decisions draw from the fault model's *own* RNG: a network with
``faults=None`` consumes exactly the same random stream as before the fault
layer existed, keeping fault-free executions bit-for-bit reproducible.

The network also keeps per-message-type counters (count and payload bits) so
benchmarks can report the communication costs of Sec. 4.2 without touching
protocol code.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

import numpy as np

from .liveness import LivenessRegistry
from .scheduler import Scheduler

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "MatrixLatency",
    "UniformLatency",
    "ExponentialLatency",
    "Network",
    "NetworkStats",
    "LinkFaults",
    "PartitionPlan",
    "PartitionWindow",
]


class LatencyModel:
    """One-way message delay between two nodes."""

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Fixed one-way delay for every channel."""

    def __init__(self, delay: float = 1.0):
        self._delay = float(delay)

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return self._delay


class MatrixLatency(LatencyModel):
    """One-way delays from a round-trip-time matrix (Fig. 1 style).

    ``rtt[i][j]`` is the round-trip time between nodes i and j; one-way
    delay is rtt/2.  ``local`` is the delay for a node messaging itself or
    for any endpoint outside the matrix -- client node ids exceed the
    server count, and client<->home-server hops are modelled as local.
    """

    def __init__(self, rtt: np.ndarray, local: float = 0.1):
        self.rtt = np.asarray(rtt, dtype=float)
        self.local = float(local)

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        n = self.rtt.shape[0]
        if src == dst or src >= n or dst >= n:
            return self.local
        return float(self.rtt[src, dst]) / 2.0


class UniformLatency(LatencyModel):
    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self.low, self.high = float(low), float(high)

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))


class ExponentialLatency(LatencyModel):
    """Base delay plus exponential jitter (heavy-ish tail)."""

    def __init__(self, base: float, mean_jitter: float):
        self.base, self.mean_jitter = float(base), float(mean_jitter)

    def delay(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return self.base + float(rng.exponential(self.mean_jitter))


@dataclass
class NetworkStats:
    """Per-message-type communication accounting."""

    messages: dict[str, int] = field(default_factory=dict)
    bits: dict[str, float] = field(default_factory=dict)

    def record(self, kind: str, size_bits: float) -> None:
        self.messages[kind] = self.messages.get(kind, 0) + 1
        self.bits[kind] = self.bits.get(kind, 0.0) + size_bits

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    @property
    def total_bits(self) -> float:
        return sum(self.bits.values())


@dataclass(frozen=True)
class PartitionWindow:
    """One timed network cut: nodes in different groups cannot exchange
    messages while ``start <= now < end`` (start inclusive, end exclusive,
    matching :class:`~repro.sim.faults.LatencySpike`).

    Nodes that appear in no group are unaffected -- they keep talking to
    everyone.  Clients therefore ride out server partitions untouched unless
    a schedule explicitly lists their node ids.
    """

    start: float
    end: float
    groups: tuple[frozenset[int], ...]

    def __post_init__(self):
        if self.start < 0 or self.end < self.start:
            raise ValueError("need 0 <= start <= end")
        groups = tuple(frozenset(g) for g in self.groups)
        if len(groups) < 2:
            raise ValueError("a partition needs at least two groups")
        seen: set[int] = set()
        for g in groups:
            if not g:
                raise ValueError("partition groups must be non-empty")
            if seen & g:
                raise ValueError("partition groups must be disjoint")
            seen |= g
        object.__setattr__(self, "groups", groups)

    @classmethod
    def isolate(
        cls, start: float, end: float, nodes: Iterable[int], others: Iterable[int]
    ) -> "PartitionWindow":
        """Cut ``nodes`` off from ``others`` during the window."""
        return cls(start, end, (frozenset(nodes), frozenset(others)))

    def _side(self, node: int) -> int | None:
        for i, g in enumerate(self.groups):
            if node in g:
                return i
        return None

    def severs(self, now: float, src: int, dst: int) -> bool:
        if not self.start <= now < self.end:
            return False
        a, b = self._side(src), self._side(dst)
        return a is not None and b is not None and a != b


class PartitionPlan:
    """A schedule of :class:`PartitionWindow` cuts."""

    def __init__(self, windows: Iterable[PartitionWindow] | None = None):
        self.windows: list[PartitionWindow] = list(windows or [])

    def cut(
        self,
        start: float,
        end: float,
        *groups: Iterable[int],
    ) -> "PartitionPlan":
        self.windows.append(PartitionWindow(start, end, tuple(groups)))
        return self

    def severs(self, now: float, src: int, dst: int) -> bool:
        return any(w.severs(now, src, dst) for w in self.windows)

    def end_time(self) -> float:
        """When the last window heals (0.0 for an empty plan)."""
        return max((w.end for w in self.windows), default=0.0)


class LinkFaults:
    """Unreliable-link model: drops, duplicates, and partitions.

    * ``drop_prob`` / ``dup_prob`` -- default per-message probabilities of
      silently losing a message and of delivering an extra copy.
    * ``corrupt_prob`` -- per-message probability of in-flight bit rot.
      The live runtime's frame CRC turns corruption into a *detected*
      drop at the receiver (the frame is discarded, the ARQ retransmits),
      so the simulator models it as exactly that: the message is lost and
      counted in ``corrupted`` -- never delivered damaged.
    * ``per_channel`` -- ``(src, dst) -> (drop_prob, dup_prob)`` overrides
      for individual directed channels.
    * ``partitions`` -- a :class:`PartitionPlan`; severed messages are
      dropped at send time (messages already in flight still land, like
      packets that left the interface before the cable was pulled).
    * ``until`` -- when set, probabilistic drops/dups cease at this time
      (partition windows carry their own end times); lets chaos schedules
      guarantee a fault-free convergence phase.

    Decisions draw from a dedicated RNG (``seed``), never from the
    network's latency RNG, so enabling faults does not perturb the latency
    stream and a fault-free network is bit-for-bit identical to the
    pre-fault-layer implementation.  Duplicate copies bypass the FIFO
    clamp: duplication may reorder a channel, which is exactly the hazard
    the ARQ sublayer has to mask.
    """

    def __init__(
        self,
        drop_prob: float = 0.0,
        dup_prob: float = 0.0,
        partitions: PartitionPlan | None = None,
        per_channel: dict[tuple[int, int], tuple[float, float]] | None = None,
        seed: int = 0,
        until: float | None = None,
        corrupt_prob: float = 0.0,
    ):
        for name, p in (
            ("drop_prob", drop_prob),
            ("dup_prob", dup_prob),
            ("corrupt_prob", corrupt_prob),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        for chan, (dp, up) in (per_channel or {}).items():
            if not (0.0 <= dp <= 1.0 and 0.0 <= up <= 1.0):
                raise ValueError(f"per_channel[{chan}] must hold probabilities")
        self.drop_prob = float(drop_prob)
        self.dup_prob = float(dup_prob)
        self.corrupt_prob = float(corrupt_prob)
        self.partitions = partitions or PartitionPlan()
        self.per_channel = dict(per_channel or {})
        self.seed = seed  # kept so other runtimes can derive seeded decisions
        self.rng = np.random.default_rng(seed)
        self.until = until
        self.enabled = True
        # observability: how much damage the model actually did
        self.dropped = 0
        self.duplicated = 0
        self.severed = 0
        self.corrupted = 0
        self.dropped_by_kind: dict[str, int] = {}

    # ------------------------------------------------------------------

    def disable(self) -> None:
        """Cease all fault injection (partitions included) immediately."""
        self.enabled = False

    def _probs(self, src: int, dst: int) -> tuple[float, float]:
        return self.per_channel.get((src, dst), (self.drop_prob, self.dup_prob))

    def _probabilistic(self, now: float) -> bool:
        return self.enabled and (self.until is None or now < self.until)

    def severs(self, now: float, src: int, dst: int) -> bool:
        if not self.enabled:
            return False
        if self.partitions.severs(now, src, dst):
            self.severed += 1
            return True
        return False

    def drops(self, now: float, src: int, dst: int, kind: str) -> bool:
        if not self._probabilistic(now):
            return False
        p = self._probs(src, dst)[0]
        if p > 0.0 and self.rng.random() < p:
            self.dropped += 1
            self.dropped_by_kind[kind] = self.dropped_by_kind.get(kind, 0) + 1
            return True
        return False

    def corrupts(self, now: float, src: int, dst: int, kind: str) -> bool:
        """In-flight bit rot: the receiver's CRC detects it and the frame
        is discarded, so a corrupted message is a (counted) drop."""
        if not self._probabilistic(now):
            return False
        if self.corrupt_prob > 0.0 and self.rng.random() < self.corrupt_prob:
            self.corrupted += 1
            self.dropped_by_kind[kind] = self.dropped_by_kind.get(kind, 0) + 1
            return True
        return False

    def duplicates(self, now: float, src: int, dst: int) -> bool:
        if not self._probabilistic(now):
            return False
        p = self._probs(src, dst)[1]
        if p > 0.0 and self.rng.random() < p:
            self.duplicated += 1
            return True
        return False


class Network(LivenessRegistry):
    """FIFO message transport among registered handlers.

    Reliable by default; attach a :class:`LinkFaults` to model a lossy
    substrate (see the module docstring).  Handler registration and
    halt/restart bookkeeping come from :class:`LivenessRegistry`, shared
    with :class:`~repro.sim.manual.ManualNetwork` so crash semantics
    cannot drift between the two network implementations.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        latency: LatencyModel | None = None,
        rng: np.random.Generator | None = None,
        fifo_epsilon: float = 1e-9,
        faults: LinkFaults | None = None,
    ):
        super().__init__()
        self.scheduler = scheduler
        self.latency = latency or ConstantLatency(1.0)
        self.rng = rng or np.random.default_rng(0)
        self.fifo_epsilon = fifo_epsilon
        self.faults = faults
        self.stats = NetworkStats()
        self._last_delivery: dict[tuple[int, int], float] = {}
        self.monitor: Callable[[int, int, object], None] | None = None

    def send(self, src: int, dst: int, msg: object) -> None:
        """Enqueue ``msg`` for FIFO delivery from ``src`` to ``dst``."""
        if dst not in self._handlers:
            raise KeyError(f"unknown destination node {dst}")
        if src in self._halted:
            # a halted node takes no steps: checked before any accounting so
            # crashed senders cannot inflate the Sec. 4.2 communication costs
            return
        kind = getattr(msg, "kind", type(msg).__name__)
        self.stats.record(kind, float(getattr(msg, "size_bits", 0.0)))
        if self.monitor is not None:
            self.monitor(src, dst, msg)
        f = self.faults
        if f is not None:
            now = self.scheduler.now
            if (
                f.severs(now, src, dst)
                or f.drops(now, src, dst, kind)
                or f.corrupts(now, src, dst, kind)
            ):
                return
        delay = self.latency.delay(src, dst, self.rng)
        deliver_at = self.scheduler.now + delay
        chan = (src, dst)
        floor = self._last_delivery.get(chan)
        if floor is not None and deliver_at <= floor:
            deliver_at = floor + self.fifo_epsilon
        self._last_delivery[chan] = deliver_at
        self.scheduler.at(deliver_at, lambda: self._deliver(src, dst, msg))
        if f is not None and f.duplicates(self.scheduler.now, src, dst):
            # the extra copy draws its delay from the fault RNG and skips
            # the FIFO clamp: duplicates may reorder the channel
            extra = self.latency.delay(src, dst, f.rng)
            self.scheduler.at(
                self.scheduler.now + extra, lambda: self._deliver(src, dst, msg)
            )

    def _deliver(self, src: int, dst: int, msg: object) -> None:
        if dst in self._halted:
            return
        self._handlers[dst](src, msg)
