"""Bounded model checking: exhaustive exploration of delivery schedules.

Random and hypothesis-driven schedules sample the asynchrony of Sec. 2.1;
this module *enumerates* it.  Starting from a state where a scripted set of
client operations has been issued (writes complete locally), the explorer
performs a DFS over every choice of "which channel delivers its next
message", memoizing canonical state fingerprints.  For small scenarios this
covers every execution the model permits, turning the paper's for-all-
executions theorems into machine-checked facts (within the bound):

* user-supplied invariants hold in **every reachable state**;
* every execution quiesces, and all quiescent states agree on the
  *semantic* state (vector clocks, codeword symbols and tags, history
  lists) -- confluence, the operational core of Theorems 4.4/4.5.

Servers must run with eager internal actions (``gc_interval=None``) so the
only nondeterminism is message delivery.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.server import CausalECServer, ServerConfig
from ..ec.code import LinearCode
from ..sim.manual import ManualNetwork
from ..sim.scheduler import Scheduler

__all__ = ["ExplorationResult", "StateExplorer", "explore_schedules"]

# LinearCode and Field instances are immutable (their caches are
# semantically transparent); sharing them across forks keeps deepcopy cheap.
LinearCode.__deepcopy__ = lambda self, memo: self  # type: ignore[attr-defined]


@dataclass
class _State:
    servers: list[CausalECServer]
    net: ManualNetwork


def _fork_state(state: _State) -> _State:
    """Fast structural copy of a state.

    Deep-copies exactly the containers the protocol mutates; everything
    immutable-by-convention is shared: tags, vector clocks, numpy value
    arrays (the protocol always *replaces* arrays, never mutates them in
    place), the code, the config, and queued messages.  Roughly 20x faster
    than ``copy.deepcopy`` on a 5-server state, which is what makes
    exhaustive exploration of the paper's (5,3) example feasible.
    """
    import dataclasses

    from ..core.state import Codeword, DeletionList, HistoryList, InQueue, ReadList

    net = ManualNetwork()
    net.stats = copy.copy(state.net.stats)
    net._halted = set(state.net._halted)
    net._queues = {chan: copy.copy(q) for chan, q in state.net._queues.items()}

    new_servers: list[CausalECServer] = []
    for s in state.servers:
        ns = CausalECServer.__new__(CausalECServer)
        # shared immutables
        ns.node_id = s.node_id
        ns.code = s.code
        ns.config = s.config
        ns.scheduler = s.scheduler
        ns.objects = s.objects
        ns._others = s._others
        ns._zero = s._zero
        ns.clock_dim = s.clock_dim
        # copied mutables
        ns.halted = s.halted
        ns.epoch = s.epoch
        ns.cfg_epoch = s.cfg_epoch
        ns.cfg_retired = s.cfg_retired
        ns.stats = dataclasses.replace(s.stats)
        ns.vc = s.vc
        ns.inqueue = InQueue()
        ns.inqueue._entries = list(s.inqueue._entries)
        ns.L = {}
        for x, hist in s.L.items():
            nh = HistoryList(s._zero)
            nh._items = dict(hist._items)
            ns.L[x] = nh
        ns.DelL = {}
        for x, dl in s.DelL.items():
            nd = DeletionList()
            nd._tags = {node: set(tags) for node, tags in dl._tags.items()}
            nd._max = dict(dl._max)
            ns.DelL[x] = nd
        ns.readl = ReadList()
        for entry in s.readl.entries():
            ns.readl.add(
                dataclasses.replace(entry, symbols=dict(entry.symbols))
            )
        ns.tmax = dict(s.tmax)
        ns.M = Codeword(value=s.M.value, tagvec=dict(s.M.tagvec))
        ns._opid_seq = s._opid_seq
        ns._del_sent_storing = dict(s._del_sent_storing)
        ns._del_sent_all = dict(s._del_sent_all)
        ns._read_timeouts = dict(s._read_timeouts)
        ns._client_sessions = dict(s._client_sessions)
        ns._parked = list(s._parked)
        ns.durable = None  # model checking never attaches durability
        ns._transport = None
        ns.visibility_log = list(s.visibility_log)
        ns.network = net
        net.register(ns.node_id, ns._receive)
        new_servers.append(ns)
    # synthetic client sinks
    for node_id in state.net._handlers:
        if node_id not in net._handlers:
            net.register(node_id, lambda src, msg: None)
    return _State(new_servers, net)


@dataclass
class ExplorationResult:
    states_visited: int
    executions: int  # distinct quiescent states reached (pre-dedup paths)
    truncated: bool  # hit the max_states bound
    final_semantic_states: list[tuple]
    violations: list[str] = field(default_factory=list)
    #: states with no path to a quiescent state (livelock witnesses).
    #: Only populated when exploring with check_liveness=True and the
    #: space was not truncated; must be 0 (Theorem 4.5's "eventually").
    livelocked_states: int = 0

    @property
    def confluent(self) -> bool:
        return len(set(self.final_semantic_states)) <= 1

    @property
    def ok(self) -> bool:
        return (
            not self.violations
            and self.confluent
            and self.livelocked_states == 0
        )


def _value_key(arr) -> tuple:
    return tuple(np.asarray(arr).ravel().tolist())


def _tag_key(tag) -> tuple:
    return (tag.ts.components, tag.client_id)


def _server_fingerprint(s: CausalECServer, semantic: bool) -> tuple:
    """Canonical digest of one server's state.

    The full (non-semantic) form must cover *every* field that can
    influence future behaviour -- a collision between genuinely different
    states would unsoundly prune reachable executions.
    """
    code = s.code
    parts = [
        s.vc.components,
        tuple(_tag_key(s.M.tagvec[x]) for x in range(code.K)),
        _value_key(s.M.value),
        tuple(
            tuple(sorted((_tag_key(t), _value_key(v)) for t, v in s.L[x].items()))
            for x in range(code.K)
        ),
    ]
    if not semantic:
        parts.append((s.cfg_epoch, s.cfg_retired))
        parts.append(tuple(_tag_key(s.tmax[x]) for x in range(code.K)))
        parts.append(
            tuple(
                tuple(
                    sorted(
                        (node, tuple(sorted(_tag_key(t) for t in tags)))
                        for node, tags in s.DelL[x]._tags.items()
                    )
                )
                for x in range(code.K)
            )
        )
        parts.append(
            tuple(_tag_key(s._del_sent_storing[x]) for x in range(code.K))
        )
        parts.append(
            tuple(_tag_key(s._del_sent_all[x]) for x in range(code.K))
        )
        parts.append(
            tuple(
                sorted(
                    (e.sender, e.obj, _tag_key(e.tag), _value_key(e.value))
                    for e in s.inqueue._entries
                )
            )
        )
        parts.append(
            tuple(
                sorted(
                    (
                        e.client_id,
                        repr(e.opid),
                        e.obj,
                        tuple(sorted((x, _tag_key(t)) for x, t in e.tagvec.items())),
                        tuple(
                            sorted(
                                (i, _value_key(w)) for i, w in e.symbols.items()
                            )
                        ),
                    )
                    for e in s.readl.entries()
                )
            )
        )
        parts.append(s._opid_seq)
    return tuple(parts)


def _message_key(msg) -> tuple:
    kind = getattr(msg, "kind", type(msg).__name__)
    bits = [kind]
    for attr in ("obj", "opid", "client_id"):
        if hasattr(msg, attr):
            bits.append(repr(getattr(msg, attr)))
    if hasattr(msg, "tag"):
        bits.append(_tag_key(msg.tag))
    if hasattr(msg, "value"):
        bits.append(_value_key(msg.value))
    if hasattr(msg, "symbol"):
        bits.append(_value_key(msg.symbol))
    for attr in ("wanted_tagvec", "requested_tags", "tagvec"):
        if hasattr(msg, attr):
            d = getattr(msg, attr)
            bits.append(tuple(sorted((k, _tag_key(t)) for k, t in d.items())))
    return tuple(bits)


def _state_fingerprint(state: _State) -> tuple:
    servers = tuple(_server_fingerprint(s, semantic=False) for s in state.servers)
    channels = tuple(
        (chan, tuple(_message_key(m) for m in q))
        for chan, q in sorted(state.net._queues.items())
        if q
    )
    return (servers, channels)


def _semantic_fingerprint(state: _State) -> tuple:
    return tuple(_server_fingerprint(s, semantic=True) for s in state.servers)


class StateExplorer:
    """DFS over all FIFO-respecting delivery orders of a scripted scenario."""

    def __init__(
        self,
        code: LinearCode,
        max_states: int = 50_000,
        invariant: Callable[[list[CausalECServer]], None] | None = None,
        check_liveness: bool = False,
    ):
        self.code = code
        self.max_states = max_states
        self.invariant = invariant
        self.check_liveness = check_liveness

    def initial_state(self) -> _State:
        scheduler = Scheduler()
        net = ManualNetwork()
        servers = [
            CausalECServer(
                i, scheduler, net, self.code, ServerConfig(gc_interval=None)
            )
            for i in range(self.code.N)
        ]
        # sink handlers for the synthetic writer clients (one per server)
        for i in range(self.code.N):
            net.register(1000 + i, lambda src, msg: None)
        return _State(servers, net)

    def issue_write(self, state: _State, server: int, obj: int, value) -> None:
        """Issue a write directly at a server (local per Property I)."""
        from ..core.messages import WriteRequest

        msg = WriteRequest(("x", server, obj, _value_key(value)), obj,
                           np.asarray(value))
        msg.size_bits = 0.0
        # the client id doubles as the writer identity in the tag
        state.servers[server].on_message(1000 + server, msg)
        self._drain_client_channels(state)

    def issue_read(self, state: _State, server: int, obj: int, rid=0) -> None:
        """Issue a read at a server; its val_inq traffic joins the explored
        message space, so read termination (Theorem 4.3) is itself model
        checked: with all servers alive, no terminal state may retain a
        pending external read."""
        from ..core.messages import ReadRequest

        msg = ReadRequest(("read", server, obj, rid), obj)
        msg.size_bits = 0.0
        state.servers[server].on_message(1000 + server, msg)
        self._drain_client_channels(state)

    def _drain_client_channels(self, state: _State) -> None:
        for (src, dst), q in list(state.net._queues.items()):
            if dst >= self.code.N and q:
                q.clear()  # acks/read-returns to synthetic clients

    def explore(self, state: _State) -> ExplorationResult:
        visited: set[tuple] = set()
        finals: list[tuple] = []
        violations: list[str] = []
        # edges recorded for the liveness (reach-quiescence) analysis
        edges: dict[tuple, list[tuple]] = {}
        terminal_fps: set[tuple] = set()
        truncated = False
        executions = 0
        stack = [state]
        while stack:
            if len(visited) >= self.max_states:
                truncated = True
                break
            cur = stack.pop()
            fp = _state_fingerprint(cur)
            if fp in visited:
                continue
            visited.add(fp)
            if self.invariant is not None:
                try:
                    self.invariant(cur.servers)
                except AssertionError as exc:  # pragma: no cover - on bugs
                    violations.append(str(exc))
                    continue
            for s in cur.servers:
                if s.stats.error1_events or s.stats.error2_events:
                    violations.append(
                        f"re-encoding error at server {s.node_id}"
                    )
            chans = [
                c for c in cur.net.channels()
                if c[0] < self.code.N and c[1] < self.code.N
            ]
            if not chans:
                executions += 1
                finals.append(_semantic_fingerprint(cur))
                terminal_fps.add(fp)
                # Theorem 4.3 (all servers alive): quiescence implies no
                # pending reads -- external or internal
                for s in cur.servers:
                    if len(s.readl):
                        violations.append(
                            f"terminal state retains pending reads at "
                            f"server {s.node_id} (read liveness)"
                        )
                continue
            successors = []
            for chan in chans:
                nxt = _fork_state(cur)
                nxt.net.deliver(*chan)
                self._drain_client_channels(nxt)
                if self.check_liveness:
                    successors.append(_state_fingerprint(nxt))
                stack.append(nxt)
            if self.check_liveness:
                edges[fp] = successors
        livelocked = 0
        if self.check_liveness and not truncated:
            livelocked = self._count_livelocked(edges, terminal_fps, visited)
        return ExplorationResult(
            states_visited=len(visited),
            executions=executions,
            truncated=truncated,
            final_semantic_states=finals,
            violations=violations,
            livelocked_states=livelocked,
        )

    @staticmethod
    def _count_livelocked(
        edges: dict[tuple, list[tuple]],
        terminals: set[tuple],
        visited: set[tuple],
    ) -> int:
        """States that cannot reach any quiescent state (reverse BFS)."""
        reverse: dict[tuple, list[tuple]] = {}
        for src, dsts in edges.items():
            for dst in dsts:
                reverse.setdefault(dst, []).append(src)
        reachable = set(terminals)
        frontier = list(terminals)
        while frontier:
            cur = frontier.pop()
            for prev in reverse.get(cur, ()):
                if prev not in reachable:
                    reachable.add(prev)
                    frontier.append(prev)
        return len(visited - reachable)


def explore_schedules(
    code: LinearCode,
    writes: list[tuple[int, int, object]],
    max_states: int = 50_000,
    invariant: Callable | None = None,
    check_liveness: bool = False,
) -> ExplorationResult:
    """Explore every delivery schedule after issuing ``writes``.

    ``writes`` is a list of (server, obj, value) issued up-front in order
    (each completes locally before the next -- Property I).
    """
    explorer = StateExplorer(
        code, max_states=max_states, invariant=invariant,
        check_liveness=check_liveness,
    )
    state = explorer.initial_state()
    for server, obj, value in writes:
        explorer.issue_write(state, server, obj, value)
    return explorer.explore(state)
