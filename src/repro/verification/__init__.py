"""Bounded model checking of CausalEC executions."""

from .explore import ExplorationResult, StateExplorer, explore_schedules

__all__ = ["ExplorationResult", "StateExplorer", "explore_schedules"]
