"""Adoption-grade facade: string keys, bytes values, sessions, grouping."""

from .codec import CodecError, ValueCodec
from .grouped import GroupedCausalKVStore, GroupedSession, hybrid_store
from .store import CausalKVStore, Session

__all__ = [
    "CausalKVStore",
    "Session",
    "GroupedCausalKVStore",
    "GroupedSession",
    "hybrid_store",
    "ValueCodec",
    "CodecError",
]
