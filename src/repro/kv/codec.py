"""Codec between byte strings and fixed-length field-element vectors.

CausalEC stores values from a vector space V = F^len over a finite field
(Sec. 2.1).  Real applications hold byte strings, so the KV facade encodes
``bytes`` into V and back:

* over a field with order >= 257, each byte maps to one field element and a
  2-element big-endian header carries the byte length (so values shorter
  than the capacity round-trip exactly);
* over GF(256) the length header would not fit a single element, so the
  header uses two base-256 digits, identically.

``capacity(value_len)`` bytes fit into a length-``value_len`` vector.
"""

from __future__ import annotations

import numpy as np

from ..ec.field import Field

__all__ = ["ValueCodec", "CodecError"]

_HEADER = 2  # elements reserved for the byte-length header


class CodecError(ValueError):
    """Raised for values that cannot be encoded/decoded."""


class ValueCodec:
    """Encode/decode byte strings into V = F^value_len."""

    def __init__(self, field: Field, value_len: int):
        if field.order < 256:
            raise CodecError(
                "codec requires a field with at least 256 elements per byte"
            )
        if value_len <= _HEADER:
            raise CodecError(f"value_len must exceed {_HEADER}")
        self.field = field
        self.value_len = value_len

    @property
    def capacity(self) -> int:
        """Maximum number of payload bytes per value."""
        return min(self.value_len - _HEADER, 256 * 256 - 1)

    def encode(self, data: bytes) -> np.ndarray:
        if len(data) > self.capacity:
            raise CodecError(
                f"value of {len(data)} bytes exceeds capacity {self.capacity}"
            )
        out = self.field.zeros(self.value_len)
        out[0] = len(data) // 256
        out[1] = len(data) % 256
        if data:
            out[_HEADER : _HEADER + len(data)] = np.frombuffer(
                data, dtype=np.uint8
            )
        return out

    def decode(self, value: np.ndarray) -> bytes:
        try:
            value = np.asarray(value)
        except (ValueError, TypeError) as exc:
            raise CodecError(f"undecodable value: {exc}") from exc
        if value.shape != (self.value_len,):
            raise CodecError(
                f"expected a length-{self.value_len} vector, got {value.shape}"
            )
        if not np.issubdtype(value.dtype, np.number):
            raise CodecError(f"non-numeric value dtype {value.dtype}")
        length = int(value[0]) * 256 + int(value[1])
        if not 0 <= length <= self.capacity:
            raise CodecError(f"corrupt header: length {length}")
        payload = value[_HEADER : _HEADER + length]
        if payload.size and (
            int(payload.min()) < 0 or int(payload.max()) > 255
        ):
            raise CodecError("corrupt payload: element exceeds byte range")
        return bytes(payload.astype(np.uint8))
