"""A string-keyed, bytes-valued causal KV store on top of CausalEC.

:class:`CausalKVStore` is the adoption-grade facade: named keys, byte-string
values, synchronous ``put``/``get`` from per-site sessions, all running on a
CausalEC cluster with any linear code.  Keys are mapped onto the code's K
objects at construction; values are encoded into the code's value space by
:class:`~repro.kv.codec.ValueCodec`.

Example::

    from repro.kv import CausalKVStore

    store = CausalKVStore(["users", "orders", "carts"])   # RS(5,3) default
    s0 = store.session(site=0)
    s0.put("users", b"alice,bob")
    s4 = store.session(site=4)
    assert s4.get("users") == b"alice,bob"
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.cluster import CausalECCluster
from ..core.server import ServerConfig
from ..ec.code import LinearCode
from ..ec.codes import reed_solomon_code
from ..ec.field import PrimeField
from ..sim.network import LatencyModel
from .codec import ValueCodec

__all__ = ["CausalKVStore", "Session"]


class Session:
    """A client session pinned to one site (server); one op at a time."""

    def __init__(self, store: "CausalKVStore", site: int):
        self._store = store
        self._client = store.cluster.add_client(server=site)
        self.site = site

    def put(self, key: str, value: bytes) -> None:
        """Write ``value`` under ``key``; returns when the server acks
        (always one local round trip -- Property I)."""
        obj = self._store.object_of(key)
        encoded = self._store.codec.encode(value)
        op = self._store.cluster.execute(self._client.write(obj, encoded))
        if not op.done:
            raise RuntimeError("write did not complete (simulation stalled)")

    def get(self, key: str, max_events: int = 1_000_000) -> bytes:
        """Read ``key``'s causally consistent value at this session's site."""
        obj = self._store.object_of(key)
        op = self._store.cluster.execute(
            self._client.read(obj), max_events=max_events
        )
        if not op.done:
            raise TimeoutError(
                f"read of {key!r} did not terminate -- is a recovery set "
                f"for it still alive? (Theorem 4.3)"
            )
        return self._store.codec.decode(op.value)


class CausalKVStore:
    """String-keyed causally consistent store over an erasure code."""

    def __init__(
        self,
        keys: Sequence[str],
        code: LinearCode | None = None,
        num_servers: int = 5,
        value_capacity: int = 64,
        latency: LatencyModel | None = None,
        config: ServerConfig | None = None,
        seed: int = 0,
    ):
        keys = list(keys)
        if not keys:
            raise ValueError("need at least one key")
        if len(set(keys)) != len(keys):
            raise ValueError("keys must be distinct")
        if code is None:
            code = reed_solomon_code(
                PrimeField(257),
                num_servers,
                len(keys),
                value_len=value_capacity + 2,
            )
        if code.K != len(keys):
            raise ValueError(
                f"code stores {code.K} objects but {len(keys)} keys given"
            )
        self.code = code
        self.codec = ValueCodec(code.field, code.value_len)
        self._objects = {key: i for i, key in enumerate(keys)}
        self.cluster = CausalECCluster(
            code,
            latency=latency,
            seed=seed,
            config=config or ServerConfig(gc_interval=50.0),
        )

    # ------------------------------------------------------------------

    @property
    def keys(self) -> list[str]:
        return list(self._objects)

    def object_of(self, key: str) -> int:
        try:
            return self._objects[key]
        except KeyError:
            raise KeyError(f"unknown key {key!r}; keys are fixed at creation")

    def session(self, site: int = 0) -> Session:
        """Open a client session at ``site`` (a member of C_site)."""
        return Session(self, site)

    def crash_site(self, site: int) -> None:
        """Crash a server; reads survive while recovery sets do."""
        self.cluster.halt_server(site)

    def settle(self, for_time: float = 5_000.0) -> None:
        """Let propagation, re-encoding, and garbage collection run."""
        self.cluster.run(for_time=for_time)
