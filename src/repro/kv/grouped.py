"""A grouped store: many keys over per-group erasure codes (Sec. 4.2).

CausalEC's tag vectors and deletion lists scale with K, the number of
objects a single code spans, so the paper's cost analysis assumes "objects
are grouped into K/k groups of k objects each and an (N*alpha, k) code ...
is used for each group".  :class:`GroupedCausalKVStore` realises exactly
that: keys are partitioned into groups of at most ``group_size``, each group
runs its own CausalEC instance (its own code and protocol state), and all
groups share one simulated clock so cross-group time is coherent.

Groups are fully independent in the paper too -- causal consistency is
still provided *per session* here because a session's operations on every
group run through the same per-site servers and the per-group certificates
compose (each group is itself causally consistent, and sessions are
single-threaded).  Cross-group causal ordering guarantees beyond this are
out of scope, exactly as in the paper's grouping argument.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..core.cluster import CausalECCluster
from ..core.server import ServerConfig
from ..ec.code import LinearCode
from ..ec.codes import reed_solomon_code
from ..ec.field import PrimeField
from ..sharding.router import ShardRouter
from ..sim.network import LatencyModel
from ..sim.scheduler import Scheduler
from .codec import ValueCodec

__all__ = ["GroupedCausalKVStore", "GroupedSession", "hybrid_store"]


class GroupedSession:
    """A site-pinned session spanning all groups (one client per group)."""

    def __init__(self, store: "GroupedCausalKVStore", site: int):
        self._store = store
        self.site = site
        self._clients: dict[int, object] = {}

    def _client(self, group: int):
        if group not in self._clients:
            self._clients[group] = self._store.clusters[group].add_client(
                server=self.site
            )
        return self._clients[group]

    def put(self, key: str, value: bytes) -> None:
        group, obj = self._store.locate(key)
        cluster = self._store.clusters[group]
        encoded = self._store.codecs[group].encode(value)
        op = cluster.execute(self._client(group).write(obj, encoded))
        if not op.done:
            raise RuntimeError("write did not complete")

    def get(self, key: str, max_events: int = 1_000_000) -> bytes:
        group, obj = self._store.locate(key)
        cluster = self._store.clusters[group]
        op = cluster.execute(self._client(group).read(obj), max_events=max_events)
        if not op.done:
            raise TimeoutError(f"read of {key!r} did not terminate")
        return self._store.codecs[group].decode(op.value)


class GroupedCausalKVStore:
    """Many keys, one CausalEC instance per group of ``group_size`` keys."""

    def __init__(
        self,
        keys: Sequence[str],
        group_size: int = 3,
        num_servers: int = 5,
        value_capacity: int = 32,
        code_factory: Callable[[int, int, int], LinearCode] | None = None,
        latency: LatencyModel | None = None,
        config: ServerConfig | None = None,
        seed: int = 0,
    ):
        keys = list(keys)
        if not keys:
            raise ValueError("need at least one key")
        if len(set(keys)) != len(keys):
            raise ValueError("keys must be distinct")
        if group_size < 1:
            raise ValueError("group_size must be positive")
        self.scheduler = Scheduler()
        self.num_servers = num_servers
        value_len = value_capacity + 2
        if code_factory is None:
            def code_factory(n: int, k: int, vlen: int) -> LinearCode:
                return reed_solomon_code(PrimeField(257), n, k, value_len=vlen)

        self._locator: dict[str, tuple[int, int]] = {}
        self.clusters: list[CausalECCluster] = []
        self.codecs: list[ValueCodec] = []
        self.group_keys: list[list[str]] = []
        for g, start in enumerate(range(0, len(keys), group_size)):
            group = keys[start : start + group_size]
            code = code_factory(num_servers, len(group), value_len)
            if code.N != num_servers or code.K != len(group):
                raise ValueError("code_factory returned mismatched code")
            cluster = CausalECCluster(
                code,
                latency=latency,
                seed=seed + g,
                config=config or ServerConfig(gc_interval=50.0),
                scheduler=self.scheduler,
            )
            self.clusters.append(cluster)
            self.codecs.append(ValueCodec(code.field, code.value_len))
            self.group_keys.append(group)
            for obj, key in enumerate(group):
                self._locator[key] = (g, obj)
        self.keys = keys
        self.group_size = group_size
        self.router = ShardRouter.from_placement(self._locator)

    # ------------------------------------------------------------------

    @property
    def num_groups(self) -> int:
        return len(self.clusters)

    def locate(self, key: str) -> tuple[int, int]:
        """``(group, object)`` for a key, via the shard router.

        Static grouping is now just an epoch-0 router placement (see
        :class:`~repro.sharding.router.ShardRouter.from_placement`), so a
        grouped store can be promoted to a resharding one.
        """
        try:
            return self.router.locate(key)
        except KeyError:
            raise KeyError(f"unknown key {key!r}")

    def legacy_locate(self, key: str) -> tuple[int, int]:
        """Deprecated: the original index-arithmetic placement.

        Kept only as a compatibility shim for callers that relied on the
        ``(index // group_size, index % group_size)`` rule; it matches
        :meth:`locate` at epoch 0 and diverges after any view change.
        """
        import warnings

        warnings.warn(
            "legacy_locate() is deprecated; use locate(), which delegates "
            "to the shard router",
            DeprecationWarning,
            stacklevel=2,
        )
        try:
            idx = self.keys.index(key)
        except ValueError:
            raise KeyError(f"unknown key {key!r}")
        return (idx // self.group_size, idx % self.group_size)

    def session(self, site: int = 0) -> GroupedSession:
        return GroupedSession(self, site)

    def crash_site(self, site: int) -> None:
        """Crash a server at every group (it is one physical node)."""
        for cluster in self.clusters:
            cluster.halt_server(site)

    def settle(self, for_time: float = 5_000.0) -> None:
        self.scheduler.run(until=self.scheduler.now + for_time)

    def total_transient_entries(self) -> int:
        return sum(c.total_transient_entries() for c in self.clusters)

    def total_messages(self) -> int:
        return sum(c.network.stats.total_messages for c in self.clusters)


def hybrid_store(
    hot_keys: Sequence[str],
    cold_keys: Sequence[str],
    num_servers: int = 5,
    k: int = 3,
    value_capacity: int = 32,
    latency=None,
    config: ServerConfig | None = None,
    seed: int = 0,
) -> GroupedCausalKVStore:
    """The Sec. 4.2 / footnote-15 hybrid: replicate the hot set, erasure
    code the cold set.

    Data stores "detect arrival rates and adapt"; the paper suggests
    replication for the few very-hot objects (avoiding history-list churn)
    and dimension-k erasure coding for the cold majority (storage savings).
    Hot keys are placed in fully replicated groups; cold keys in RS(N, k)
    groups -- all running CausalEC, so every guarantee is uniform.
    """
    from ..ec.codes import replication_code

    hot_keys, cold_keys = list(hot_keys), list(cold_keys)
    if set(hot_keys) & set(cold_keys):
        raise ValueError("hot and cold key sets must be disjoint")
    value_len = value_capacity + 2

    store = GroupedCausalKVStore.__new__(GroupedCausalKVStore)
    # build manually to allow per-group code choice
    store.scheduler = Scheduler()
    store.num_servers = num_servers
    store._locator = {}
    store.clusters = []
    store.codecs = []
    store.group_keys = []

    def add_group(group: list[str], code, g_index: int) -> None:
        cluster = CausalECCluster(
            code,
            latency=latency,
            seed=seed + g_index,
            config=config or ServerConfig(gc_interval=50.0),
            scheduler=store.scheduler,
        )
        store.clusters.append(cluster)
        store.codecs.append(ValueCodec(code.field, code.value_len))
        store.group_keys.append(group)
        for obj, key in enumerate(group):
            store._locator[key] = (g_index, obj)

    g = 0
    for start in range(0, len(hot_keys), k):
        group = hot_keys[start : start + k]
        code = replication_code(
            PrimeField(257), num_servers, len(group), value_len=value_len
        )
        add_group(group, code, g)
        g += 1
    for start in range(0, len(cold_keys), k):
        group = cold_keys[start : start + k]
        code = reed_solomon_code(
            PrimeField(257), num_servers, len(group), value_len=value_len
        )
        add_group(group, code, g)
        g += 1
    store.keys = hot_keys + cold_keys
    store.group_size = k
    store.router = ShardRouter.from_placement(store._locator)
    return store
