"""Online (incremental) causal-consistency auditing of live decision logs.

The offline checkers in this package (:mod:`~repro.consistency.causal`,
:mod:`~repro.consistency.patterns`) need the complete recorded history; a
live cluster wants violations flagged *while it runs*.  This module provides
the pure checking logic: :class:`AuditOp` is one record of a server's
decision log (a client write applied, a causal apply, a read returned),
and :class:`IncrementalCausalChecker` consumes records one at a time -- in
any arrival order, with duplicates -- and incrementally maintains the
causal order to flag violations with the offending operation pair.

The checks are the bad-pattern family of Bouajjani, Enea, Guerraoui &
Hamza, "On Verifying Causal Consistency" (POPL'17, arXiv:1611.00580),
adapted to *tag-level* evidence: decision logs carry write tags, not
values, and CausalEC's tag order **is** the arbitration total order
(Definition 5(b) / ``core/tags.py``).  That turns the expensive CCv
``CyclicCF`` search into a direct comparison:

* **DuplicateWrite** -- one client write (opid) applied under two different
  tags: the write took effect twice (e.g. an unsafe cross-server retry).
* **DuplicateTag** -- two different writes share a tag (Lemma B.3 broken).
* **CyclicCO** -- the causal order (session order + reads-from, closed
  transitively) has a cycle.
* **StaleRead** -- a read returned tag ``t`` although a write with a
  *larger* tag to the same object causally precedes the read; under
  last-writer-wins arbitration by tag order that write should have won.
* **WriteCOInitRead** -- a read returned the initial value although a write
  to the object causally precedes it.
* **ThinAirRead** (finalize only) -- a read returned a tag never written.
  Deferred to :meth:`~IncrementalCausalChecker.finalize` because the
  writer's log record may simply not have arrived yet.

**Arrival-order tolerance.**  Records from different servers interleave
arbitrarily; a read's writer may be logged by a server whose stream is
behind.  Reads whose writer is unknown are *pending* -- their reads-from
edge is added when the writer record arrives.  Records are deduplicated by
``(server, seq)``, so a runtime that replays its whole log after a
reconnect (the simple, robust strategy) costs nothing.

**Ambiguous reads.**  A crashed server may have logged a read-return whose
reply never reached the client; the client retries elsewhere and a second
server logs the same opid with a (possibly different) tag.  Only one of
the two was accepted by the client, and server logs cannot tell which.
Flagging either as stale could be a false positive, so a read opid logged
with two different tags is marked *ambiguous*: it keeps its session-order
position (that much is certain) but is excluded from reads-from edges and
read checks, and the causal order is rebuilt without it.  Writes get no
such amnesty -- their dedup is per-server and per-session, so two tags for
one write opid is a real double apply.

**Cross-shard histories.**  A sharded deployment runs one CausalEC group
per shard, each with its own vector clock, so tags are only meaningful
*within* a shard: records carry a ``shard`` id and tag identity becomes
``(shard, tag)`` (otherwise two shards minting the same clock components
would collide as a false DuplicateTag, and a read could appear to read
from another shard's write).  Objects, by contrast, are *global* keys --
a key that migrates between shards keeps its identity, and its records
carry a migration ``gen``eration that bumps on every move.  Arbitration
across a migration compares ``(gen, tag)`` lexicographically: the
migrated copy is installed under the destination shard's (unrelated,
possibly smaller) clock, and the generation prefix is what makes it
supersede every pre-move version without false StaleRead reports --
while staying exact for same-generation comparisons.  Session order is
cross-shard for free: a ShardedSession's per-shard clients share one
client id and opid counter.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["AuditOp", "AuditViolation", "IncrementalCausalChecker"]


@dataclass
class AuditOp:
    """One decision-log record, as streamed over the wire by a server.

    ``kind`` is ``"write"`` (a client write applied at its home server,
    opid known), ``"apply"`` (the same write applied at a peer -- opid
    unknown, corroborates the tag), or ``"read"`` (a read-return).
    ``seq`` is the server's monotone per-log sequence number: together with
    ``server`` it deduplicates replayed records.  ``tag`` is the decision
    log's tag key ``(vector-clock components, writing client id)``; the
    zero timestamp denotes the initial value.  ``opid`` is the operation id
    ``(client id, per-client counter)``, or ``None`` for apply records.

    ``shard`` scopes the tag (each shard's CausalEC group has its own
    clock); ``gen`` is the object's migration generation at record time
    (0 until a view change moves the key).  Both default to 0 so
    unsharded deployments are unchanged.

    ``epoch`` is the server's membership ``cfg_epoch`` when the record
    was emitted.  It scopes the *dedup* identity ``(server, epoch,
    seq)``: a replacement server installed after an epoch-fenced
    reconfiguration reuses its predecessor's id and restarts ``seq`` at
    1, so without the epoch its first records would collide with the
    dead incarnation's and be dropped as replays.
    """

    server: int
    seq: int
    kind: str
    obj: int
    tag: tuple
    opid: tuple | None = None
    time: float = 0.0
    shard: int = 0
    gen: int = 0
    epoch: int = 0


@dataclass
class AuditViolation:
    """A detected consistency violation, with the offending operations."""

    kind: str
    detail: str
    ops: tuple = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}: {self.detail}"


def _order_key(tag: tuple) -> tuple:
    """The Tag total-order key reconstructed from a logged tag key.

    Logged keys are ``(components, client_id)``; Tag order compares
    ``(lamport, client_id, components)`` (see ``core/tags.py``).
    """
    components, client_id = tag
    return (sum(components), client_id, tuple(components))


def _is_zero(tag: tuple) -> bool:
    return sum(tag[0]) == 0


@dataclass
class _Node:
    kind: str  # "write" | "read"
    obj: int
    tag: tuple
    opid: tuple | None  # None for writes known only from apply records
    shard: int = 0
    gen: int = 0
    ambiguous: bool = False
    sources: list = field(default_factory=list)  # (server, seq) evidence


class IncrementalCausalChecker:
    """Incremental tag-level bad-pattern checker over audit records.

    Feed records with :meth:`ingest` (returns newly found violations);
    :meth:`sweep` runs the full read checks over the current graph (cheap,
    also triggered automatically every ``sweep_interval`` ingests);
    :meth:`finalize` additionally reports thin-air reads and returns every
    violation found over the checker's lifetime.
    """

    def __init__(self, sweep_interval: int = 64):
        self.sweep_interval = sweep_interval
        self.violations: list[AuditViolation] = []
        self._reported: set[tuple] = set()
        self._seen: set[tuple] = set()  # (server, epoch, seq)
        self._nodes: list[_Node] = []
        # tag identity is (shard, tag): clocks are per-shard
        self._writes_by_tag: dict[tuple, int] = {}
        self._writes_by_opid: dict[tuple, int] = {}
        self._reads_by_opid: dict[tuple, int] = {}
        self._writes_by_obj: dict[int, list[int]] = defaultdict(list)
        self._reads_by_obj: dict[int, list[int]] = defaultdict(list)
        self._sessions: dict[int, dict[int, int]] = defaultdict(dict)
        self._pending_reads: dict[tuple, list[int]] = defaultdict(list)
        self._cap = 64
        self._closure = np.zeros((self._cap, self._cap), dtype=bool)
        self._since_sweep = 0
        self.records_ingested = 0

    # -- record ingestion ----------------------------------------------

    def ingest(self, op: AuditOp) -> list[AuditViolation]:
        """Consume one record; return violations newly detected by it."""
        before = len(self.violations)
        key = (op.server, getattr(op, "epoch", 0), op.seq)
        if key in self._seen:
            return []
        self._seen.add(key)
        self.records_ingested += 1
        if op.kind in ("write", "apply"):
            self._ingest_write(op)
        elif op.kind == "read":
            self._ingest_read(op)
        else:
            raise ValueError(f"unknown audit record kind {op.kind!r}")
        self._since_sweep += 1
        if self._since_sweep >= self.sweep_interval:
            self.sweep()
        return self.violations[before:]

    def _ingest_write(self, op: AuditOp) -> None:
        tkey = (op.shard, op.tag)
        idx = self._writes_by_tag.get(tkey)
        if idx is not None:
            node = self._nodes[idx]
            node.sources.append((op.server, op.seq))
            if op.opid is None:
                return  # apply record corroborating a known tag
            if node.opid is None:
                # the home-server record arrived after a peer's apply:
                # the write gains its identity and session position now
                node.opid = op.opid
                self._register_write_opid(idx, op)
            elif node.opid != op.opid:
                self._report(
                    "DuplicateTag",
                    f"writes {node.opid!r} and {op.opid!r} share tag "
                    f"{op.tag!r} on object {op.obj} (tag uniqueness broken)",
                    (node.opid, op.opid),
                )
            return
        if op.opid is not None and op.opid in self._writes_by_opid:
            other = self._nodes[self._writes_by_opid[op.opid]]
            self._report(
                "DuplicateWrite",
                f"write {op.opid!r} applied under two tags "
                f"{other.tag!r} and {op.tag!r} on object {op.obj} "
                f"(the write took effect twice)",
                (op.opid,),
            )
            return
        idx = self._new_node(
            _Node("write", op.obj, op.tag, op.opid, shard=op.shard, gen=op.gen)
        )
        self._nodes[idx].sources.append((op.server, op.seq))
        self._writes_by_tag[tkey] = idx
        self._writes_by_obj[op.obj].append(idx)
        if op.opid is not None:
            self._register_write_opid(idx, op)
        # resolve reads that were waiting for this writer
        for r in self._pending_reads.pop(tkey, ()):
            self._add_edge(idx, r, "reads-from")

    def _register_write_opid(self, idx: int, op: AuditOp) -> None:
        self._writes_by_opid[op.opid] = idx
        self._session_insert(op.opid, idx)

    def _ingest_read(self, op: AuditOp) -> None:
        idx = self._reads_by_opid.get(op.opid)
        if idx is not None:
            node = self._nodes[idx]
            node.sources.append((op.server, op.seq))
            if node.tag != op.tag and not node.ambiguous:
                # two servers answered the same read differently; only one
                # answer reached the client and we cannot tell which -- see
                # the module docstring.  Not a violation by itself.
                node.ambiguous = True
                self._rebuild()
            return
        idx = self._new_node(
            _Node("read", op.obj, op.tag, op.opid, shard=op.shard, gen=op.gen)
        )
        self._nodes[idx].sources.append((op.server, op.seq))
        self._reads_by_opid[op.opid] = idx
        self._reads_by_obj[op.obj].append(idx)
        self._session_insert(op.opid, idx)
        self._link_reads_from(idx)

    def _link_reads_from(self, idx: int) -> None:
        node = self._nodes[idx]
        if node.ambiguous or _is_zero(node.tag):
            return
        tkey = (node.shard, node.tag)
        w = self._writes_by_tag.get(tkey)
        if w is not None:
            self._add_edge(w, idx, "reads-from")
        else:
            self._pending_reads[tkey].append(idx)

    def _session_insert(self, opid: tuple, idx: int) -> None:
        client, counter = opid
        session = self._sessions[client]
        session[counter] = idx
        below = [c for c in session if c < counter]
        above = [c for c in session if c > counter]
        if below:
            self._add_edge(session[max(below)], idx, "session")
        if above:
            self._add_edge(idx, session[min(above)], "session")

    # -- causal order maintenance --------------------------------------

    def _new_node(self, node: _Node) -> int:
        idx = len(self._nodes)
        self._nodes.append(node)
        if idx >= self._cap:
            self._cap *= 2
            grown = np.zeros((self._cap, self._cap), dtype=bool)
            grown[:idx, :idx] = self._closure
            self._closure = grown
        return idx

    def _add_edge(self, u: int, v: int, why: str) -> None:
        if u == v:
            return
        if self._closure[v, u]:
            a, b = self._nodes[u], self._nodes[v]
            self._report(
                "CyclicCO",
                f"adding {why} edge {self._describe(a)} -> "
                f"{self._describe(b)} closes a causal cycle",
                (a.opid, b.opid),
            )
            return  # keep the graph acyclic so later checks stay sound
        if self._closure[u, v]:
            return
        n = len(self._nodes)
        preds = self._closure[:n, u].copy()
        preds[u] = True
        succs = self._closure[v, :n].copy()
        succs[v] = True
        self._closure[:n, :n] |= np.outer(preds, succs)

    def _rebuild(self) -> None:
        """Recompute the causal order from scratch.

        Needed when a read becomes ambiguous: its reads-from edge must be
        retracted, and transitive closures do not support edge deletion.
        Session edges and every unambiguous reads-from edge are re-added.
        """
        self._closure = np.zeros((self._cap, self._cap), dtype=bool)
        self._pending_reads = defaultdict(list)
        for session in self._sessions.values():
            order = sorted(session)
            for a, b in zip(order, order[1:]):
                self._add_edge(session[a], session[b], "session")
        for idx, node in enumerate(self._nodes):
            if node.kind == "read":
                self._link_reads_from(idx)

    # -- checks ---------------------------------------------------------

    def _report(self, kind: str, detail: str, ops: tuple) -> None:
        key = (kind, ops)
        if key in self._reported:
            return
        self._reported.add(key)
        self.violations.append(AuditViolation(kind, detail, ops))

    def _describe(self, node: _Node) -> str:
        who = f"op {node.opid!r}" if node.opid is not None else "write"
        return f"{who} ({node.kind} obj {node.obj} tag {node.tag!r})"

    def sweep(self) -> list[AuditViolation]:
        """Run the full read checks over the current causal order.

        Incremental ingestion catches cycles and duplicate applications the
        moment they appear, but a read's staleness can be established by
        edges that arrive *after* the read (a later record extends the
        closure).  The sweep re-examines every read against the writes that
        currently precede it; already-reported violations are not repeated.
        """
        before = len(self.violations)
        self._since_sweep = 0
        for obj, reads in self._reads_by_obj.items():
            writes = self._writes_by_obj.get(obj, ())
            for r in reads:
                node = self._nodes[r]
                if node.ambiguous:
                    continue
                initial = _is_zero(node.tag)
                # arbitration order across migrations: generation first,
                # then the per-shard tag order (see module docstring)
                returned = (
                    None if initial else (node.gen, *_order_key(node.tag))
                )
                for w in writes:
                    if not self._closure[w, r]:
                        continue
                    wnode = self._nodes[w]
                    if initial:
                        self._report(
                            "WriteCOInitRead",
                            f"read {node.opid!r} returned the initial value "
                            f"of object {obj} but {self._describe(wnode)} "
                            f"causally precedes it",
                            (wnode.opid, node.opid),
                        )
                    elif (wnode.gen, *_order_key(wnode.tag)) > returned:
                        self._report(
                            "StaleRead",
                            f"read {node.opid!r} returned tag {node.tag!r} "
                            f"although {self._describe(wnode)} causally "
                            f"precedes it and has a larger tag "
                            f"(LWW arbitration violated)",
                            (wnode.opid, node.opid),
                        )
        return self.violations[before:]

    def finalize(self) -> list[AuditViolation]:
        """End of run: sweep, then report reads of never-written tags."""
        self.sweep()
        for idx, node in enumerate(self._nodes):
            if node.kind != "read" or node.ambiguous or _is_zero(node.tag):
                continue
            if (node.shard, node.tag) not in self._writes_by_tag:
                self._report(
                    "ThinAirRead",
                    f"read {node.opid!r} returned tag {node.tag!r} on "
                    f"object {node.obj}, which no write record carries",
                    (node.opid,),
                )
        return list(self.violations)
