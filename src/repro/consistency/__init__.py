"""Execution histories and consistency checkers (Definition 5)."""

from .causal import (
    CausalViolation,
    check_causal_consistency,
    check_eventual_visibility,
    check_returns_written_values,
    expected_final_value,
)
from .history import History, Operation
from .online import AuditOp, AuditViolation, IncrementalCausalChecker
from .patterns import check_causal_bad_patterns
from .sessions import check_session_guarantees

__all__ = [
    "History",
    "Operation",
    "CausalViolation",
    "check_causal_consistency",
    "check_eventual_visibility",
    "check_returns_written_values",
    "check_session_guarantees",
    "check_causal_bad_patterns",
    "expected_final_value",
    "AuditOp",
    "AuditViolation",
    "IncrementalCausalChecker",
]
