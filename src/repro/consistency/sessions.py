"""Black-box session-guarantee checking (no certificates needed).

The certificate checker in :mod:`repro.consistency.causal` verifies the
witness orders the protocol stamps on responses.  This module provides an
*independent* line of evidence using nothing but the client-observed
history.  With unique written values (our workload drivers guarantee this)
two session guarantees implied by causal consistency become decidable from
observations alone:

* **read your writes** -- after a session writes to an object, its reads of
  that object never return the initial value or one of the session's own
  earlier writes;
* **monotonic reads** -- a session never *reverts*: once a read of an
  object has moved past a value (observed it, then observed a different
  one), no later read returns the superseded value.  Under Definition 5
  the second observation's write is tag-greater, so returning the first
  again would contradict last-writer-wins.

The checker also validates that reads only return written (or initial)
values.  Together with the certificate checker and the exhaustive checker
this gives three independent verdicts on every recorded execution.
"""

from __future__ import annotations

import numpy as np

from .causal import CausalViolation
from .history import History, Operation

__all__ = ["check_session_guarantees"]


def _key(value) -> tuple:
    return tuple(np.asarray(value).ravel().tolist())


def check_session_guarantees(
    history: History,
    zero_value,
    raise_on_violation: bool = True,
) -> list[str]:
    """Check read-your-writes and monotonic reads for every session.

    Requires unique written values per object; duplicates are reported as
    precondition violations because they make attribution ambiguous.
    """
    violations: list[str] = []
    zero = _key(zero_value)

    writers: dict[tuple[int, tuple], Operation] = {}
    for w in history.writes():
        k = (w.obj, _key(w.value))
        if k in writers:
            violations.append(
                f"precondition: duplicate value written to object {w.obj} "
                f"(ops {writers[k].opid}, {w.opid})"
            )
        writers[k] = w

    for client, ops in history.by_client().items():
        own_latest: dict[int, Operation] = {}  # session's last write per obj
        last_seen: dict[int, tuple] = {}  # last read value per obj
        superseded: dict[int, set[tuple]] = {}  # values moved past, per obj

        for op in ops:
            if not op.done:
                continue
            if op.kind == "write":
                own_latest[op.obj] = op
                continue

            v = _key(op.value)
            if v != zero and (op.obj, v) not in writers:
                violations.append(
                    f"session {client}: read {op.opid} returned an unwritten "
                    f"value for object {op.obj}"
                )
                continue

            # read your writes
            mine = own_latest.get(op.obj)
            if mine is not None:
                if v == zero:
                    violations.append(
                        f"session {client}: read {op.opid} returned the "
                        f"initial value after own write {mine.opid} "
                        f"(read-your-writes)"
                    )
                else:
                    w = writers[(op.obj, v)]
                    if (
                        w.client_id == client
                        and w.response_time is not None
                        and mine.response_time is not None
                        and w.response_time < mine.response_time
                    ):
                        violations.append(
                            f"session {client}: read {op.opid} returned own "
                            f"earlier write {w.opid} despite later own write "
                            f"{mine.opid} (read-your-writes)"
                        )

            # monotonic reads (no reverting to a superseded value)
            prev = last_seen.get(op.obj)
            if prev is not None and v != prev:
                superseded.setdefault(op.obj, set()).add(prev)
            if v in superseded.get(op.obj, ()):
                violations.append(
                    f"session {client}: read {op.opid} on object {op.obj} "
                    f"reverted to a superseded value (monotonic reads)"
                )
            last_seen[op.obj] = v

    if violations and raise_on_violation:
        raise CausalViolation("\n".join(violations))
    return violations
