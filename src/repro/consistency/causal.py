"""Causal-consistency checking against Definition 5 of the paper.

Definition 5 asks for a visibility partial order and an arbitration total
order satisfying (a) session order implies visibility, (b) visibility among
writes implies arbitration, and (c) every read returns the last-writer-wins
value among the writes visible to it.

Checking existence of such orders for an arbitrary black-box history is
intractable in general, but the paper's own proofs construct an explicit
witness (Definitions 6-7): visibility is ordered by the server vector clock
at the response point, and arbitration by write tags.  CausalEC (and our
baselines) stamp exactly this certificate on every response, so the checker
verifies the witness:

1.  **Tag uniqueness** (Lemma B.3): distinct completed writes carry distinct
    tags.
2.  **Session monotonicity** (Definition 5(a) via Definition 7): along each
    client's session, response timestamps are non-decreasing in the
    vector-clock partial order, and strictly increasing into a write.
3.  **Last-writer-wins reads** (Definition 5(c)): each completed read of
    object X returns the value of the tag-maximal write among
    ``{writes pi to X : ts(pi) <= ts(read)}`` -- or the initial (zero) value
    when that set is empty -- and the stamped ``value_tag`` matches.

A forged certificate cannot pass: returned values are cross-checked against
the writes recorded independently by the writer clients.
"""

from __future__ import annotations

import numpy as np

from .history import History, Operation

__all__ = [
    "CausalViolation",
    "check_causal_consistency",
    "check_returns_written_values",
    "check_eventual_visibility",
    "expected_final_value",
]


class CausalViolation(AssertionError):
    """Raised by ``check_*(..., raise_on_violation=True)``."""


def _values_equal(a, b) -> bool:
    return np.array_equal(np.asarray(a), np.asarray(b))


def check_causal_consistency(
    history: History,
    zero_value=None,
    raise_on_violation: bool = True,
) -> list[str]:
    """Verify the Definition 5 witness over a recorded history.

    Returns the list of violations (empty means the history passed).  When
    ``raise_on_violation`` is set, a non-empty list raises
    :class:`CausalViolation` instead.
    """
    violations: list[str] = []
    completed = history.completed()
    writes = [op for op in completed if op.kind == "write"]
    reads = [op for op in completed if op.kind == "read"]

    # 1. tag uniqueness + certificate sanity
    by_tag: dict = {}
    for w in writes:
        if w.tag is None or w.ts is None:
            violations.append(f"write {w.opid} completed without a certificate")
            continue
        if w.tag in by_tag:
            violations.append(
                f"duplicate write tag {w.tag!r}: ops {by_tag[w.tag].opid} "
                f"and {w.opid} (Lemma B.3 violated)"
            )
        by_tag[w.tag] = w
        if w.tag.ts != w.ts:
            violations.append(
                f"write {w.opid}: tag timestamp {w.tag.ts!r} differs from "
                f"response timestamp {w.ts!r}"
            )

    # 2. session monotonicity
    for client, ops in history.by_client().items():
        prev: Operation | None = None
        for op in ops:
            if not op.done or op.ts is None:
                continue
            if prev is not None:
                if not prev.ts.leq(op.ts):
                    violations.append(
                        f"client {client}: session timestamps regress "
                        f"({prev.opid} -> {op.opid})"
                    )
                elif op.kind == "write" and prev.ts == op.ts:
                    violations.append(
                        f"client {client}: write {op.opid} did not advance "
                        f"the timestamp past {prev.opid}"
                    )
            prev = op

    # 3. last-writer-wins reads
    writes_by_obj: dict[int, list[Operation]] = {}
    for w in writes:
        if w.tag is not None:
            writes_by_obj.setdefault(w.obj, []).append(w)
    # values of invoked-but-incomplete ("phantom") writes: the client timed
    # out or is still waiting, yet the write may have taken effect
    # server-side -- e.g. delivered by the ARQ transport after the writer
    # gave up on a crashed home server.  An incomplete operation carries no
    # certificate and is concurrent with everything, so a read returning
    # its value cannot be arbitrated black-box; it is exempt from the
    # last-writer-wins check (session and written-value checks still apply).
    phantoms = [
        (w.obj, w.value) for w in history.writes() if not w.done
    ]

    def _is_phantom(obj: int, value) -> bool:
        return any(
            po == obj and _values_equal(value, pv) for po, pv in phantoms
        )

    for r in reads:
        if r.ts is None:
            violations.append(f"read {r.opid} completed without a certificate")
            continue
        if phantoms and _is_phantom(r.obj, r.value):
            continue
        visible = [
            w for w in writes_by_obj.get(r.obj, []) if w.ts.leq(r.ts)
        ]
        if not visible:
            if zero_value is not None and not _values_equal(r.value, zero_value):
                violations.append(
                    f"read {r.opid} on object {r.obj} returned {r.value!r} "
                    f"with no visible write (expected initial value)"
                )
            continue
        winner = max(visible, key=lambda w: w.tag)
        if not _values_equal(r.value, winner.value):
            violations.append(
                f"read {r.opid} on object {r.obj} returned {r.value!r}; "
                f"last visible writer {winner.opid} wrote {winner.value!r}"
            )
        if r.tag is not None and r.tag != winner.tag and not r.tag.is_zero:
            # the stamped tag must itself belong to a real write with the
            # returned value; a newer-but-equal-valued write is acceptable
            # only if values match, which was checked above.
            stamped = by_tag.get(r.tag)
            if stamped is None or not _values_equal(stamped.value, r.value):
                violations.append(
                    f"read {r.opid}: stamped value_tag {r.tag!r} does not "
                    f"match any write producing {r.value!r}"
                )

    if violations and raise_on_violation:
        raise CausalViolation("\n".join(violations))
    return violations


def check_returns_written_values(
    history: History, zero_value, raise_on_violation: bool = True
) -> list[str]:
    """Black-box sanity: every read returns a written (or initial) value."""
    violations = []
    written: dict[int, list] = {}
    for w in history.writes():
        written.setdefault(w.obj, []).append(w.value)
    for r in history.reads():
        if not r.done:
            continue
        candidates = written.get(r.obj, [])
        if _values_equal(r.value, zero_value):
            continue
        if not any(_values_equal(r.value, v) for v in candidates):
            violations.append(
                f"read {r.opid} on object {r.obj} returned a value never "
                f"written: {r.value!r}"
            )
    if violations and raise_on_violation:
        raise CausalViolation("\n".join(violations))
    return violations


def expected_final_value(history: History, obj: int, zero_value):
    """The arbitration winner for ``obj``: the max-tag completed write."""
    writes = [
        w for w in history.writes() if w.obj == obj and w.done and w.tag is not None
    ]
    if not writes:
        return zero_value
    return max(writes, key=lambda w: w.tag).value


def check_eventual_visibility(
    history: History,
    final_reads: dict[int, list],
    zero_value,
    raise_on_violation: bool = True,
) -> list[str]:
    """Eventual consistency (Theorem 4.4 / Property IV).

    ``final_reads`` maps object -> list of values returned by reads issued
    after the system quiesced (e.g. one per server).  All of them must agree
    and equal the arbitration winner.
    """
    violations = []
    for obj, values in final_reads.items():
        expected = expected_final_value(history, obj, zero_value)
        for v in values:
            if not _values_equal(v, expected):
                violations.append(
                    f"object {obj}: post-quiescence read returned {v!r}, "
                    f"expected arbitration winner {expected!r}"
                )
    if violations and raise_on_violation:
        raise CausalViolation("\n".join(violations))
    return violations
