"""Certificate-free causal-consistency checking via bad patterns.

For *differentiated* histories (every written value unique per object --
our drivers guarantee it), causal consistency with last-writer-wins reads
(exactly Definition 5) is decidable in polynomial time by searching for the
known bad patterns [Bouajjani, Enea, Guerraoui, Hamza, POPL'17]:

1. **ThinAirRead** -- a read returns a value never written.
2. **CyclicCO** -- the causal order (transitive closure of session order
   plus writes-into-reads) is cyclic.
3. **WriteCOInitRead** -- a read returns the initial value although some
   write to the object causally precedes it.
4. **CyclicCF** -- the conflict/arbitration constraints are cyclic: taking
   the *minimal* causal order ``co``, every read r of object X returning
   write w forces ``w' -> w`` for each other write w' to X with
   ``w' co r``; these edges plus ``co`` among writes must admit a total
   arbitration order, i.e. be acyclic.

Minimality of ``co`` is what makes this complete: any valid visibility
order contains ``co``, and enlarging visibility only adds arbitration
obligations.

This is the third, fully independent verdict on recorded executions (next
to the certificate checker and the per-session black-box checks): it reads
nothing the protocol stamps.
"""

from __future__ import annotations

import numpy as np

from .causal import CausalViolation
from .history import History, Operation

__all__ = ["check_causal_bad_patterns", "transitive_closure", "has_cycle"]


def _key(value) -> tuple:
    return tuple(np.asarray(value).ravel().tolist())


def transitive_closure(adj: np.ndarray) -> np.ndarray:
    """Boolean transitive closure (Warshall); shared with the online auditor."""
    n = adj.shape[0]
    closure = adj.copy()
    for k in range(n):
        rows = closure[:, k]
        if rows.any():
            closure[rows] |= closure[k]
    return closure


def has_cycle(adj: np.ndarray) -> bool:
    """Cycle detection by repeated removal of sink-free pruning (Kahn)."""
    n = adj.shape[0]
    indeg = adj.sum(axis=0)
    alive = np.ones(n, dtype=bool)
    queue = [i for i in range(n) if indeg[i] == 0]
    removed = 0
    while queue:
        i = queue.pop()
        alive[i] = False
        removed += 1
        for j in np.nonzero(adj[i])[0]:
            indeg[j] -= 1
            if indeg[j] == 0 and alive[j]:
                queue.append(int(j))
    return removed < n


# backward-compatible private aliases
_transitive_closure = transitive_closure
_has_cycle = has_cycle


def check_causal_bad_patterns(
    history: History,
    zero_value,
    raise_on_violation: bool = True,
) -> list[str]:
    """Search the recorded history for the four bad patterns.

    Returns violations (empty = the history is causally consistent with
    LWW reads, per Definition 5).  Incomplete reads are ignored; writes are
    always included (their effects may have been observed).
    """
    violations: list[str] = []
    zero = _key(zero_value)

    ops: list[Operation] = [
        op
        for op in history.operations
        if op.kind == "write" or op.done
    ]
    n = len(ops)
    if n == 0:
        return []
    index = {id(op): i for i, op in enumerate(ops)}

    # value attribution (differentiated-history precondition)
    writers: dict[tuple[int, tuple], int] = {}
    for i, op in enumerate(ops):
        if op.kind == "write":
            k = (op.obj, _key(op.value))
            if k in writers:
                violations.append(
                    f"precondition: duplicate value written to object "
                    f"{op.obj}"
                )
            writers[k] = i

    co = np.zeros((n, n), dtype=bool)

    # session order
    for client, session in history.by_client().items():
        prev = None
        for op in session:
            if id(op) not in index:
                continue
            cur = index[id(op)]
            if prev is not None:
                co[prev, cur] = True
            prev = cur

    # writes-into-reads + ThinAirRead
    reads_of: list[tuple[int, int | None]] = []  # (read idx, writer idx)
    for i, op in enumerate(ops):
        if op.kind != "read":
            continue
        v = _key(op.value)
        if v == zero:
            reads_of.append((i, None))
            continue
        w = writers.get((op.obj, v))
        if w is None:
            violations.append(
                f"ThinAirRead: read {op.opid} returned a value never "
                f"written to object {op.obj}"
            )
            continue
        co[w, i] = True
        reads_of.append((i, w))

    co = _transitive_closure(co)

    # CyclicCO
    if bool(np.any(np.diag(co))):
        violations.append("CyclicCO: causal order is cyclic")
        if raise_on_violation:
            raise CausalViolation("\n".join(violations))
        return violations

    # conflict edges
    write_idx = [i for i, op in enumerate(ops) if op.kind == "write"]
    wpos = {w: p for p, w in enumerate(write_idx)}
    cf = np.zeros((len(write_idx), len(write_idx)), dtype=bool)
    for w1 in write_idx:
        for w2 in write_idx:
            if w1 != w2 and co[w1, w2]:
                cf[wpos[w1], wpos[w2]] = True

    for r, w in reads_of:
        obj = ops[r].obj
        preceding = [
            w2 for w2 in write_idx if ops[w2].obj == obj and co[w2, r]
        ]
        if w is None:
            if preceding:
                violations.append(
                    f"WriteCOInitRead: read {ops[r].opid} returned the "
                    f"initial value of object {obj} but write "
                    f"{ops[preceding[0]].opid} causally precedes it"
                )
            continue
        for w2 in preceding:
            if w2 != w:
                cf[wpos[w2], wpos[w]] = True

    if _has_cycle(cf):
        violations.append(
            "CyclicCF: no arbitration total order satisfies the reads"
        )

    if violations and raise_on_violation:
        raise CausalViolation("\n".join(violations))
    return violations
