"""Execution histories: the raw material for consistency checking.

A :class:`History` records every client operation in an execution --
invocation and response times, arguments, return values, and the
*certificate metadata* CausalEC (and the baselines) stamp on responses: the
serving server's vector clock (Definition 6's ``ts``) and, for reads, the
tag of the returned write.  The checkers in :mod:`repro.consistency.causal`
verify Definition 5 against this record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["Operation", "History"]


@dataclass
class Operation:
    """One client operation (read or write)."""

    client_id: int
    opid: Any
    kind: str  # "read" | "write"
    obj: int
    value: np.ndarray | None = None  # written value / returned value
    invoke_time: float = 0.0
    response_time: float | None = None
    ts: Any = None  # server vector clock at response (Definition 6)
    tag: Any = None  # write tag / returned write's tag
    failed: bool = False  # gave up (home server unavailable)
    failed_time: float | None = None
    error: Any = None  # typed error when failed (HomeServerUnavailable)

    @property
    def done(self) -> bool:
        return self.response_time is not None

    @property
    def settled(self) -> bool:
        """Completed or failed -- either way the client moved on.

        A failed operation never completed at the client, but it *may*
        still take effect at the servers (the request can be delivered
        after the client gave up); checkers treat it as incomplete.
        """
        return self.done or self.failed

    @property
    def latency(self) -> float | None:
        if self.response_time is None:
            return None
        return self.response_time - self.invoke_time


class History:
    """Append-only record of operations across all clients."""

    def __init__(self) -> None:
        self.operations: list[Operation] = []

    def record_invoke(self, op: Operation) -> Operation:
        self.operations.append(op)
        return op

    # -- views --------------------------------------------------------

    def completed(self) -> list[Operation]:
        return [op for op in self.operations if op.done]

    def pending(self) -> list[Operation]:
        return [op for op in self.operations if not op.done]

    def failed(self) -> list[Operation]:
        return [op for op in self.operations if op.failed]

    def unsettled(self) -> list[Operation]:
        """Operations the client is still waiting on (not done, not failed)."""
        return [op for op in self.operations if not op.settled]

    def writes(self) -> list[Operation]:
        return [op for op in self.operations if op.kind == "write"]

    def reads(self) -> list[Operation]:
        return [op for op in self.operations if op.kind == "read"]

    def by_client(self) -> dict[int, list[Operation]]:
        """Per-client operation sequences in invocation order."""
        sessions: dict[int, list[Operation]] = {}
        for op in self.operations:
            sessions.setdefault(op.client_id, []).append(op)
        return sessions

    def read_latencies(self) -> list[float]:
        return [op.latency for op in self.reads() if op.done]

    def write_latencies(self) -> list[float]:
        return [op.latency for op in self.writes() if op.done]

    def __len__(self) -> int:
        return len(self.operations)
