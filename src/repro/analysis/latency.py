"""Closed-form read-latency analysis for the three schemes of Sec. 1.1.

All three evaluators assume the paper's model: latency is deterministic and
given by the topology's RTT table; a read served locally costs 0; a remote
read that must gather data from a set ``S`` of other DCs costs
``max_{r in S} RTT(src, r)`` (the fetches proceed in parallel).  Reads to
each object are spatially uniform across DCs, so the average latency is the
mean over all (DC, object-group) pairs.

* :func:`partial_replication_latency` -- latency to the nearest replica.
* :func:`intra_object_latency` -- with an (N, k) MDS fragment code every
  read needs k fragments, one local: the RTT to the (k-1)-th nearest DC.
* :func:`cross_object_latency` -- the minimum over the code's recovery sets
  of the parallel-fetch cost; local when {src} is itself a recovery set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ec.code import LinearCode
from .topology import Topology

__all__ = [
    "LatencyProfile",
    "partial_replication_latency",
    "intra_object_latency",
    "cross_object_latency",
]


@dataclass
class LatencyProfile:
    """Per-(DC, group) read latencies plus summary statistics."""

    scheme: str
    latency: np.ndarray  # shape (num_dcs, num_groups), ms

    @property
    def worst_case(self) -> float:
        return float(self.latency.max())

    @property
    def average(self) -> float:
        return float(self.latency.mean())

    def per_dc_average(self) -> np.ndarray:
        return self.latency.mean(axis=1)


def partial_replication_latency(
    topology: Topology, placement: list[set[int]], num_groups: int
) -> LatencyProfile:
    """``placement[dc]`` is the set of object groups replicated at ``dc``."""
    lat = np.zeros((topology.n, num_groups))
    replicas: dict[int, list[int]] = {g: [] for g in range(num_groups)}
    for dc, groups in enumerate(placement):
        for g in groups:
            replicas[g].append(dc)
    for g in range(num_groups):
        if not replicas[g]:
            raise ValueError(f"group {g} is stored nowhere")
    for dc in range(topology.n):
        for g in range(num_groups):
            lat[dc, g] = min(topology.rtt[dc, r] for r in replicas[g])
    return LatencyProfile("partial-replication", lat)


def intra_object_latency(
    topology: Topology, k: int, num_groups: int = 1
) -> LatencyProfile:
    """(N, k) fragment code: every read waits on the (k-1)-th nearest DC."""
    if k < 1 or k > topology.n:
        raise ValueError("k must be in [1, N]")
    lat = np.zeros((topology.n, num_groups))
    for dc in range(topology.n):
        cost = 0.0 if k == 1 else topology.kth_nearest_rtt(dc, k - 1)
        lat[dc, :] = cost
    return LatencyProfile(f"intra-object RS({topology.n},{k})", lat)


def cross_object_latency(topology: Topology, code: LinearCode) -> LatencyProfile:
    """Best recovery set per (DC, object): min over sets of the parallel cost.

    The reading DC participates for free (its own symbol is local); the cost
    of recovery set S is the max RTT to the members of S other than the
    reader.
    """
    if code.N != topology.n:
        raise ValueError("code length must match the number of DCs")
    lat = np.zeros((topology.n, code.K))
    for obj in range(code.K):
        rsets = code.minimal_recovery_sets(obj)
        if not rsets:
            raise ValueError(f"object {obj} is not recoverable")
        for dc in range(topology.n):
            best = float("inf")
            for rset in rsets:
                remote = [r for r in rset if r != dc]
                cost = max((topology.rtt[dc, r] for r in remote), default=0.0)
                best = min(best, cost)
            lat[dc, obj] = best
    return LatencyProfile(f"cross-object {code.name}", lat)
