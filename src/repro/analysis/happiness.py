"""Servers-of-happiness placement across failure domains.

:mod:`repro.analysis.placement` answers the paper's Sec. 1.1 question --
*which* brute-force replication assignment minimises read latency -- by
exhaustive search over a fixed six-DC topology.  Dynamic membership needs
the complementary online question answered cheaply: *where should a new
codeword row land so the code survives correlated failures best?*

This module generalises Tahoe-LAFS's "servers of happiness" idea to
cross-object erasure codes.  Two scores:

* :func:`happiness` -- the size of a maximum bipartite matching between
  objects and failure domains, where object ``k`` may be matched to domain
  ``d`` iff some server in ``d`` stores a symbol mixing ``k``.  A matching
  of size ``K`` means every object can be attributed its *own* domain --
  no single domain is load-bearing for two objects at once.
* :func:`recovery_diversity` -- the survivability score: over all
  (object, domain) pairs, how many domains can be wiped out *entirely*
  while the object stays decodable from the survivors?  This is the
  quantity a placement decision should maximise, and it reduces to the
  brute-force search's coverage condition when the code is replication.

:func:`choose_domain` is the online heuristic used by the reconfiguration
path: given the extended code (the joiner's row appended last) and the
existing servers' domains, it evaluates every candidate domain for the
joiner and returns the one maximising ``(recovery_diversity, happiness)``
with deterministic ties (lowest domain id).  For the small ``N`` the paper
uses this *is* exhaustive over the single placement decision, so it agrees
with ground truth by construction; the seeded tests check it also beats
random placement on the six-DC topology.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

__all__ = [
    "max_bipartite_matching",
    "happiness",
    "recovery_diversity",
    "choose_domain",
    "rank_domains",
]


def max_bipartite_matching(edges: Mapping[int, Iterable[int]]) -> dict[int, int]:
    """Maximum matching of a bipartite graph via Kuhn's augmenting paths.

    ``edges[u]`` lists the right-side vertices ``u`` may be matched to.
    Returns ``{u: v}`` for the matched left vertices.  Deterministic: left
    vertices are processed in sorted order and neighbours in listed order.
    """
    match_right: dict[int, int] = {}  # right vertex -> left vertex

    def try_augment(u: int, seen: set[int]) -> bool:
        for v in edges[u]:
            if v in seen:
                continue
            seen.add(v)
            if v not in match_right or try_augment(match_right[v], seen):
                match_right[v] = u
                return True
        return False

    for u in sorted(edges):
        try_augment(u, set())
    return {u: v for v, u in match_right.items()}


def happiness(code, domain_of: Sequence[int]) -> int:
    """Objects matchable to pairwise-distinct failure domains.

    ``domain_of[s]`` is the failure domain of server ``s``.  Edge
    ``(k, d)`` exists iff some server in domain ``d`` stores a symbol
    whose encoding mixes object ``k`` (``k`` in ``X_s``).
    """
    _check_domains(code, domain_of)
    edges = {
        k: sorted(
            {domain_of[s] for s in range(code.N) if k in code.objects_at(s)}
        )
        for k in range(code.K)
    }
    return len(max_bipartite_matching(edges))


def recovery_diversity(code, domain_of: Sequence[int]) -> int:
    """Count of (object, domain) pairs surviving total domain loss.

    For each object ``k`` and each domain ``d``, scores 1 iff the servers
    *outside* ``d`` still form a recovery set for ``k``.  Higher is
    better: the maximum is ``K * len(domains)``, meaning any one domain
    can burn down without losing a single object.
    """
    _check_domains(code, domain_of)
    score = 0
    domains = sorted(set(domain_of))
    for d in domains:
        survivors = [s for s in range(code.N) if domain_of[s] != d]
        for k in range(code.K):
            if code.is_recovery_set(survivors, k):
                score += 1
    return score


def rank_domains(
    code,
    existing_domains: Sequence[int],
    candidates: Iterable[int] | None = None,
) -> list[tuple[tuple[int, int], int]]:
    """Score every candidate domain for the code's *last* server.

    ``existing_domains`` covers servers ``0 .. N-2``; the last server (the
    joiner's appended row) is placed in each candidate domain in turn.
    Returns ``[((diversity, happiness), domain), ...]`` best first, with
    deterministic ties (lowest domain id wins).
    """
    if len(existing_domains) != code.N - 1:
        raise ValueError(
            f"expected {code.N - 1} existing domains, got {len(existing_domains)}"
        )
    cands = sorted(set(candidates if candidates is not None else existing_domains))
    if not cands:
        raise ValueError("no candidate domains")
    scored = []
    for d in cands:
        full = list(existing_domains) + [d]
        scored.append(((recovery_diversity(code, full), happiness(code, full)), d))
    scored.sort(key=lambda item: (-item[0][0], -item[0][1], item[1]))
    return scored


def choose_domain(
    code,
    existing_domains: Sequence[int],
    candidates: Iterable[int] | None = None,
) -> int:
    """The failure domain maximising ``(recovery_diversity, happiness)``.

    The online placement decision for one joining row: exhaustive over the
    candidate domains (a single row has only ``|domains|`` placements), so
    for one join it coincides with brute-force ground truth.
    """
    return rank_domains(code, existing_domains, candidates)[0][1]


def _check_domains(code, domain_of: Sequence[int]) -> None:
    if len(domain_of) != code.N:
        raise ValueError(
            f"domain_of must cover all {code.N} servers, got {len(domain_of)}"
        )
