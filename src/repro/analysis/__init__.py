"""Closed-form analyses reproducing the paper's evaluation numbers."""

from .costs import (
    SchemeCosts,
    cross_object_costs,
    intra_object_costs,
    partial_replication_costs,
    read_cost_bits,
    write_cost_bits,
)
from .latency import (
    LatencyProfile,
    cross_object_latency,
    intra_object_latency,
    partial_replication_latency,
)
from .placement import PlacementResult, search_partial_replication
from .storage import (
    YcsbAnalysis,
    analyze_ycsb,
    fraction_below_rate,
    history_overhead_values,
    zipf_write_rate,
)
from .topology import AWS_SIX_DC_RTT, REGIONS, Topology, rtt_matrix

__all__ = [
    "Topology",
    "REGIONS",
    "AWS_SIX_DC_RTT",
    "rtt_matrix",
    "LatencyProfile",
    "partial_replication_latency",
    "intra_object_latency",
    "cross_object_latency",
    "PlacementResult",
    "search_partial_replication",
    "SchemeCosts",
    "partial_replication_costs",
    "intra_object_costs",
    "cross_object_costs",
    "read_cost_bits",
    "write_cost_bits",
    "YcsbAnalysis",
    "analyze_ycsb",
    "zipf_write_rate",
    "fraction_below_rate",
    "history_overhead_values",
]

from .code_design import DesignResult, design_cross_object_code, sum_code

__all__ += ["DesignResult", "design_cross_object_code", "sum_code"]

from .metrics import LatencySummary, summarize, throughput

__all__ += ["LatencySummary", "summarize", "throughput"]
