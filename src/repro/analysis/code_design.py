"""Heuristic cross-object code design for general topologies.

The paper (Sec. 1.1, Sec. 6) leaves open "the design of cross-object
erasure codes that minimize average/worst-case latency for general
topologies"; its 6-DC code was hand-tuned.  This module implements the
natural first attack on that problem: randomized-restart local search over
*sum codes* -- each server stores one symbol that is the sum of a small
subset of objects (the family the paper's own example lives in).

The search state assigns every server a non-empty subset of objects of size
<= ``max_mix`` (coefficient 1 each); a move re-assigns one server's subset.
States where some object is unrecoverable are infeasible.  The objective is
lexicographic: minimize (worst-case read latency, average read latency) or
the reverse, computed by :func:`~repro.analysis.latency.cross_object_latency`
under the paper's latency model.

This is an *extension* beyond the paper (documented in DESIGN.md); the
bench ``benchmarks/test_ablation_code_design.py`` shows the search recovers
a code at least as good as the hand-tuned Sec. 1.1 code on the AWS topology
and beats the best partial replication placement on random topologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..ec.code import LinearCode
from ..ec.field import Field, default_field
from .latency import LatencyProfile, cross_object_latency
from .topology import Topology

__all__ = ["DesignResult", "design_cross_object_code", "sum_code"]


def sum_code(
    field: Field,
    num_objects: int,
    assignment: list[frozenset[int]],
    value_len: int = 1,
) -> LinearCode:
    """Build the sum code where server s stores sum of ``assignment[s]``."""
    rows = []
    for objs in assignment:
        row = np.zeros((1, num_objects), dtype=field.dtype)
        for k in objs:
            row[0, k] = 1
        rows.append(row)
    return LinearCode(
        field, num_objects, rows, value_len=value_len, name="designed-sum-code"
    )


@dataclass
class DesignResult:
    """Outcome of a design run: the winning sum-code and its latencies."""

    assignment: list[frozenset[int]]
    code: LinearCode
    profile: LatencyProfile
    objective: tuple[float, float]
    iterations: int
    restarts: int


def _objective(profile: LatencyProfile, mode: str) -> tuple[float, float]:
    if mode == "worst_then_avg":
        return (profile.worst_case, profile.average)
    if mode == "avg_then_worst":
        return (profile.average, profile.worst_case)
    raise ValueError("objective must be 'worst_then_avg' or 'avg_then_worst'")


def _evaluate(
    topology: Topology,
    field: Field,
    num_objects: int,
    assignment: list[frozenset[int]],
    mode: str,
):
    """Objective of an assignment, or None when infeasible."""
    code = sum_code(field, num_objects, assignment)
    for obj in range(num_objects):
        if not code.minimal_recovery_sets(obj):
            return None, None, None
    profile = cross_object_latency(topology, code)
    return _objective(profile, mode), code, profile


def design_cross_object_code(
    topology: Topology,
    num_objects: int,
    max_mix: int = 2,
    objective: str = "worst_then_avg",
    restarts: int = 4,
    max_iterations: int = 200,
    field: Field | None = None,
    seed: int = 0,
) -> DesignResult:
    """Local search for a low-latency sum code on ``topology``.

    Each restart seeds the servers with random single objects (every object
    placed at least once, so the start is feasible), then hill-climbs by
    re-assigning one server's stored subset at a time until no single move
    improves the lexicographic objective.
    """
    if num_objects > topology.n:
        raise ValueError(
            "need at least one server per object for a feasible start"
        )
    field = field or default_field()
    rng = np.random.default_rng(seed)
    candidates = [
        frozenset(c)
        for size in range(1, max_mix + 1)
        for c in combinations(range(num_objects), size)
    ]

    best: DesignResult | None = None
    for restart in range(restarts):
        # feasible start: a random surjective single-object placement
        perm = list(rng.permutation(num_objects))
        extra = list(rng.integers(0, num_objects, size=topology.n - num_objects))
        assignment = [frozenset({int(g)}) for g in perm + extra]
        score, code, profile = _evaluate(
            topology, field, num_objects, assignment, objective
        )
        assert score is not None  # single-object surjective: feasible
        iterations = 0
        improved = True
        while improved and iterations < max_iterations:
            improved = False
            iterations += 1
            for server in range(topology.n):
                current = assignment[server]
                for cand in candidates:
                    if cand == current:
                        continue
                    trial = list(assignment)
                    trial[server] = cand
                    trial_score, trial_code, trial_profile = _evaluate(
                        topology, field, num_objects, trial, objective
                    )
                    if trial_score is not None and trial_score < score:
                        assignment, score = trial, trial_score
                        code, profile = trial_code, trial_profile
                        improved = True
        result = DesignResult(
            assignment=assignment,
            code=code,
            profile=profile,
            objective=score,
            iterations=iterations,
            restarts=restart + 1,
        )
        if best is None or result.objective < best.objective:
            best = result
    assert best is not None
    return best
