"""Communication-cost models (Sec. 4.2 and the Fig. 2 table).

Two layers:

* **Asymptotic formulas** (Sec. 4.2's "low-cost variant" accounting): reads
  cost ``O(k)B + O(k^2 log L)`` bits, writes ``O(N)B + O(k^2 log L) +
  O(N log L)`` bits.  :func:`read_cost_bits` / :func:`write_cost_bits` make
  the constants explicit so benchmarks can check the *shape* against
  simulation measurements.

* **Per-scheme average costs** (the Fig. 2 columns): expected bits moved per
  read/write for partial replication, intra-object coding, and cross-object
  coding under spatially uniform reads, computed from the topology and the
  code's recovery structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ec.code import LinearCode
from .topology import Topology

__all__ = [
    "read_cost_bits",
    "write_cost_bits",
    "SchemeCosts",
    "partial_replication_costs",
    "intra_object_costs",
    "cross_object_costs",
]


def read_cost_bits(k: int, value_bits: float, max_updates: int) -> float:
    """Sec. 4.2 read cost: one round trip to k servers in the object's group.

    Each round trip moves O(B) data and k Lamport timestamps of log L bits
    (one per object in the group): total O(k)B + O(k^2 log L).
    """
    log_l = max(1.0, math.log2(max(2, max_updates)))
    return k * (value_bits + k * log_l)


def write_cost_bits(
    n: int, k: int, value_bits: float, max_updates: int
) -> float:
    """Sec. 4.2 write cost: app broadcast + encoding-triggered internal read
    + del messages: O(N)B + O(k^2 log L) + O(N log L)."""
    log_l = max(1.0, math.log2(max(2, max_updates)))
    app = n * (value_bits + log_l)
    internal_read = k * (value_bits + k * log_l)
    dels = n * log_l
    return app + internal_read + dels


@dataclass
class SchemeCosts:
    """Average communication per operation, in units of B (one value)."""

    scheme: str
    read_value_units: float  # expected value-bits moved per read, / B
    write_value_units: float  # expected value-bits moved per write, / B
    local_read_fraction: float


def partial_replication_costs(
    topology: Topology, placement: list[set[int]], num_groups: int
) -> SchemeCosts:
    """Reads fetch B from the nearest replica when not local; writes ship
    the value to every server (the Appendix A non-blocking protocol)."""
    local = 0
    total = topology.n * num_groups
    for dc in range(topology.n):
        for g in range(num_groups):
            if g in placement[dc]:
                local += 1
    remote_fraction = 1 - local / total
    return SchemeCosts(
        "partial-replication",
        read_value_units=remote_fraction,
        write_value_units=float(topology.n),
        local_read_fraction=local / total,
    )


def intra_object_costs(topology: Topology, k: int) -> SchemeCosts:
    """Every read fetches k-1 fragments of B/k bits; every write ships one
    B/k fragment to each of the N servers."""
    return SchemeCosts(
        f"intra-object RS({topology.n},{k})",
        read_value_units=(k - 1) / k,
        write_value_units=topology.n / k,
        local_read_fraction=0.0,
    )


def cross_object_costs(
    topology: Topology,
    code: LinearCode,
    internal_read_factor: float | None = None,
) -> SchemeCosts:
    """Reads use the lowest-latency recovery set (bytes = fetched symbols);
    writes broadcast the value (N x B) plus the re-encoding overhead of
    internal reads.

    ``internal_read_factor`` is the expected extra value-units a write
    triggers through Encoding-action internal reads; the paper's Appendix A
    bounds it by kB (we default to that bound, matching Fig. 2's "12B" for
    the 6-DC example where N = 6 and the bound adds another 6B).
    """
    total_fetch = 0.0
    local = 0
    for obj in range(code.K):
        rsets = code.minimal_recovery_sets(obj)
        for dc in range(topology.n):
            best_cost = float("inf")
            best_bytes = float("inf")
            for rset in rsets:
                remote = [r for r in rset if r != dc]
                cost = max((topology.rtt[dc, r] for r in remote), default=0.0)
                size = sum(code.symbols_at(r) for r in remote)
                if (cost, size) < (best_cost, best_bytes):
                    best_cost, best_bytes = cost, size
            total_fetch += best_bytes
            if best_bytes == 0:
                local += 1
    pairs = topology.n * code.K
    if internal_read_factor is None:
        internal_read_factor = float(code.K)  # Appendix A's kB bound
    return SchemeCosts(
        f"cross-object {code.name}",
        read_value_units=total_fetch / pairs,
        write_value_units=topology.n + internal_read_factor,
        local_read_fraction=local / pairs,
    )
