"""Latency/throughput summaries over recorded histories.

Turns a :class:`~repro.consistency.history.History` into the numbers papers
report: per-operation-type latency percentiles, mean/worst, throughput over
the measured window, and local-read fractions.  Used by benches and
examples; handy for users evaluating their own codes and topologies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..consistency.history import History

__all__ = ["LatencySummary", "summarize", "throughput"]


@dataclass
class LatencySummary:
    """Latency statistics (ms) for one operation class."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    worst: float

    @classmethod
    def of(cls, latencies: list[float]) -> "LatencySummary":
        if not latencies:
            return cls(0, float("nan"), float("nan"), float("nan"),
                       float("nan"), float("nan"))
        arr = np.asarray(latencies, dtype=float)
        return cls(
            count=len(arr),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            worst=float(arr.max()),
        )

    def row(self) -> list[str]:
        if self.count == 0:
            return ["0", "-", "-", "-", "-", "-"]
        return [
            str(self.count),
            f"{self.mean:.2f}",
            f"{self.p50:.2f}",
            f"{self.p95:.2f}",
            f"{self.p99:.2f}",
            f"{self.worst:.2f}",
        ]


def summarize(history: History) -> dict[str, LatencySummary]:
    """Read/write latency summaries for all completed operations."""
    return {
        "read": LatencySummary.of(history.read_latencies()),
        "write": LatencySummary.of(history.write_latencies()),
    }


def throughput(history: History) -> float:
    """Completed operations per simulated second over the active window."""
    done = history.completed()
    if len(done) < 2:
        return 0.0
    start = min(op.invoke_time for op in done)
    end = max(op.response_time for op in done)
    if end <= start:
        return 0.0
    return len(done) / ((end - start) / 1000.0)
