"""Brute-force placement search for partial replication (Sec. 1.1).

The paper: "Through a brute force search, we found that the worst-case
latency for the best partial replication scheme where each DC stores at most
MB bits is 228ms."  With 4M objects in four equal groups and per-DC capacity
of M objects, each DC stores exactly one group; the search space is the
4^6 assignments of groups to the six DCs, filtered to those covering every
group.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from .latency import LatencyProfile, partial_replication_latency
from .topology import Topology

__all__ = ["PlacementResult", "search_partial_replication"]


@dataclass
class PlacementResult:
    """The winning assignment and its latency profile.

    ``assignment[dc]`` is the group stored at ``dc`` (an int when each DC
    stores one group, a tuple of ints with ``slots_per_dc > 1``).
    """

    assignment: tuple
    profile: LatencyProfile
    objective: str

    def placement_sets(self) -> list[set[int]]:
        return [
            {a} if isinstance(a, int) else set(a) for a in self.assignment
        ]

    def replicas(self, num_groups: int) -> dict[int, list[int]]:
        out: dict[int, list[int]] = {g: [] for g in range(num_groups)}
        for dc, groups in enumerate(self.placement_sets()):
            for g in groups:
                out[g].append(dc)
        return out


def search_partial_replication(
    topology: Topology,
    num_groups: int = 4,
    objective: str = "worst_case",
    slots_per_dc: int = 1,
) -> PlacementResult:
    """Exhaustively find the best replication placement.

    Each DC stores exactly ``slots_per_dc`` *distinct* object groups (the
    paper's Fig. 2 scenario is one group per DC).  ``objective`` is
    ``"worst_case"`` (ties broken by average, matching the paper's table)
    or ``"average"``.
    """
    if objective not in ("worst_case", "average"):
        raise ValueError("objective must be 'worst_case' or 'average'")
    if slots_per_dc < 1:
        raise ValueError("slots_per_dc must be positive")
    if slots_per_dc >= num_groups:
        # full replication: every DC stores everything
        full = [set(range(num_groups))] * topology.n
        profile = partial_replication_latency(topology, full, num_groups)
        return PlacementResult(
            tuple(tuple(range(num_groups)) for _ in range(topology.n)),
            profile,
            objective,
        )
    from itertools import combinations

    per_dc_options = list(combinations(range(num_groups), slots_per_dc))
    best: PlacementResult | None = None
    best_key: tuple[float, float] | None = None
    for assignment in product(per_dc_options, repeat=topology.n):
        covered = set()
        for slot in assignment:
            covered.update(slot)
        if len(covered) != num_groups:
            continue  # some group stored nowhere
        profile = partial_replication_latency(
            topology, [set(slot) for slot in assignment], num_groups
        )
        if objective == "worst_case":
            key = (profile.worst_case, profile.average)
        else:
            key = (profile.average, profile.worst_case)
        if best_key is None or key < best_key:
            best_key = key
            flat = (
                tuple(a[0] for a in assignment)
                if slots_per_dc == 1
                else tuple(assignment)
            )
            best = PlacementResult(flat, profile, objective)
    assert best is not None
    return best
