"""Transient-storage-overhead analysis (Sec. 4.2 and Appendix H).

CausalEC's only state that scales with object values in steady state is the
codeword symbol (Theorem 4.5); transiently, history lists hold recent
versions until garbage collection.  Appendix H models the expected history
occupancy per object via Little's law: versions arrive at the object's write
rate ``rho_w`` and reside for at most ~3 GC periods (a version may wait up
to ``T_gc`` for the first Garbage_Collection, and up to two GC rounds are
needed to propagate deletion watermarks), giving an expected occupancy of at
most ``3 * rho_w * T_gc`` extra values, i.e. ``3 * B * rho_w * T_gc`` bits.

(The brief announcement prints this bound as "3B/rho_w T_gc"; the Little's
law derivation it sketches -- and its own numerical example -- require the
product form, which is what we implement and validate by simulation in
``benchmarks/test_sec42_ycsb.py``.)

The YCSB-style analysis reproduces Sec. 4.2's numbers: with 120M objects,
Zipfian theta = 0.99, 200k req/s at 50% writes, more than 95% of objects see
``rho_w < 1/1000`` per second, and erasure coding those objects with a lazy
GC of T_gc = 2 min keeps the average storage cost near (1/k + epsilon)B.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.generators import zipf_harmonic

__all__ = [
    "zipf_write_rate",
    "fraction_below_rate",
    "history_overhead_values",
    "YcsbAnalysis",
    "analyze_ycsb",
]


def zipf_write_rate(
    rank: int, num_objects: int, theta: float, total_write_rate: float
) -> float:
    """Write arrival rate (1/s) of the object with popularity ``rank`` >= 1."""
    h = zipf_harmonic(num_objects, theta)
    return total_write_rate * (rank**-theta) / h


def fraction_below_rate(
    threshold: float, num_objects: int, theta: float, total_write_rate: float
) -> float:
    """Fraction of objects whose write rate is below ``threshold``.

    Zipf rates decrease in rank, so the set is a suffix of ranks; the
    boundary rank solves R * r^-theta / H < threshold.
    """
    h = zipf_harmonic(num_objects, theta)
    if total_write_rate <= 0:
        return 1.0
    boundary = (total_write_rate / (threshold * h)) ** (1.0 / theta)
    below = num_objects - min(num_objects, int(boundary))
    return below / num_objects


def history_overhead_values(rho_w: float, t_gc: float, rounds: float = 3.0) -> float:
    """Expected history-list occupancy (in object values) for one object.

    Little's law: arrival rate ``rho_w`` times residence time
    ``rounds * t_gc`` (a version waits up to one GC period and needs up to
    two further GC rounds of watermark propagation before deletion).
    """
    return rho_w * rounds * t_gc


@dataclass
class YcsbAnalysis:
    """Outputs of the Sec. 4.2 YCSB storage analysis."""

    num_objects: int
    theta: float
    total_write_rate: float
    t_gc: float
    k: int
    cold_fraction: float  # fraction of objects erasure coded
    fraction_below_threshold: float  # objects with rho_w < rate_threshold
    avg_overhead_values: float  # mean history occupancy per EC object (in B)
    avg_cost_per_ec_object: float  # (1/k + overhead) in units of B

    def summary(self) -> str:
        return (
            f"Zipf({self.theta}) x {self.num_objects:,} objects, "
            f"{self.total_write_rate:,.0f} writes/s, T_gc={self.t_gc:.0f}s: "
            f"{self.fraction_below_threshold:.1%} of objects below 1/1000 "
            f"writes/s; avg EC-object cost "
            f"{self.avg_cost_per_ec_object:.3f}B (code alone: {1/self.k:.3f}B)"
        )


def analyze_ycsb(
    num_objects: int = 120_000_000,
    theta: float = 0.99,
    throughput: float = 200_000.0,
    write_ratio: float = 0.5,
    t_gc: float = 120.0,
    k: int = 4,
    cold_fraction: float = 0.95,
    rate_threshold: float = 1e-3,
) -> YcsbAnalysis:
    """Reproduce the Sec. 4.2 coarse YCSB analysis.

    The hottest ``1 - cold_fraction`` of objects are replicated (as the
    paper suggests for very high write rates); the cold remainder are
    erasure coded with dimension ``k`` and pay the history-list overhead.
    """
    total_write_rate = throughput * write_ratio
    frac_below = fraction_below_rate(
        rate_threshold, num_objects, theta, total_write_rate
    )
    h = zipf_harmonic(num_objects, theta)
    first_cold_rank = int(num_objects * (1 - cold_fraction)) + 1
    # total write rate into the cold (erasure-coded) suffix of ranks
    head = zipf_harmonic(first_cold_rank - 1, theta) if first_cold_rank > 1 else 0.0
    cold_mass = max(0.0, (h - head) / h)
    cold_objects = num_objects - (first_cold_rank - 1)
    avg_rho_w = total_write_rate * cold_mass / cold_objects
    overhead = history_overhead_values(avg_rho_w, t_gc)
    return YcsbAnalysis(
        num_objects=num_objects,
        theta=theta,
        total_write_rate=total_write_rate,
        t_gc=t_gc,
        k=k,
        cold_fraction=cold_fraction,
        fraction_below_threshold=frac_below,
        avg_overhead_values=overhead,
        avg_cost_per_ec_object=1.0 / k + overhead,
    )
