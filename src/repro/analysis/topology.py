"""The Fig. 1 topology: six AWS regions and their round-trip times.

The matrix below is transcribed verbatim from Fig. 1 of the paper
(measured over the AWS public cloud via cloudping in Oct 2021).  Note the
printed matrix is slightly asymmetric (Seoul->Oregon is 126 ms while
Oregon->Seoul is 146 ms); we keep it exactly as printed and document the
resulting sub-millisecond deltas against the paper's headline numbers in
EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

__all__ = ["REGIONS", "AWS_SIX_DC_RTT", "rtt_matrix", "Topology"]

REGIONS = ["Seoul", "Mumbai", "Ireland", "London", "N. California", "Oregon"]

#: Fig. 1 round-trip times in milliseconds, row = source region.
AWS_SIX_DC_RTT = np.array(
    [
        # Seoul Mumbai Ireland London N.Cal Oregon
        [0, 120, 230, 240, 138, 126],  # Seoul
        [120, 0, 121, 113, 228, 220],  # Mumbai
        [230, 121, 0, 13, 138, 126],  # Ireland
        [240, 113, 13, 0, 146, 137],  # London
        [138, 228, 138, 146, 0, 22],  # N. California
        [146, 220, 126, 137, 22, 0],  # Oregon
    ],
    dtype=float,
)


def rtt_matrix() -> np.ndarray:
    """A fresh copy of the Fig. 1 RTT matrix (ms)."""
    return AWS_SIX_DC_RTT.copy()


class Topology:
    """A named set of datacenters with pairwise round-trip times."""

    def __init__(self, rtt: np.ndarray, names: list[str] | None = None):
        rtt = np.asarray(rtt, dtype=float)
        if rtt.ndim != 2 or rtt.shape[0] != rtt.shape[1]:
            raise ValueError("rtt must be square")
        if np.any(np.diag(rtt) != 0):
            raise ValueError("self-RTT must be zero")
        self.rtt = rtt
        self.n = rtt.shape[0]
        self.names = names or [f"DC{i}" for i in range(self.n)]

    @classmethod
    def aws_six_dc(cls) -> "Topology":
        return cls(rtt_matrix(), list(REGIONS))

    def nearest_neighbors(self, src: int) -> list[int]:
        """Other DCs sorted by RTT from ``src`` (nearest first)."""
        others = [d for d in range(self.n) if d != src]
        return sorted(others, key=lambda d: self.rtt[src, d])

    def kth_nearest_rtt(self, src: int, k: int) -> float:
        """RTT to the k-th nearest *other* DC (k >= 1)."""
        return float(self.rtt[src, self.nearest_neighbors(src)[k - 1]])

    def cloned(self, copies: int) -> "Topology":
        """Each DC duplicated ``copies`` times, zero RTT between clones.

        Models per-DC storage of ``copies`` codeword symbols for tools that
        assume one symbol per node (the code designer, RS placement): clone
        index ``dc * copies + j`` lives at DC ``dc``.
        """
        if copies < 1:
            raise ValueError("copies must be positive")
        big = np.repeat(np.repeat(self.rtt, copies, axis=0), copies, axis=1)
        np.fill_diagonal(big, 0.0)
        # clones of the same DC are co-located
        for dc in range(self.n):
            lo, hi = dc * copies, (dc + 1) * copies
            big[lo:hi, lo:hi] = 0.0
        names = [
            f"{self.names[dc]}#{j}" for dc in range(self.n) for j in range(copies)
        ]
        return Topology(big, names)
