"""Shared machinery for the baseline protocols: causal broadcast + LWW store.

All three baselines (full replication, partial replication, intra-object
erasure coding) propagate writes with the same vector-clock-predicated
causal broadcast CausalEC uses (the classic Ahamad et al. scheme [4]):
a write increments the home server's clock, is acked immediately (local
writes), and is shipped to every other server in an ``app`` message that is
applied only once its causal predecessors have been applied.

Subclasses decide what a server *stores* when a write is applied and how
reads are served.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..core.messages import (
    App,
    CostModel,
    ReadRequest,
    ReadReturn,
    WriteAck,
    WriteRequest,
)
from ..core.state import InQueue, InQueueEntry
from ..core.tags import Tag, VectorClock, zero_tag
from ..sim.network import Network
from ..sim.node import Node
from ..sim.scheduler import Scheduler

__all__ = ["CausalBroadcastServer", "LWWRegister"]


class LWWRegister:
    """A last-writer-wins register: the tag-maximal (tag, value) seen."""

    __slots__ = ("tag", "value")

    def __init__(self, tag: Tag, value: np.ndarray):
        self.tag = tag
        self.value = value

    def update(self, tag: Tag, value: np.ndarray) -> bool:
        if tag > self.tag:
            self.tag = tag
            self.value = value
            return True
        return False


class CausalBroadcastServer(Node):
    """Base server: local writes + causally ordered application."""

    def __init__(
        self,
        node_id: int,
        scheduler: Scheduler,
        network: Network,
        num_servers: int,
        num_objects: int,
        cost_model: CostModel | None = None,
    ):
        super().__init__(node_id, scheduler, network)
        self.num_servers = num_servers
        self.num_objects = num_objects
        self.cost = cost_model or CostModel()
        self.vc = VectorClock.zero(num_servers)
        self.zero = zero_tag(num_servers)
        self.inqueue = InQueue()
        self._others = [i for i in range(num_servers) if i != node_id]
        self._opid_counter = itertools.count()

    # ------------------------------------------------------------------

    def _sized(self, msg, n_values: float = 0.0, n_tags: float = 0.0):
        msg.size_bits = self.cost.size(n_values, n_tags)
        return msg

    def on_message(self, src: int, msg: object) -> None:
        if isinstance(msg, WriteRequest):
            self._on_write(src, msg)
        elif isinstance(msg, ReadRequest):
            self.serve_read(src, msg)
        elif isinstance(msg, App):
            self.inqueue.add(InQueueEntry(src, msg.obj, msg.value, msg.tag))
        else:
            self.on_protocol_message(src, msg)
        self._apply_inqueue()

    def _on_write(self, client: int, msg: WriteRequest) -> None:
        self.vc = self.vc.increment(self.node_id)
        tag = Tag(self.vc, client)
        self.apply_write(msg.obj, msg.value, tag, local=True)
        ack = WriteAck(msg.opid)
        ack.ts = self.vc
        ack.tag = tag
        self.send(client, self._sized(ack))
        for j in self._others:
            self.send(j, self._sized(App(msg.obj, msg.value, tag), 1, 1))

    def _apply_inqueue(self) -> None:
        while True:
            e = self.inqueue.pop_applicable(self.vc)
            if e is None:
                return
            self.vc = self.vc.with_component(e.sender, e.tag.ts[e.sender])
            self.apply_write(e.obj, e.value, e.tag, local=False)

    def _read_return(self, client: int, opid, value, value_tag: Tag) -> None:
        msg = ReadReturn(opid, value)
        msg.ts = self.vc
        msg.value_tag = value_tag
        self.send(client, self._sized(msg, 1))

    # ------------------------------------------------------------------
    # subclass hooks

    def apply_write(self, obj: int, value, tag: Tag, local: bool) -> None:
        raise NotImplementedError

    def serve_read(self, client: int, msg: ReadRequest) -> None:
        raise NotImplementedError

    def on_protocol_message(self, src: int, msg: object) -> None:
        raise TypeError(f"unexpected message {msg!r}")
