"""Shared machinery for the baseline protocols: causal broadcast + LWW store.

The causal-broadcast protocol itself (the classic Ahamad et al. scheme [4])
lives in :class:`~repro.protocol.broadcast_core.CausalBroadcastCore`, a
sans-I/O state machine; :class:`CausalBroadcastServer` mixes it with the
discrete-event :class:`~repro.runtime.sim.EffectNode` adapter so baseline
servers run inside the simulator exactly as before.  Baseline protocol
subclasses override the core's hooks (``apply_write`` / ``serve_read`` /
``on_protocol_message``) and emit effects; they stay pure, so any runtime
that can drive a :class:`~repro.protocol.effects.ProtocolCore` can host
them.
"""

from __future__ import annotations

import numpy as np

from ..core.messages import CostModel
from ..core.tags import Tag
from ..protocol.broadcast_core import CausalBroadcastCore
from ..runtime.sim import EffectNode
from ..sim.network import Network
from ..sim.node import Node
from ..sim.scheduler import Scheduler

__all__ = ["CausalBroadcastServer", "CausalBroadcastCore", "LWWRegister"]


class LWWRegister:
    """A last-writer-wins register: the tag-maximal (tag, value) seen."""

    __slots__ = ("tag", "value")

    def __init__(self, tag: Tag, value: np.ndarray):
        self.tag = tag
        self.value = value

    def update(self, tag: Tag, value: np.ndarray) -> bool:
        if tag > self.tag:
            self.tag = tag
            self.value = value
            return True
        return False


class CausalBroadcastServer(EffectNode, CausalBroadcastCore):
    """Base simulated server: local writes + causally ordered application."""

    def __init__(
        self,
        node_id: int,
        scheduler: Scheduler,
        network: Network,
        num_servers: int,
        num_objects: int,
        cost_model: CostModel | None = None,
    ):
        Node.__init__(self, node_id, scheduler, network)
        CausalBroadcastCore.__init__(
            self, node_id, num_servers, num_objects, cost_model
        )
