"""Baseline: fully replicated causal memory (Ahamad et al. [4] style).

Every server stores every object; writes are local and propagate via causal
broadcast; reads are always local.  This is the classical causally
consistent data store the paper's introduction starts from: minimal latency
(every operation local), maximal storage cost (K objects per server).

The protocol stamps the same certificate CausalEC does, so the Definition 5
checker applies in full.
"""

from __future__ import annotations

import numpy as np

from ..core.cluster import Cluster
from ..core.messages import CostModel, ReadRequest
from ..core.tags import Tag
from ..sim.network import LatencyModel
from .base import CausalBroadcastServer, LWWRegister

__all__ = ["FullReplicationServer", "FullReplicationCluster"]


class FullReplicationServer(CausalBroadcastServer):
    """Stores an LWW register per object; serves every read locally."""

    def __init__(self, node_id, scheduler, network, num_servers, num_objects,
                 value_len: int = 1, cost_model: CostModel | None = None):
        super().__init__(
            node_id, scheduler, network, num_servers, num_objects, cost_model
        )
        self.value_len = value_len
        self.store: dict[int, LWWRegister] = {
            x: LWWRegister(self.zero, np.zeros(value_len, dtype=np.int64))
            for x in range(num_objects)
        }

    def apply_write(self, obj: int, value, tag: Tag, local: bool) -> None:
        self.store[obj].update(tag, value)

    def serve_read(self, client: int, msg: ReadRequest) -> None:
        reg = self.store[msg.obj]
        self._read_return(client, msg.opid, reg.value, reg.tag)

    def stored_values(self) -> int:
        """Object values held: always K (full replication)."""
        return self.num_objects


class FullReplicationCluster(Cluster):
    """A cluster of fully replicating causal-memory servers."""

    def __init__(
        self,
        num_servers: int,
        num_objects: int,
        value_len: int = 1,
        latency: LatencyModel | None = None,
        seed: int = 0,
        cost_model: CostModel | None = None,
    ):
        super().__init__(num_servers, latency=latency, seed=seed)
        self.num_objects = num_objects
        self.value_len = value_len
        self.servers = [
            FullReplicationServer(
                i, self.scheduler, self.network, num_servers, num_objects,
                value_len, cost_model,
            )
            for i in range(num_servers)
        ]
