"""Baseline: intra-object erasure coding (the conventional approach).

The "fragment and encode" scheme of [15, 29, 13, 27, 18, 22]: each object
value is partitioned into ``k`` data fragments, encoded with an (N, k) MDS
code, and server ``i`` stores the i-th codeword fragment of every object.
No server stores any object in its entirety, so -- as the paper emphasises
-- *every* read must contact ``k-1`` remote servers (one fragment is local),
paying the round-trip time to the (k-1)-th nearest neighbour.

Writes propagate causally: fragment updates ride the same vector-clock
predicated broadcast as the other baselines, so servers apply versions in
causal order.  Servers keep a short per-object version history so that a
reader can always assemble ``k`` fragments of a *common* version even under
concurrent writes (the paper's footnote on history in erasure-coded stores
[43, 14]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.cluster import Cluster
from ..core.messages import (
    App,
    CostModel,
    ReadRequest,
    WriteAck,
    WriteRequest,
    _Message,
)
from ..core.tags import Tag
from ..ec.code import LinearCode
from ..ec.codes import reed_solomon_code
from ..ec.field import Field, default_field
from ..sim.network import LatencyModel
from .base import CausalBroadcastServer

__all__ = ["IntraObjectServer", "IntraObjectCluster", "FragRead", "FragReadResp"]

#: versions retained per object at each server (enough to bridge the
#: propagation window of concurrent writes under the simulated latencies)
HISTORY_DEPTH = 8


@dataclass
class FragRead(_Message):
    """Reader's server -> peer: send your fragment versions of X."""

    kind = "frag_read"
    opid: Any
    obj: int


@dataclass
class FragReadResp(_Message):
    """Peer -> reader's server: recent (tag, fragment) versions."""

    kind = "frag_read_resp"
    opid: Any
    obj: int
    versions: list  # [(tag, fragment-symbol)]


@dataclass
class _PendingFragRead:
    client: int
    opid: Any
    obj: int
    responses: dict[int, dict[Tag, np.ndarray]]


class IntraObjectServer(CausalBroadcastServer):
    """Stores one MDS fragment per object; reads assemble k fragments."""

    def __init__(
        self,
        node_id,
        scheduler,
        network,
        num_servers,
        num_objects,
        frag_code: LinearCode,
        value_len: int,
        rtt: np.ndarray | None = None,
        cost_model: CostModel | None = None,
    ):
        super().__init__(
            node_id, scheduler, network, num_servers, num_objects, cost_model
        )
        self.frag_code = frag_code  # (N, k) code over fragments
        self.k = frag_code.K
        self.value_len = value_len
        self.frag_len = value_len // self.k
        self.rtt = rtt
        # obj -> {tag: fragment symbol}; the zero tag is implicit (zeros)
        self.store: dict[int, dict[Tag, np.ndarray]] = {
            x: {} for x in range(num_objects)
        }
        self._pending: dict[Any, _PendingFragRead] = {}
        self.remote_fetches = 0

    # ------------------------------------------------------------------
    # writes: encode into N fragments, distribute causally

    def _on_write(self, client: int, msg: WriteRequest) -> None:
        self.vc = self.vc.increment(self.node_id)
        tag = Tag(self.vc, client)
        frags = self._fragment(msg.value)
        # all N fragment symbols come out of one stacked field-matmul
        symbols = self.frag_code.encode_all(frags)
        for j in self._others:
            self._emit_send(
                j, self._sized(App(msg.obj, symbols[j], tag), 1.0 / self.k, 1)
            )
        self.apply_write(msg.obj, symbols[self.node_id], tag, True)
        ack = WriteAck(msg.opid)
        ack.ts = self.vc
        ack.tag = tag
        self._emit_reply(client, self._sized(ack))

    def _fragment(self, value: np.ndarray) -> list[np.ndarray]:
        value = np.asarray(value)
        if value.size != self.value_len:
            raise ValueError("value length mismatch")
        return [
            value[i * self.frag_len : (i + 1) * self.frag_len]
            for i in range(self.k)
        ]

    def apply_write(self, obj: int, symbol, tag: Tag, local: bool) -> None:
        """Store the causally applied fragment, keeping a short history."""
        versions = self.store[obj]
        versions[tag] = np.asarray(symbol).reshape(1, self.frag_len)
        if len(versions) > HISTORY_DEPTH:
            for stale in sorted(versions)[: len(versions) - HISTORY_DEPTH]:
                del versions[stale]
        self._recheck_pending(obj)

    # ------------------------------------------------------------------
    # reads: gather k same-version fragments, decode

    def serve_read(self, client: int, msg: ReadRequest) -> None:
        """Gather k same-version fragments (one local) and decode."""
        if self.k == 1:
            # degenerate: the local "fragment" is the whole value
            versions = self.store[msg.obj]
            if versions:
                tag = max(versions)
                self._read_return(client, msg.opid, versions[tag][0], tag)
            else:
                self._read_return(
                    client, msg.opid, np.zeros(self.value_len, dtype=np.int64),
                    self.zero,
                )
            return
        self.remote_fetches += 1
        pend = _PendingFragRead(client, msg.opid, msg.obj, {})
        self._pending[msg.opid] = pend
        for j in self._fetch_targets():
            self._emit_send(j, self._sized(FragRead(msg.opid, msg.obj)))

    def _fetch_targets(self) -> list[int]:
        """The k-1 nearest other servers (Sec. 1.1's latency analysis)."""
        others = list(self._others)
        if self.rtt is not None:
            others.sort(key=lambda j: float(self.rtt[self.node_id, j]))
        return others[: self.k - 1]

    def on_protocol_message(self, src: int, msg: object) -> None:
        if isinstance(msg, FragRead):
            versions = [(t, v) for t, v in self.store[msg.obj].items()]
            resp = FragReadResp(msg.opid, msg.obj, versions)
            self._emit_send(src, self._sized(resp, 1.0 / self.k, len(versions)))
        elif isinstance(msg, FragReadResp):
            pend = self._pending.get(msg.opid)
            if pend is None:
                return
            pend.responses[src] = {t: np.asarray(v) for t, v in msg.versions}
            self._try_complete(pend)
        else:
            super().on_protocol_message(src, msg)

    def _recheck_pending(self, obj: int) -> None:
        for pend in list(self._pending.values()):
            if pend.obj == obj:
                self._try_complete(pend)

    def _try_complete(self, pend: _PendingFragRead) -> None:
        """Decode once k servers share a version (highest such version)."""
        if len(pend.responses) < self.k - 1:
            return
        holders: dict[Tag, dict[int, np.ndarray]] = {}
        own = self.store[pend.obj]
        for tag, sym in own.items():
            holders.setdefault(tag, {})[self.node_id] = sym
        for server, versions in pend.responses.items():
            for tag, sym in versions.items():
                holders.setdefault(tag, {})[server] = sym.reshape(1, self.frag_len)
        candidates = [t for t, h in holders.items() if len(h) >= self.k]
        if candidates:
            tag = max(candidates)
            symbols = holders[tag]
            chosen = dict(list(symbols.items())[: self.k])
            value = self._decode(chosen)
            self._pending.pop(pend.opid, None)
            self._read_return(pend.client, pend.opid, value, tag)
        elif not own and not any(pend.responses.values()):
            # nothing written anywhere yet: the initial value
            self._pending.pop(pend.opid, None)
            self._read_return(
                pend.client, pend.opid,
                np.zeros(self.value_len, dtype=np.int64), self.zero,
            )
        # else: wait for more fragment updates to propagate

    def _decode(self, symbols: dict[int, np.ndarray]) -> np.ndarray:
        # recover all k fragments with one batched field-matmul
        frags = self.frag_code.decode_many(range(self.k), symbols)
        if frags is None:  # pragma: no cover - callers pass k MDS symbols
            raise ValueError("provided symbols do not recover all fragments")
        return np.concatenate(frags)

    def stored_values(self) -> float:
        """Object-value equivalents held: K/k in steady state."""
        return self.num_objects / self.k


class IntraObjectCluster(Cluster):
    """An intra-object erasure-coded store with an (N, k) MDS code."""

    def __init__(
        self,
        num_servers: int,
        num_objects: int,
        k: int,
        value_len: int | None = None,
        field: Field | None = None,
        latency: LatencyModel | None = None,
        rtt: np.ndarray | None = None,
        seed: int = 0,
        cost_model: CostModel | None = None,
    ):
        super().__init__(num_servers, latency=latency, seed=seed)
        field = field or default_field()
        value_len = value_len or k
        if value_len % k:
            raise ValueError("value_len must be divisible by k")
        self.num_objects = num_objects
        self.value_len = value_len
        self.k = k
        self.frag_code = reed_solomon_code(
            field, num_servers, k, value_len=value_len // k
        )
        self.servers = [
            IntraObjectServer(
                i, self.scheduler, self.network, num_servers, num_objects,
                self.frag_code, value_len, rtt, cost_model,
            )
            for i in range(num_servers)
        ]
