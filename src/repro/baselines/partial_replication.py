"""Baseline: partially replicated causal store (Appendix A's comparator).

Each server stores only a subset of the objects (its *placement*), but --
exactly as Appendix A argues is necessary for non-blocking liveness -- every
write still propagates its value to every server so that causal metadata
advances everywhere.  Reads of locally stored objects are local; reads of
other objects are forwarded to the nearest replica.

Two remote-read modes capture the trade-off the paper discusses:

* ``blocking=False`` (default): the remote replica's current version is
  returned immediately.  This achieves the Fig. 2 latencies but, as the
  paper notes for [49], can violate causality: the replica may not yet have
  applied a write in the client's causal past.
* ``blocking=True``: the home server withholds the response until its own
  vector clock dominates the returned write's timestamp ([49]-style
  buffering).  Causally safe, but reads can block arbitrarily long -- the
  behaviour CausalEC's requirement (II) is designed to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.cluster import Cluster
from ..core.messages import CostModel, ReadRequest, _Message
from ..core.tags import Tag
from ..sim.network import LatencyModel
from .base import CausalBroadcastServer, LWWRegister

__all__ = [
    "PartialReplicationServer",
    "PartialReplicationCluster",
    "RemoteRead",
    "RemoteReadResp",
]


@dataclass
class RemoteRead(_Message):
    """Home server -> replica: fetch an object it does not store."""

    kind = "remote_read"
    opid: Any
    obj: int


@dataclass
class RemoteReadResp(_Message):
    """Replica -> home server: the object's current version."""

    kind = "remote_read_resp"
    opid: Any
    obj: int
    value: np.ndarray
    tag: Tag


@dataclass
class _PendingRemote:
    client: int
    opid: Any
    obj: int
    value: np.ndarray | None = None
    tag: Tag | None = None


class PartialReplicationServer(CausalBroadcastServer):
    """Stores LWW registers for its placement; forwards other reads."""

    def __init__(
        self,
        node_id,
        scheduler,
        network,
        num_servers,
        num_objects,
        placement: frozenset[int],
        replicas_of,
        value_len: int = 1,
        rtt: np.ndarray | None = None,
        blocking: bool = False,
        cost_model: CostModel | None = None,
    ):
        super().__init__(
            node_id, scheduler, network, num_servers, num_objects, cost_model
        )
        self.placement = placement
        self._replicas_of = replicas_of
        self.value_len = value_len
        self.rtt = rtt
        self.blocking = blocking
        self.store: dict[int, LWWRegister] = {
            x: LWWRegister(self.zero, np.zeros(value_len, dtype=np.int64))
            for x in placement
        }
        self._pending: dict[Any, _PendingRemote] = {}
        self.remote_reads = 0

    # ------------------------------------------------------------------

    def apply_write(self, obj: int, value, tag: Tag, local: bool) -> None:
        if obj in self.placement:
            self.store[obj].update(tag, value)
        if self.blocking:
            self._flush_blocked()

    def serve_read(self, client: int, msg: ReadRequest) -> None:
        """Local read when stored here; otherwise fetch from the nearest
        replica (buffering causally in blocking mode)."""
        if msg.obj in self.placement:
            reg = self.store[msg.obj]
            self._read_return(client, msg.opid, reg.value, reg.tag)
            return
        self.remote_reads += 1
        target = self._nearest_replica(msg.obj)
        self._pending[msg.opid] = _PendingRemote(client, msg.opid, msg.obj)
        self._emit_send(target, self._sized(RemoteRead(msg.opid, msg.obj)))

    def _nearest_replica(self, obj: int) -> int:
        replicas = self._replicas_of(obj)
        if not replicas:
            raise ValueError(f"object {obj} is stored nowhere")
        if self.rtt is None:
            return min(replicas)
        return min(replicas, key=lambda r: float(self.rtt[self.node_id, r]))

    def on_protocol_message(self, src: int, msg: object) -> None:
        if isinstance(msg, RemoteRead):
            reg = self.store.get(msg.obj)
            if reg is None:
                return  # mis-routed; reliable channels make this unreachable
            resp = RemoteReadResp(msg.opid, msg.obj, reg.value, reg.tag)
            self._emit_send(src, self._sized(resp, 1, 1))
        elif isinstance(msg, RemoteReadResp):
            pend = self._pending.get(msg.opid)
            if pend is None:
                return
            pend.value, pend.tag = msg.value, msg.tag
            if not self.blocking:
                self._complete_remote(pend)
            else:
                self._flush_blocked()
        else:
            super().on_protocol_message(src, msg)

    def _complete_remote(self, pend: _PendingRemote) -> None:
        self._pending.pop(pend.opid, None)
        self._read_return(pend.client, pend.opid, pend.value, pend.tag)

    def _flush_blocked(self) -> None:
        """Blocking mode: release responses whose writes we have applied."""
        ready = [
            p
            for p in self._pending.values()
            if p.tag is not None and p.tag.ts.leq(self.vc)
        ]
        for p in ready:
            self._complete_remote(p)

    def stored_values(self) -> int:
        return len(self.placement)


class PartialReplicationCluster(Cluster):
    """A partially replicated causal store over an explicit placement."""

    def __init__(
        self,
        num_servers: int,
        num_objects: int,
        placement: dict[int, set[int]] | list[set[int]],
        value_len: int = 1,
        latency: LatencyModel | None = None,
        rtt: np.ndarray | None = None,
        blocking: bool = False,
        seed: int = 0,
        cost_model: CostModel | None = None,
    ):
        super().__init__(num_servers, latency=latency, seed=seed)
        self.num_objects = num_objects
        self.value_len = value_len
        if isinstance(placement, dict):
            placement = [set(placement.get(s, ())) for s in range(num_servers)]
        self.placement = [frozenset(p) for p in placement]
        replicas: dict[int, list[int]] = {x: [] for x in range(num_objects)}
        for s, objs in enumerate(self.placement):
            for x in objs:
                replicas[x].append(s)
        self._replicas = replicas
        self.servers = [
            PartialReplicationServer(
                i,
                self.scheduler,
                self.network,
                num_servers,
                num_objects,
                self.placement[i],
                lambda obj: self._replicas[obj],
                value_len,
                rtt,
                blocking,
                cost_model,
            )
            for i in range(num_servers)
        ]
