"""Baseline data-store protocols the paper compares against (Fig. 2)."""

from .full_replication import FullReplicationCluster, FullReplicationServer
from .intra_object import IntraObjectCluster, IntraObjectServer
from .partial_replication import (
    PartialReplicationCluster,
    PartialReplicationServer,
)

__all__ = [
    "FullReplicationCluster",
    "FullReplicationServer",
    "PartialReplicationCluster",
    "PartialReplicationServer",
    "IntraObjectCluster",
    "IntraObjectServer",
]
