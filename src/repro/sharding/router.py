"""Sticky shard router: key -> (shard, slot, generation) with fences.

The :class:`~repro.sharding.ring.HashRing` decides *which shard* owns a
key; the router additionally pins the key to a concrete codeword slot
(an object index ``x`` inside that shard's CausalEC group) and keeps
that assignment **sticky**: a key's slot never changes except when a
view change moves the key to another shard.  Slots freed by migration
are not reused within a run, so a slot identifies one key for the whole
execution -- which is what lets the online auditor map per-shard object
indices back to global keys.

Migration fencing (the live coordinator drives this):

* :meth:`begin_move` marks a key as mid-migration.  New **writes** block
  on :meth:`wait_movable` until the move finishes; **reads** keep
  routing to the old owner (:meth:`location` still returns the old
  location until :meth:`finish_move`), per the epoch-fenced cutover
  rule "reads are served from the old owner until the new owner's
  migration watermark covers the key".
* Sessions bracket every operation with :meth:`op_started` /
  :meth:`op_finished`; :meth:`drain_writes` lets the coordinator wait
  until no write that was admitted before the fence is still in flight,
  so the migration read observes every acknowledged write.
* :meth:`finish_move` flips the routing table to the new location,
  bumps the key's generation, and records the **cutover floor** -- the
  destination shard's vector clock at the instant the migrated value
  was installed.  Sessions merge this floor into their destination-
  shard session timestamp for every later operation on the key, which
  parks those requests server-side until the migrated value is visible
  (the migration watermark).

The async helpers create their :class:`asyncio.Event` objects lazily,
so the same router drives the single-threaded simulator (which never
calls them) and the live asyncio runtime.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Iterable

from .ring import HashRing

__all__ = ["ShardLocation", "ShardRouter", "KeyMigrating"]


class KeyMigrating(RuntimeError):
    """Raised by sync callers that hit a key mid-migration."""


@dataclass(frozen=True)
class ShardLocation:
    """Where a key lives: shard id, codeword slot, migration generation."""

    shard: int
    slot: int
    gen: int


class ShardRouter:
    """Sticky key placement over a consistent-hash ring."""

    def __init__(self, ring: HashRing, slots_per_shard: int):
        self.ring = ring
        self.slots_per_shard = slots_per_shard
        self.view_version = 0
        self._table: dict[Any, ShardLocation] = {}
        self._used: dict[int, set[int]] = {s: set() for s in ring.shards}
        self._floors: dict[Any, Any] = {}  # key -> cutover VectorClock
        self._moving: set[Any] = set()
        self._inflight_writes: dict[Any, int] = {}
        self._move_events: dict[Any, asyncio.Event] = {}
        self._drain_events: dict[Any, asyncio.Event] = {}

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def build(
        cls,
        keys: Iterable[Any],
        num_shards: int,
        slots_per_shard: int,
        vnodes: int = 64,
    ) -> "ShardRouter":
        """Epoch-0 placement: every key on its ring owner, slots in a
        deterministic (sorted-key) order."""
        ring = HashRing(range(num_shards), vnodes=vnodes)
        router = cls(ring, slots_per_shard)
        for key in sorted(keys, key=str):
            router._assign(key, ring.lookup(key), gen=0)
        return router

    @classmethod
    def from_placement(
        cls,
        placement: dict[Any, tuple[int, int]],
        vnodes: int = 64,
    ) -> "ShardRouter":
        """Wrap an explicit ``{key: (shard, slot)}`` placement (legacy
        grouped stores); ring points are created for the named shards so
        later view changes still work."""
        shards = sorted({shard for shard, _ in placement.values()})
        slots = 1 + max(
            (slot for _, slot in placement.values()), default=0
        )
        ring = HashRing(shards, vnodes=vnodes)
        router = cls(ring, slots)
        for key, (shard, slot) in placement.items():
            if slot in router._used[shard]:
                raise ValueError(f"slot {slot} of shard {shard} assigned twice")
            router._table[key] = ShardLocation(shard, slot, 0)
            router._used[shard].add(slot)
        return router

    def _assign(self, key, shard: int, gen: int) -> ShardLocation:
        slot = self._free_slot(shard)
        loc = ShardLocation(shard, slot, gen)
        self._table[key] = loc
        self._used[shard].add(slot)
        return loc

    def _free_slot(self, shard: int) -> int:
        used = self._used.setdefault(shard, set())
        for slot in range(self.slots_per_shard):
            if slot not in used:
                return slot
        raise ValueError(
            f"shard {shard} has no free slot "
            f"(capacity {self.slots_per_shard})"
        )

    # ------------------------------------------------------------------
    # lookup

    @property
    def keys(self) -> tuple:
        return tuple(self._table)

    def location(self, key) -> ShardLocation:
        """Current location; the *old* owner while a move is in flight."""
        return self._table[key]

    def locate(self, key) -> tuple[int, int]:
        """Compatibility form: ``(shard, slot)``."""
        loc = self._table[key]
        return (loc.shard, loc.slot)

    def keys_on(self, shard: int) -> list:
        return [k for k, loc in self._table.items() if loc.shard == shard]

    def moving(self, key) -> bool:
        return key in self._moving

    def cutover_floor(self, key):
        """The destination vector clock recorded at cutover, or None."""
        return self._floors.get(key)

    # ------------------------------------------------------------------
    # migration fencing

    def begin_move(self, key) -> ShardLocation:
        """Fence ``key``: new writes block, reads stay on the old owner."""
        if key not in self._table:
            raise KeyError(key)
        self._moving.add(key)
        return self._table[key]

    def finish_move(
        self, key, shard: int, slot: int, gen: int, cutover_floor=None
    ) -> ShardLocation:
        """Cut over: flip the table, record the watermark, release writes."""
        loc = ShardLocation(shard, slot, gen)
        self._table[key] = loc
        self._used.setdefault(shard, set()).add(slot)
        if cutover_floor is not None:
            self._floors[key] = cutover_floor
        self._moving.discard(key)
        evt = self._move_events.pop(key, None)
        if evt is not None:
            evt.set()
        return loc

    def op_started(self, key, write: bool) -> None:
        if write:
            self._inflight_writes[key] = self._inflight_writes.get(key, 0) + 1

    def op_finished(self, key, write: bool) -> None:
        if write:
            n = self._inflight_writes.get(key, 0) - 1
            if n <= 0:
                self._inflight_writes.pop(key, None)
                evt = self._drain_events.pop(key, None)
                if evt is not None:
                    evt.set()
            else:
                self._inflight_writes[key] = n

    async def wait_movable(self, key) -> None:
        """Block (writes only) while ``key`` is mid-migration."""
        while key in self._moving:
            evt = self._move_events.setdefault(key, asyncio.Event())
            await evt.wait()

    async def drain_writes(self, key) -> None:
        """Coordinator: after :meth:`begin_move`, wait until every write
        admitted before the fence has settled."""
        while self._inflight_writes.get(key, 0) > 0:
            evt = self._drain_events.setdefault(key, asyncio.Event())
            await evt.wait()

    # ------------------------------------------------------------------
    # view bookkeeping

    def commit_view(self, change) -> None:
        """Apply a completed :class:`~repro.sharding.view.ViewChange`:
        mutate the ring membership and bump the epoch."""
        for s in change.added:
            if s not in self.ring:
                self.ring.add_shard(s)
            self._used.setdefault(s, set())
        for s in change.removed:
            if s in self.ring:
                self.ring.remove_shard(s)
        self.view_version = change.version
