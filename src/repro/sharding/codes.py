"""Default per-shard code choice.

A shard's CausalEC group spans ``slots_per_shard`` objects (one codeword
slot per key it can host).  A systematic Reed-Solomon code needs at
least K servers, so when a shard's slot capacity exceeds its server
count the default falls back to full replication -- every guarantee is
uniform either way, only the storage cost differs (the same trade the
paper's Sec. 4.2 grouping analysis makes).
"""

from __future__ import annotations

from ..ec.code import LinearCode
from ..ec.codes import reed_solomon_code, replication_code

__all__ = ["default_shard_code"]


def default_shard_code(
    num_servers: int, num_objects: int, value_len: int
) -> LinearCode:
    """RS(N, K) when K <= N, full replication otherwise."""
    if num_objects <= num_servers:
        return reed_solomon_code(
            None,
            num_servers=num_servers,
            num_objects=num_objects,
            value_len=value_len,
        )
    return replication_code(
        None,
        num_servers=num_servers,
        num_objects=num_objects,
        value_len=value_len,
    )
