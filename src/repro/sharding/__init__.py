"""Horizontal sharding: consistent-hash routing over CausalEC groups.

CausalEC (Cadambe & Lyu, PODC 2023) is specified for a *single* coding
group over a fixed object set.  This package scales the reproduction out
horizontally: a :class:`~repro.sharding.ring.HashRing` (consistent
hashing with virtual nodes) maps keys to independent CausalEC coding
groups -- each shard runs its own servers, vector clock, codeword and GC
-- and a :class:`~repro.sharding.router.ShardRouter` pins every key to a
``(shard, slot, generation)`` location with sticky slots, per-key
migration fences and post-migration causal floors.

:mod:`repro.sharding.view` plans **view changes** (ring epochs): adding
or removing a shard moves only the ~K/S keys whose ring owner changed;
the runtime coordinators (:mod:`repro.sharding.sim_store` for the
discrete-event simulator, :mod:`repro.runtime.sharded_rt` for the live
asyncio cluster) migrate those keys over the existing channels with an
epoch-fenced cutover.
"""

from .ring import (
    DuplicateShardError,
    EmptyRingError,
    HashRing,
    LastShardError,
    RingError,
    UnknownShardError,
    ZeroVnodeError,
)
from .router import KeyMigrating, ShardLocation, ShardRouter
from .view import KeyMove, ViewChange, plan_view_change

__all__ = [
    "HashRing",
    "RingError",
    "EmptyRingError",
    "UnknownShardError",
    "DuplicateShardError",
    "LastShardError",
    "ZeroVnodeError",
    "ShardLocation",
    "ShardRouter",
    "KeyMigrating",
    "KeyMove",
    "ViewChange",
    "plan_view_change",
]
