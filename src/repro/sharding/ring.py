"""Consistent-hash ring with virtual nodes.

Each shard contributes ``vnodes`` points on a 64-bit ring; a key is
owned by the shard whose point follows the key's hash clockwise.  Two
properties matter for the sharded store:

* **balance** -- with enough virtual nodes (>= 128) every shard owns a
  near-equal arc of the ring, so keys spread evenly;
* **minimal movement** -- adding a shard steals only the keys whose
  successor point now belongs to the new shard (~K/S of them), and
  removing a shard reassigns only that shard's keys.  No other key
  changes owner, which is what keeps view changes cheap.

Hashes come from :mod:`hashlib` (blake2b), **not** Python's ``hash()``,
so placements are stable across processes and immune to
``PYTHONHASHSEED``.

Structural mistakes raise *typed* errors (all subclasses of
:class:`RingError`, itself a ``ValueError`` so legacy ``except
ValueError`` callers keep working): adding a duplicate shard, removing an
unknown or the last shard, and -- the case that used to be silently
representable -- scaling a shard's virtual nodes down to zero.  A shard
with zero vnodes would remain registered but own no arc, so lookups
would quietly route its keys to stale neighbours; :meth:`set_vnodes`
refuses with :class:`ZeroVnodeError` instead.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable

__all__ = [
    "HashRing",
    "RingError",
    "EmptyRingError",
    "UnknownShardError",
    "DuplicateShardError",
    "LastShardError",
    "ZeroVnodeError",
]


class RingError(ValueError):
    """Base class for consistent-hash-ring structural errors."""


class EmptyRingError(RingError):
    """Lookup on a ring with no shards."""


class UnknownShardError(RingError):
    """The named shard is not on the ring."""


class DuplicateShardError(RingError):
    """The named shard is already on the ring."""


class LastShardError(RingError):
    """Removing the final shard would orphan every key."""


class ZeroVnodeError(RingError):
    """A shard must keep at least one virtual node while registered."""


def _h64(data: bytes) -> int:
    """A stable 64-bit hash (blake2b), independent of PYTHONHASHSEED."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent hashing over shard ids with ``vnodes`` virtual nodes."""

    def __init__(self, shards: Iterable[int] = (), vnodes: int = 128):
        if vnodes < 1:
            raise ZeroVnodeError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._shards: set[int] = set()
        self._vnode_count: dict[int, int] = {}
        self._points: list[tuple[int, int]] = []  # sorted (hash, shard)
        for s in shards:
            self.add_shard(s)

    # ------------------------------------------------------------------

    @property
    def shards(self) -> tuple[int, ...]:
        return tuple(sorted(self._shards))

    def __contains__(self, shard: int) -> bool:
        return shard in self._shards

    def __len__(self) -> int:
        return len(self._shards)

    def shard_vnodes(self, shard: int) -> int:
        """The number of virtual nodes ``shard`` currently contributes."""
        if shard not in self._shards:
            raise UnknownShardError(f"shard {shard} not on the ring")
        return self._vnode_count[shard]

    def copy(self) -> "HashRing":
        """An independent ring with the same shards (for planning)."""
        clone = HashRing((), vnodes=self.vnodes)
        for s in sorted(self._shards):
            clone.add_shard(s, vnodes=self._vnode_count[s])
        return clone

    # ------------------------------------------------------------------

    def _shard_points(self, shard: int, count: int) -> list[tuple[int, int]]:
        return [
            (_h64(f"s:{shard}:{v}".encode()), shard) for v in range(count)
        ]

    def add_shard(self, shard: int, vnodes: int | None = None) -> None:
        """Register ``shard`` with ``vnodes`` points (default: ring-wide).

        Point hashes depend only on ``(shard, vnode-index)``, so removing
        a shard and re-adding it with the same vnode count restores its
        exact arc -- ownership of every key is byte-identical to before
        (the remove-then-readd stability the property tests pin down).
        """
        if shard in self._shards:
            raise DuplicateShardError(f"shard {shard} already on the ring")
        count = self.vnodes if vnodes is None else vnodes
        if count < 1:
            raise ZeroVnodeError(
                f"shard {shard} needs at least one virtual node, got {count}"
            )
        self._shards.add(shard)
        self._vnode_count[shard] = count
        self._points = sorted(self._points + self._shard_points(shard, count))

    def remove_shard(self, shard: int) -> None:
        if shard not in self._shards:
            raise UnknownShardError(f"shard {shard} not on the ring")
        if len(self._shards) == 1:
            raise LastShardError("cannot remove the last shard")
        self._shards.discard(shard)
        del self._vnode_count[shard]
        self._points = [p for p in self._points if p[1] != shard]

    def set_vnodes(self, shard: int, vnodes: int) -> None:
        """Rescale ``shard`` to exactly ``vnodes`` virtual nodes.

        Scaling to zero is refused with :class:`ZeroVnodeError`: a
        registered shard owning no arc would make every lookup of its
        former keys silently resolve to a stale neighbour.  Use
        :meth:`remove_shard` to take a shard off the ring.
        """
        if shard not in self._shards:
            raise UnknownShardError(f"shard {shard} not on the ring")
        if vnodes < 1:
            raise ZeroVnodeError(
                f"cannot scale shard {shard} to {vnodes} virtual nodes; "
                "remove_shard() is the way to retire a shard"
            )
        old = self._vnode_count[shard]
        if vnodes == old:
            return
        self._vnode_count[shard] = vnodes
        self._points = [p for p in self._points if p[1] != shard]
        self._points = sorted(self._points + self._shard_points(shard, vnodes))

    # ------------------------------------------------------------------

    def key_point(self, key) -> int:
        return _h64(f"k:{key}".encode())

    def lookup(self, key) -> int:
        """The shard owning ``key``: first point at/after its hash."""
        if not self._points:
            raise EmptyRingError("empty ring")
        i = bisect_right(self._points, (self.key_point(key), -1))
        if i == len(self._points):
            i = 0  # wrap around
        return self._points[i][1]
