"""Consistent-hash ring with virtual nodes.

Each shard contributes ``vnodes`` points on a 64-bit ring; a key is
owned by the shard whose point follows the key's hash clockwise.  Two
properties matter for the sharded store:

* **balance** -- with enough virtual nodes (>= 128) every shard owns a
  near-equal arc of the ring, so keys spread evenly;
* **minimal movement** -- adding a shard steals only the keys whose
  successor point now belongs to the new shard (~K/S of them), and
  removing a shard reassigns only that shard's keys.  No other key
  changes owner, which is what keeps view changes cheap.

Hashes come from :mod:`hashlib` (blake2b), **not** Python's ``hash()``,
so placements are stable across processes and immune to
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable

__all__ = ["HashRing"]


def _h64(data: bytes) -> int:
    """A stable 64-bit hash (blake2b), independent of PYTHONHASHSEED."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent hashing over shard ids with ``vnodes`` virtual nodes."""

    def __init__(self, shards: Iterable[int] = (), vnodes: int = 128):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._shards: set[int] = set()
        self._points: list[tuple[int, int]] = []  # sorted (hash, shard)
        for s in shards:
            self.add_shard(s)

    # ------------------------------------------------------------------

    @property
    def shards(self) -> tuple[int, ...]:
        return tuple(sorted(self._shards))

    def __contains__(self, shard: int) -> bool:
        return shard in self._shards

    def __len__(self) -> int:
        return len(self._shards)

    def copy(self) -> "HashRing":
        """An independent ring with the same shards (for planning)."""
        return HashRing(self._shards, vnodes=self.vnodes)

    # ------------------------------------------------------------------

    def add_shard(self, shard: int) -> None:
        if shard in self._shards:
            raise ValueError(f"shard {shard} already on the ring")
        self._shards.add(shard)
        pts = [
            (_h64(f"s:{shard}:{v}".encode()), shard)
            for v in range(self.vnodes)
        ]
        self._points = sorted(self._points + pts)

    def remove_shard(self, shard: int) -> None:
        if shard not in self._shards:
            raise ValueError(f"shard {shard} not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.discard(shard)
        self._points = [p for p in self._points if p[1] != shard]

    # ------------------------------------------------------------------

    def key_point(self, key) -> int:
        return _h64(f"k:{key}".encode())

    def lookup(self, key) -> int:
        """The shard owning ``key``: first point at/after its hash."""
        if not self._points:
            raise ValueError("empty ring")
        i = bisect_right(self._points, (self.key_point(key), -1))
        if i == len(self._points):
            i = 0  # wrap around
        return self._points[i][1]
