"""View changes: plan a new ring epoch and the key moves it implies.

A view change adds and/or removes shards.  Because placement follows
consistent hashing, the set of keys that must move is exactly the set
whose ring owner differs between the old and new rings: ~K/S keys when
one of S+1 shards is added, and precisely the removed shard's keys on
removal.  Every other key keeps its shard, slot and generation -- the
sticky table guarantees zero churn for unmoved keys.

Planning is **pure**: it copies the ring, never mutates the router, and
produces a deterministic, seed-independent move list (keys visited in
sorted order, destination slots assigned first-free-first).  The runtime
coordinators (:mod:`repro.sharding.sim_store`,
:mod:`repro.runtime.sharded_rt`) execute the plan move by move and call
:meth:`~repro.sharding.router.ShardRouter.commit_view` at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .router import ShardRouter

__all__ = ["KeyMove", "ViewChange", "plan_view_change"]


@dataclass(frozen=True)
class KeyMove:
    """One key's migration: source and destination placement."""

    key: Any
    src_shard: int
    src_slot: int
    dst_shard: int
    dst_slot: int
    gen: int  # the key's generation *after* the move


@dataclass(frozen=True)
class ViewChange:
    """A planned ring epoch: membership delta plus the key moves."""

    version: int
    added: tuple[int, ...] = ()
    removed: tuple[int, ...] = ()
    moves: tuple[KeyMove, ...] = field(default_factory=tuple)


def plan_view_change(
    router: ShardRouter, add: tuple = (), remove: tuple = ()
) -> ViewChange:
    """Plan the epoch ``router.view_version + 1`` ring delta.

    Only keys whose consistent-hash owner changes between the current
    ring and the new ring are moved; their destination slots are the
    first free slots of the destination shard, claimed in sorted key
    order so the plan is deterministic.
    """
    add = tuple(add)
    remove = tuple(remove)
    if not add and not remove:
        raise ValueError("view change must add or remove at least one shard")
    new_ring = router.ring.copy()
    for s in add:
        new_ring.add_shard(s)
    for s in remove:
        new_ring.remove_shard(s)

    # Moved keys claim destination slots on top of the slots that will
    # still be occupied after the change; freed source slots are not
    # reused within a run (slot identity underpins the audit key maps).
    claimed = {s: set(router._used.get(s, ())) for s in new_ring.shards}
    moves = []
    for key in sorted(router.keys, key=str):
        old = router.location(key)
        dst = new_ring.lookup(key)
        if dst == old.shard:
            continue
        used = claimed.setdefault(dst, set())
        slot = next(
            (x for x in range(router.slots_per_shard) if x not in used),
            None,
        )
        if slot is None:
            raise ValueError(
                f"shard {dst} cannot absorb key {key!r}: all "
                f"{router.slots_per_shard} slots in use"
            )
        used.add(slot)
        moves.append(
            KeyMove(
                key=key,
                src_shard=old.shard,
                src_slot=old.slot,
                dst_shard=dst,
                dst_slot=slot,
                gen=old.gen + 1,
            )
        )
    return ViewChange(
        version=router.view_version + 1,
        added=add,
        removed=remove,
        moves=tuple(moves),
    )
