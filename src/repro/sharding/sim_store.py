"""Sharded CausalEC store on the discrete-event simulator.

S independent :class:`~repro.core.cluster.CausalECCluster` coding groups
share one :class:`~repro.sim.scheduler.Scheduler` (the same pattern as
:class:`~repro.kv.grouped.GroupedCausalKVStore`, which this generalizes),
routed by a :class:`~repro.sharding.router.ShardRouter`.  A
:class:`ShardedSimSession` spans shards while remaining ONE logical
session: its per-shard clients share a node id and an opid counter, and
the cross-shard causal floor is the per-shard map of session timestamps
each client core already maintains (clocks never mix across shards --
they have different dimensions and unrelated origins), topped up with the
router's cutover floors for migrated keys.

View changes run synchronously (the simulator is single-threaded, so
there are no in-flight operations to fence): the coordinator broadcasts
``ViewInstall`` through a real migration client, then per moved key reads
the latest value from the source shard under a floor that dominates every
acknowledged write, installs it at the destination with ``MigrateInstall``
(a tagged write carrying the bumped generation), and records the
destination ack clock as the key's cutover floor.  The asyncio
coordinator in :mod:`repro.runtime.sharded_rt` runs the same protocol
with live fencing.
"""

from __future__ import annotations

import itertools
from functools import reduce

import numpy as np

from ..core.cluster import CausalECCluster
from ..core.messages import ViewInstall
from ..core.server import ServerConfig
from ..protocol.client_core import RetryPolicy
from ..sim.network import LatencyModel
from ..sim.scheduler import Scheduler
from .codes import default_shard_code
from .router import KeyMigrating, ShardRouter
from .view import ViewChange, plan_view_change

__all__ = ["ShardedSimStore", "ShardedSimSession"]


def _is_zero_tag(tag) -> bool:
    return tag is None or sum(tag.ts.components) == 0


class ShardedSimStore:
    """S CausalEC coding groups on one scheduler, behind a shard router."""

    def __init__(
        self,
        keys,
        num_shards: int = 2,
        slots_per_shard: int = 4,
        num_servers: int = 5,
        value_len: int = 1,
        code_factory=None,
        config: ServerConfig | None = None,
        latency: LatencyModel | None = None,
        seed: int = 0,
        vnodes: int = 64,
    ):
        self.scheduler = Scheduler()
        self.num_servers = num_servers
        self.value_len = value_len
        self.seed = seed
        self.latency = latency
        self.config = config or ServerConfig(gc_interval=50.0)
        self.code_factory = code_factory or default_shard_code
        self.router = ShardRouter.build(
            keys, num_shards, slots_per_shard, vnodes=vnodes
        )
        self.shards: dict[int, CausalECCluster] = {}
        for s in range(num_shards):
            self._boot_shard(s)
        # session/migration client ids: one global space, far above any
        # shard's server ids, so a session keeps one identity everywhere
        self._next_client_id = num_servers + 100
        self._migration_clients: dict[int, object] = {}
        self._migration_id: int | None = None
        self._migration_counter = None

    def _boot_shard(self, shard: int) -> CausalECCluster:
        code = self.code_factory(
            self.num_servers, self.router.slots_per_shard, self.value_len
        )
        cluster = CausalECCluster(
            code,
            latency=self.latency,
            seed=self.seed + 101 * shard,
            config=self.config,
            scheduler=self.scheduler,
        )
        self.shards[shard] = cluster
        return cluster

    def _alloc_client_id(self) -> int:
        cid = self._next_client_id
        self._next_client_id += 1
        return cid

    # ------------------------------------------------------------------

    def session(
        self,
        site: int = 0,
        failover: bool = False,
        retry: RetryPolicy | None = None,
    ) -> "ShardedSimSession":
        return ShardedSimSession(self, site, failover=failover, retry=retry)

    def settle(self) -> None:
        for cluster in self.shards.values():
            cluster.settle()

    def halt_site(self, site: int) -> None:
        """Crash server ``site`` in every shard (a data-center outage)."""
        for cluster in self.shards.values():
            cluster.halt_server(site)

    # ------------------------------------------------------------------
    # view changes

    def _migration_client(self, shard: int):
        if self._migration_id is None:
            self._migration_id = self._alloc_client_id()
            self._migration_counter = itertools.count()
        if shard not in self._migration_clients:
            self._migration_clients[shard] = self.shards[shard].add_client(
                server=0,
                retry=RetryPolicy(timeout=200.0, max_retries=8),
                node_id=self._migration_id,
                opid_counter=self._migration_counter,
            )
        return self._migration_clients[shard]

    def add_shard(self, shard: int) -> ViewChange:
        """Boot a new coding group and migrate its keys to it."""
        self._boot_shard(shard)
        change = plan_view_change(self.router, add=(shard,))
        self.apply_view_change(change)
        return change

    def remove_shard(self, shard: int) -> ViewChange:
        """Drain a shard's keys to the survivors (the group keeps running
        so stragglers still resolve, but owns no keys afterwards)."""
        change = plan_view_change(self.router, remove=(shard,))
        self.apply_view_change(change)
        return change

    def apply_view_change(self, change: ViewChange) -> dict:
        """Execute a planned view change synchronously; returns stats."""
        # 1. epoch broadcast through a real client on each shard's network
        for shard, cluster in self.shards.items():
            mc = self._migration_client(shard)
            for srv in cluster.servers:
                mc.send(srv.node_id, ViewInstall(change.version))
        self.scheduler.run(until=self.scheduler.now + 100.0)
        migrated, skipped = [], []
        for mv in change.moves:
            self.router.begin_move(mv.key)
            src = self.shards[mv.src_shard]
            mc_src = self._migration_client(mv.src_shard)
            # floor = join of live source clocks: dominates every acked
            # write, so the migration read returns the latest version
            clocks = [s.vc for s in src.servers if not s.halted]
            if clocks:
                floor = reduce(lambda a, b: a.merge(b), clocks)
                mc_src.session_ts = (
                    floor
                    if mc_src.session_ts is None
                    else mc_src.session_ts.merge(floor)
                )
            op = src.execute(mc_src.read(mv.src_slot))
            if op.failed:
                raise op.error
            cutover = None
            if _is_zero_tag(op.tag):
                # never written: nothing to copy, and installing the
                # initial value would fabricate a write record
                skipped.append(mv.key)
            else:
                dst = self.shards[mv.dst_shard]
                mc_dst = self._migration_client(mv.dst_shard)
                mop = dst.execute(
                    mc_dst.migrate(
                        mv.dst_slot, np.array(op.value, copy=True), mv.gen
                    )
                )
                if mop.failed:
                    raise mop.error
                cutover = mop.ts
                migrated.append(mv.key)
            self.router.finish_move(
                mv.key, mv.dst_shard, mv.dst_slot, mv.gen, cutover_floor=cutover
            )
        self.router.commit_view(change)
        return {
            "version": change.version,
            "moves": len(change.moves),
            "migrated": migrated,
            "skipped": skipped,
        }


class ShardedSimSession:
    """One logical session spanning shards (shared id + opid counter)."""

    def __init__(
        self,
        store: ShardedSimStore,
        site: int,
        failover: bool = False,
        retry: RetryPolicy | None = None,
    ):
        self._store = store
        self._site = site
        self._failover = failover
        self._retry = retry
        self.session_id = store._alloc_client_id()
        self._counter = itertools.count()
        self._clients: dict[int, object] = {}

    def _client(self, shard: int):
        client = self._clients.get(shard)
        if client is None:
            client = self._store.shards[shard].add_client(
                server=self._site,
                retry=self._retry,
                failover=self._failover,
                node_id=self.session_id,
                opid_counter=self._counter,
            )
            self._clients[shard] = client
        return client

    def _prepare(self, client, key) -> None:
        router = self._store.router
        client.view_version = router.view_version
        floor = router.cutover_floor(key)
        if floor is not None:
            # migration watermark: park at the new owner until the
            # migrated value is visible there
            client.session_ts = (
                floor
                if client.session_ts is None
                else client.session_ts.merge(floor)
            )

    def put(self, key, raw):
        router = self._store.router
        if router.moving(key):
            raise KeyMigrating(key)  # sim view changes are atomic
        loc = router.location(key)
        cluster = self._store.shards[loc.shard]
        client = self._client(loc.shard)
        self._prepare(client, key)
        op = cluster.execute(client.write(loc.slot, cluster.value(raw)))
        if op.failed:
            raise op.error
        return op

    def get(self, key):
        loc = self._store.router.location(key)
        cluster = self._store.shards[loc.shard]
        client = self._client(loc.shard)
        self._prepare(client, key)
        op = cluster.execute(client.read(loc.slot))
        if op.failed:
            raise op.error
        return op
