"""repro: a reproduction of CausalEC (Cadambe & Lyu, PODC 2023).

CausalEC is a causally consistent read/write data store that stores data
with an arbitrary linear erasure code -- including *cross-object* codes,
where a server's codeword symbol mixes several objects -- while keeping
writes local and serving reads from any recovery set of the code.

Public API highlights::

    from repro import (
        CausalECCluster, ServerConfig,       # the protocol
        example1_code, six_dc_code,          # paper example codes
        reed_solomon_code, replication_code, # standard codes
        PrimeField, GF256,                   # finite fields
        check_causal_consistency,            # Definition 5 checker
    )

See README.md for a tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for the paper-vs-measured record.
"""

from .consistency import (
    CausalViolation,
    History,
    Operation,
    check_causal_consistency,
    check_eventual_visibility,
    check_returns_written_values,
)
from .core import (
    LOCALHOST,
    CausalECCluster,
    CausalECServer,
    Client,
    Cluster,
    CostModel,
    DurableStore,
    HomeServerUnavailable,
    RetryPolicy,
    ServerConfig,
    Tag,
    VectorClock,
    zero_tag,
)
from .protocol import (
    FailureDetectorConfig,
    RepairConfig,
)
from .ec import (
    GF256,
    BinaryExtensionField,
    Field,
    LinearCode,
    PrimeField,
    default_field,
    example1_code,
    partial_replication_code,
    reed_solomon_code,
    replication_code,
    six_dc_code,
)
from .sim import (
    ChaosConfig,
    ChaosResult,
    ChaosSchedule,
    ConstantLatency,
    ExponentialLatency,
    LinkFaults,
    MatrixLatency,
    Network,
    PartitionPlan,
    PartitionWindow,
    ReliableTransport,
    Scheduler,
    TransportConfig,
    UniformLatency,
    run_chaos,
    run_chaos_suite,
)

__version__ = "1.0.0"

__all__ = [
    # core
    "CausalECCluster",
    "CausalECServer",
    "Cluster",
    "Client",
    "ServerConfig",
    "CostModel",
    "Tag",
    "VectorClock",
    "zero_tag",
    "LOCALHOST",
    # erasure coding
    "Field",
    "PrimeField",
    "BinaryExtensionField",
    "GF256",
    "default_field",
    "LinearCode",
    "replication_code",
    "partial_replication_code",
    "reed_solomon_code",
    "example1_code",
    "six_dc_code",
    # simulation
    "Scheduler",
    "Network",
    "ConstantLatency",
    "MatrixLatency",
    "UniformLatency",
    "ExponentialLatency",
    # fault tolerance
    "LinkFaults",
    "PartitionPlan",
    "PartitionWindow",
    "ReliableTransport",
    "TransportConfig",
    "RetryPolicy",
    "HomeServerUnavailable",
    "DurableStore",
    "FailureDetectorConfig",
    "RepairConfig",
    "ChaosConfig",
    "ChaosSchedule",
    "ChaosResult",
    "run_chaos",
    "run_chaos_suite",
    # consistency
    "History",
    "Operation",
    "CausalViolation",
    "check_causal_consistency",
    "check_eventual_visibility",
    "check_returns_written_values",
]

# subpackages re-exported for convenience
from . import analysis, baselines, workloads  # noqa: E402
from .baselines import (  # noqa: E402
    FullReplicationCluster,
    IntraObjectCluster,
    PartialReplicationCluster,
)
from .workloads import (  # noqa: E402
    ClosedLoopDriver,
    UniformGenerator,
    WorkloadConfig,
    ZipfianGenerator,
)

__all__ += [
    "analysis",
    "baselines",
    "workloads",
    "FullReplicationCluster",
    "PartialReplicationCluster",
    "IntraObjectCluster",
    "ClosedLoopDriver",
    "WorkloadConfig",
    "UniformGenerator",
    "ZipfianGenerator",
]

from . import kv  # noqa: E402
from .kv import CausalKVStore  # noqa: E402

__all__ += ["kv", "CausalKVStore"]
