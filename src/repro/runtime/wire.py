"""Versioned wire codec for protocol messages and durable checkpoints.

The simulator passes Python objects by reference, so it never needed a wire
format.  The asyncio runtime sends real bytes over real sockets, and the
file-backed durable store writes real files, so both need one -- and it must
not be pickle: checkpoints outlive processes, peers may run different builds,
and unpickling attacker-supplied bytes executes code.

This codec is a small, explicit, recursive tagged-binary format:

* every encoded value starts with a one-byte type tag;
* integers are 8-byte big-endian two's complement (arbitrary-precision
  fallback for the rare overflow), floats are IEEE-754 doubles, strings are
  UTF-8, all length prefixes are unsigned 32-bit big-endian;
* containers (tuple/list/dict/set) encode their length then their elements;
  sets are encoded in sorted-bytes order so encoding is deterministic;
* numpy arrays encode dtype, shape and raw bytes;
* :class:`~repro.core.tags.VectorClock` and :class:`~repro.core.tags.Tag`
  have dedicated tags (they dominate protocol traffic);
* registered classes -- every ``core/messages.py`` dataclass plus the
  durable-state containers -- encode as a class id followed by their fields
  in an **explicit registered order**.  Field order is part of the wire
  contract: it is spelled out here, not inferred from ``__dict__`` or
  dataclass introspection, so reordering a dataclass cannot silently change
  the encoding.  Decoding builds instances with ``cls.__new__`` + setattr,
  which also round-trips ``init=False`` fields like ``WriteAck.ts``.

Frames
------
A *frame* is ``u32 length || version byte || flags byte || [u32 crc32] ||
encoded value``.  The length covers everything after the length word.
:data:`WIRE_VERSION` is bumped on any incompatible change; decoders reject
frames from a different version instead of misparsing them.

Since v5 every frame carries a CRC32 (IEEE, as ``zlib.crc32``) of the
encoded value, flagged in bit 0 of the flags byte.  A mismatch raises
:class:`FrameCorrupt`; receivers treat it exactly like a dropped frame and
let ARQ retransmission mask it, so on-wire corruption costs latency, never
correctness.  :func:`set_crc_enabled` clears the flag on *emitted* frames
(for overhead benchmarking); decoders always accept both forms, checking
the CRC only when the flag is set.

Copies
------
The codec is on the live runtime's per-message hot path, so both directions
avoid full-body copies:

* :func:`encode_frame` (and the batched :func:`encode_frames`) assemble the
  length word, version byte and encoded fields in one ``b"".join`` -- the
  body is never concatenated twice;
* decoding walks a :class:`memoryview` over the input, so container and
  string traversal never slices fresh ``bytes``; ndarray payloads are
  returned as **read-only zero-copy views** over the frame buffer
  (``np.frombuffer``).  Every consumer of decoded values treats them as
  immutable (the field kernels are pure and return new arrays); callers
  that do need to mutate must ``.copy()`` explicitly.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Iterable

import numpy as np

from ..consistency.online import AuditOp
from ..core.messages import (
    App,
    Del,
    DigestMsg,
    Heartbeat,
    MigrateInstall,
    ReadRequest,
    ReadReturn,
    ReconfigAck,
    ReconfigCommit,
    ReconfigPropose,
    RepairRequest,
    RepairResponse,
    ValInq,
    ValResp,
    ValRespEncoded,
    ViewInstall,
    ViewInstallAck,
    WriteAck,
    WriteRequest,
)
from ..core.snapshot import ServerCheckpoint
from ..core.state import (
    Codeword,
    DeletionList,
    HistoryList,
    InQueue,
    InQueueEntry,
    ReadEntry,
    ReadList,
)
from ..core.tags import Tag, VectorClock

__all__ = [
    "WIRE_VERSION",
    "WireError",
    "FrameCorrupt",
    "encode",
    "decode",
    "encode_frame",
    "encode_frames",
    "decode_frame",
    "decode_body",
    "register",
    "registered_classes",
    "set_crc_enabled",
    "crc_enabled",
]

#: Bumped on any incompatible change to the encoding or the class registry.
#: v2: client requests carry a session-floor vector clock.
#: v3: anti-entropy messages (DigestMsg/RepairRequest/RepairResponse,
#: ids 11-13).  The value encoding and all pre-existing class ids are
#: unchanged -- v2-era *bodies* still decode -- but a v2 node cannot
#: decode the new ids, so frames reject the old version byte.
#: v4 (sharding): client requests carry a ring-epoch ``view`` field,
#: migration frames (MigrateInstall/ViewInstall/ViewInstallAck, ids
#: 14-16), and AuditOp gains ``shard``/``gen`` so the online auditor can
#: check causal consistency on cross-shard histories.
#: v5 (integrity): frames gain a flags byte and, when flag bit 0 is set
#: (the default), a CRC32 of the encoded value.  The value encoding and
#: all class ids are unchanged -- v2-era *bodies* still decode -- only
#: the frame header grew.
#: v6 (dynamic membership): reconfiguration control messages
#: (ReconfigPropose/ReconfigAck/ReconfigCommit, ids 17-19), peer hellos
#: advertise the dialer's membership ``cfg_epoch``, and AuditOp gains a
#: trailing ``epoch`` field so decision identity survives an epoch-fenced
#: server replacement (the replacement restarts its record sequence).
WIRE_VERSION = 6

#: Frames larger than this are rejected before allocation (corrupt length
#: words must not trigger multi-gigabyte reads).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class WireError(ValueError):
    """Raised on malformed, truncated, or wrong-version wire data."""


class FrameCorrupt(WireError):
    """A frame's CRC32 did not match its body: bit rot in flight.

    Receivers must treat this exactly like a *dropped* frame -- skip it and
    let ARQ retransmission deliver a clean copy -- never like a protocol
    error that tears down the connection.
    """


# ---------------------------------------------------------------------------
# type tags

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03  # 8-byte big-endian signed
_T_BIGINT = 0x04  # u32 length + signed big-endian bytes
_T_FLOAT = 0x05  # IEEE-754 double
_T_STR = 0x06
_T_BYTES = 0x07
_T_TUPLE = 0x08
_T_LIST = 0x09
_T_DICT = 0x0A
_T_SET = 0x0B
_T_NDARRAY = 0x0C
_T_VC = 0x0D
_T_TAG = 0x0E
_T_OBJ = 0x0F  # u16 class id + fields in registered order

_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


# ---------------------------------------------------------------------------
# class registry

#: class id -> (class, field order); the inverse map speeds up encoding.
_REGISTRY: dict[int, tuple[type, tuple[str, ...]]] = {}
_BY_CLASS: dict[type, tuple[int, tuple[str, ...]]] = {}


def register(class_id: int, cls: type, fields: tuple[str, ...]) -> None:
    """Register ``cls`` under ``class_id`` with an explicit field order.

    Ids and field orders are part of the wire contract: never reuse a
    retired id, never reorder fields without bumping :data:`WIRE_VERSION`.
    """
    if class_id in _REGISTRY and _REGISTRY[class_id][0] is not cls:
        raise ValueError(f"wire class id {class_id} already registered")
    if cls in _BY_CLASS and _BY_CLASS[cls][0] != class_id:
        raise ValueError(f"{cls.__name__} already registered")
    _REGISTRY[class_id] = (cls, fields)
    _BY_CLASS[cls] = (class_id, fields)


def registered_classes() -> dict[int, type]:
    """The current id -> class table (for tests and debugging)."""
    return {cid: cls for cid, (cls, _) in _REGISTRY.items()}


# protocol messages (ids 1-19).  ``size_bits`` rides along so the receiving
# side sees the same cost accounting the sender assigned.
register(
    1, WriteRequest, ("opid", "obj", "value", "session_ts", "view", "size_bits")
)
register(2, WriteAck, ("opid", "ts", "tag", "size_bits"))
register(
    3, ReadRequest, ("opid", "obj", "session_ts", "view", "size_bits")
)
register(4, ReadReturn, ("opid", "value", "ts", "value_tag", "size_bits"))
register(5, App, ("obj", "value", "tag", "size_bits"))
register(6, Del, ("obj", "tag", "origin", "fanout", "size_bits"))
register(7, ValInq, ("client_id", "opid", "obj", "wanted_tagvec", "size_bits"))
register(8, ValResp, ("obj", "value", "client_id", "opid", "requested_tags", "size_bits"))
register(
    9,
    ValRespEncoded,
    ("symbol", "tagvec", "client_id", "opid", "obj", "requested_tags", "size_bits"),
)
register(10, Heartbeat, ("sender", "sent_at", "size_bits"))
register(11, DigestMsg, ("sender", "vc", "tags", "sent_at", "size_bits"))
register(12, RepairRequest, ("sender", "tags", "vc", "size_bits"))
register(
    13,
    RepairResponse,
    ("sender", "tags", "vc", "entries", "dels", "symbol", "tagvec", "size_bits"),
)
register(
    14,
    MigrateInstall,
    ("opid", "obj", "value", "gen", "session_ts", "view", "size_bits"),
)
register(15, ViewInstall, ("version", "size_bits"))
register(16, ViewInstallAck, ("version", "ts", "size_bits"))
register(
    17,
    ReconfigPropose,
    ("epoch", "members", "joiner", "row_seed", "size_bits"),
)
register(18, ReconfigAck, ("epoch", "cfg_epoch", "ts", "size_bits"))
register(
    19,
    ReconfigCommit,
    ("epoch", "members", "joiner", "row_seed", "size_bits"),
)

# durable server state (ids 20-31): everything a ServerCheckpoint holds, so
# the file-backed durable store never needs pickle.
register(20, HistoryList, ("_zero", "_items"))
register(21, DeletionList, ("_tags", "_max"))
register(22, InQueueEntry, ("sender", "obj", "value", "tag"))
register(23, InQueue, ("_entries",))
register(24, ReadEntry, ("client_id", "opid", "obj", "tagvec", "symbols", "registered_at"))
register(25, ReadList, ("_by_opid",))
register(26, Codeword, ("value", "tagvec"))
register(27, ServerCheckpoint, ("server_id", "time", "state", "transport"))

# observability (ids 40-49): records streamed to the online auditor.
register(
    40,
    AuditOp,
    (
        "server", "seq", "kind", "obj", "tag", "opid", "time", "shard",
        "gen", "epoch",
    ),
)


# ---------------------------------------------------------------------------
# encoding

def _encode_into(out: list[bytes | memoryview], obj: Any) -> None:
    if obj is None:
        out.append(bytes([_T_NONE]))
    elif obj is True:
        out.append(bytes([_T_TRUE]))
    elif obj is False:
        out.append(bytes([_T_FALSE]))
    elif isinstance(obj, (int, np.integer)):  # bools were handled above
        v = int(obj)
        if _I64_MIN <= v <= _I64_MAX:
            out.append(bytes([_T_INT]) + _I64.pack(v))
        else:
            raw = v.to_bytes((v.bit_length() + 8) // 8, "big", signed=True)
            out.append(bytes([_T_BIGINT]) + _U32.pack(len(raw)) + raw)
    elif isinstance(obj, (float, np.floating)):
        out.append(bytes([_T_FLOAT]) + _F64.pack(float(obj)))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(bytes([_T_STR]) + _U32.pack(len(raw)) + raw)
    elif isinstance(obj, (bytes, bytearray)):
        out.append(bytes([_T_BYTES]) + _U32.pack(len(obj)) + bytes(obj))
    elif isinstance(obj, tuple):
        out.append(bytes([_T_TUPLE]) + _U32.pack(len(obj)))
        for item in obj:
            _encode_into(out, item)
    elif isinstance(obj, list):
        out.append(bytes([_T_LIST]) + _U32.pack(len(obj)))
        for item in obj:
            _encode_into(out, item)
    elif isinstance(obj, dict):
        out.append(bytes([_T_DICT]) + _U32.pack(len(obj)))
        for k, v in obj.items():
            _encode_into(out, k)
            _encode_into(out, v)
    elif isinstance(obj, (set, frozenset)):
        # sorted-bytes order makes set encoding deterministic
        items = sorted(encode(item) for item in obj)
        out.append(bytes([_T_SET]) + _U32.pack(len(items)))
        out.extend(items)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        # a flat byte view, not tobytes(): the only copy of the payload
        # happens in the final join
        raw = memoryview(arr).cast("B")
        out.append(bytes([_T_NDARRAY]))
        _encode_into(out, arr.dtype.str)
        _encode_into(out, arr.shape)
        out.append(_U32.pack(raw.nbytes))
        out.append(raw)
    elif isinstance(obj, VectorClock):
        out.append(bytes([_T_VC]) + _U32.pack(len(obj.components)))
        for c in obj.components:
            out.append(_I64.pack(c))
    elif isinstance(obj, Tag):
        out.append(bytes([_T_TAG]))
        _encode_into(out, obj.ts)
        _encode_into(out, obj.client_id)
    else:
        entry = _BY_CLASS.get(type(obj))
        if entry is None:
            raise WireError(f"cannot encode unregistered type {type(obj).__name__}")
        class_id, fields = entry
        out.append(bytes([_T_OBJ]) + _U16.pack(class_id))
        for name in fields:
            _encode_into(out, getattr(obj, name))


def encode(obj: Any) -> bytes:
    """Encode one value (no frame header)."""
    out: list[bytes] = []
    _encode_into(out, obj)
    return b"".join(out)


# ---------------------------------------------------------------------------
# decoding

class _Reader:
    """Cursor over a :class:`memoryview`: ``take`` slices views, not bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes | bytearray | memoryview):
        self.data = data if isinstance(data, memoryview) else memoryview(data)
        self.pos = 0

    def take(self, n: int) -> memoryview:
        end = self.pos + n
        if end > len(self.data):
            raise WireError("truncated wire data")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]


def _decode_from(r: _Reader) -> Any:
    tag = r.take(1)[0]
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return _I64.unpack(r.take(8))[0]
    if tag == _T_BIGINT:
        return int.from_bytes(r.take(r.u32()), "big", signed=True)
    if tag == _T_FLOAT:
        return _F64.unpack(r.take(8))[0]
    if tag == _T_STR:
        return str(r.take(r.u32()), "utf-8")
    if tag == _T_BYTES:
        return bytes(r.take(r.u32()))
    if tag == _T_TUPLE:
        return tuple(_decode_from(r) for _ in range(r.u32()))
    if tag == _T_LIST:
        return [_decode_from(r) for _ in range(r.u32())]
    if tag == _T_DICT:
        n = r.u32()
        d = {}
        for _ in range(n):
            k = _decode_from(r)
            d[k] = _decode_from(r)
        return d
    if tag == _T_SET:
        return {_decode_from(r) for _ in range(r.u32())}
    if tag == _T_NDARRAY:
        dtype = _decode_from(r)
        shape = _decode_from(r)
        raw = r.take(r.u32())
        # zero-copy: a read-only view over the frame buffer.  Safe because
        # decoded values are treated as immutable everywhere (the field
        # kernels are pure); callers that must mutate copy explicitly.
        return np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(shape)
    if tag == _T_VC:
        n = r.u32()
        return VectorClock(tuple(_I64.unpack(r.take(8))[0] for _ in range(n)))
    if tag == _T_TAG:
        ts = _decode_from(r)
        client_id = _decode_from(r)
        return Tag(ts, client_id)
    if tag == _T_OBJ:
        class_id = _U16.unpack(r.take(2))[0]
        entry = _REGISTRY.get(class_id)
        if entry is None:
            raise WireError(f"unknown wire class id {class_id}")
        cls, fields = entry
        obj = cls.__new__(cls)
        for name in fields:
            # object.__setattr__ also handles frozen dataclasses
            object.__setattr__(obj, name, _decode_from(r))
        return obj
    raise WireError(f"unknown wire type tag 0x{tag:02x}")


def decode(data: bytes | bytearray | memoryview) -> Any:
    """Decode one value previously produced by :func:`encode`.

    ndarray payloads come back as read-only zero-copy views over ``data``
    (which they keep alive); everything else is materialized.

    Every failure mode of malformed input -- truncation, garbage dtype
    strings, shape/buffer mismatches, unhashable dict keys, pathological
    nesting -- surfaces as :class:`WireError`, never a stray
    ``struct.error``/``TypeError``/``RecursionError``: byte-flipped input
    is an expected event, not a crash.
    """
    r = _Reader(data)
    try:
        obj = _decode_from(r)
    except WireError:
        raise
    except (
        ValueError,
        TypeError,
        KeyError,
        OverflowError,
        struct.error,
        UnicodeDecodeError,
        RecursionError,
    ) as exc:
        raise WireError(f"malformed wire data: {exc!r}") from exc
    if r.pos != len(r.data):
        raise WireError(f"{len(r.data) - r.pos} trailing bytes after value")
    return obj


# ---------------------------------------------------------------------------
# frames

#: flags byte, bit 0: a u32 CRC32 of the encoded value follows the flags.
_FLAG_CRC = 0x01

#: ``length || version || flags || crc`` and ``length || version || flags``.
_HDR_CRC = struct.Struct(">IBBI")
_HDR_PLAIN = struct.Struct(">IBB")

#: Whether emitted frames carry a CRC.  Decoders always honour the per-frame
#: flag, so mixed traffic is fine; this exists for the bench-macro overhead
#: comparison, not as a compatibility knob.
_crc_enabled = True


def set_crc_enabled(enabled: bool) -> None:
    """Toggle the CRC32 on frames *emitted* by this process."""
    global _crc_enabled
    _crc_enabled = bool(enabled)


def crc_enabled() -> bool:
    """Whether emitted frames currently carry a CRC32."""
    return _crc_enabled


def _frame_into(out: list[bytes | memoryview], obj: Any) -> None:
    """Append one frame's chunks (length word included) to ``out``."""
    mark = len(out)
    _encode_into(out, obj)
    if _crc_enabled:
        # incremental CRC over the body chunks: the body is still laid
        # down exactly once, in the caller's single join
        body_len = 0
        crc = 0
        for part in out[mark:]:
            body_len += len(part)
            crc = zlib.crc32(part, crc)
        header = _HDR_CRC.pack(body_len + 6, WIRE_VERSION, _FLAG_CRC, crc)
    else:
        body_len = sum(len(part) for part in out[mark:])
        header = _HDR_PLAIN.pack(body_len + 2, WIRE_VERSION, 0)
    if body_len > MAX_FRAME_BYTES:
        raise WireError(f"frame of {body_len} bytes exceeds MAX_FRAME_BYTES")
    out.insert(mark, header)


def encode_frame(obj: Any) -> bytes:
    """``u32 length || version || flags || [crc] || encode(obj)``.

    Ready to write to a socket, assembled with a single join: the body
    bytes are laid down exactly once, never re-concatenated for the
    header or the CRC.
    """
    out: list[bytes | memoryview] = []
    _frame_into(out, obj)
    return b"".join(out)


def encode_frames(objs: Iterable[Any]) -> bytes:
    """Concatenate many frames into one buffer for a single socket write.

    Byte-identical to ``b"".join(encode_frame(o) for o in objs)`` but with
    one allocation for the whole batch -- the per-tick flush path of the
    live runtime.
    """
    out: list[bytes | memoryview] = []
    for obj in objs:
        if isinstance(obj, (bytes, bytearray, memoryview)):
            out.append(obj)  # pre-encoded frame (chaos-damaged bytes)
        else:
            _frame_into(out, obj)
    return b"".join(out)


def decode_body(body: bytes | bytearray | memoryview) -> Any:
    """Decode a frame body (everything after the length word).

    Raises :class:`FrameCorrupt` when the frame carries a CRC32 and it
    does not match -- callers on live sockets should treat that exactly
    like a dropped frame.
    """
    if len(body) < 2:
        raise WireError("truncated frame body")
    if body[0] != WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: got {body[0]}, expected {WIRE_VERSION}"
        )
    flags = body[1]
    if flags & ~_FLAG_CRC:
        raise WireError(f"unknown frame flags 0x{flags:02x}")
    payload = memoryview(body)[2:]
    if flags & _FLAG_CRC:
        if len(payload) < 4:
            raise WireError("truncated frame CRC")
        (want,) = _U32.unpack(payload[:4])
        payload = payload[4:]
        got = zlib.crc32(payload)
        if got != want:
            raise FrameCorrupt(
                f"frame CRC mismatch: header {want:#010x}, body {got:#010x}"
            )
    return decode(payload)


def decode_frame(data: bytes | bytearray | memoryview) -> Any:
    """Decode one complete frame (length word included)."""
    if len(data) < 4:
        raise WireError("truncated frame header")
    (length,) = _U32.unpack(memoryview(data)[:4])
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds MAX_FRAME_BYTES")
    if len(data) != 4 + length:
        raise WireError(f"frame length {length} != {len(data) - 4} body bytes")
    return decode_body(memoryview(data)[4:])
