"""Runtimes: interpreters for the sans-I/O protocol cores.

Two interchangeable drivers for :mod:`repro.protocol`:

* :mod:`repro.runtime.sim` -- the discrete-event adapter
  (:class:`~repro.runtime.sim.EffectNode`) that runs cores inside the
  existing scheduler/network/transport stack, bit-for-bit compatible with
  the pre-sans-I/O implementation;
* :mod:`repro.runtime.asyncio_rt` -- a real asyncio TCP runtime that boots
  an N-server CausalEC cluster on localhost sockets, with the
  :mod:`~repro.runtime.wire` length-prefixed codec on the wire, per-peer
  reconnect, monotonic-clock timers, and a file-backed durable store.
"""

from .asyncio_rt import (
    AsyncioClient,
    AsyncioCluster,
    AsyncioServer,
    FileDurableStore,
)
from .sim import EffectNode
from .wire import WIRE_VERSION, WireError, decode_frame, encode_frame

__all__ = [
    "EffectNode",
    "AsyncioCluster",
    "AsyncioServer",
    "AsyncioClient",
    "FileDurableStore",
    "WIRE_VERSION",
    "WireError",
    "encode_frame",
    "decode_frame",
]
