"""Runtimes: interpreters for the sans-I/O protocol cores.

Two interchangeable drivers for :mod:`repro.protocol`:

* :mod:`repro.runtime.sim` -- the discrete-event adapter
  (:class:`~repro.runtime.sim.EffectNode`) that runs cores inside the
  existing scheduler/network/transport stack, bit-for-bit compatible with
  the pre-sans-I/O implementation;
* :mod:`repro.runtime.asyncio_rt` -- a real asyncio TCP runtime that boots
  an N-server CausalEC cluster on localhost sockets, with the
  :mod:`~repro.runtime.wire` length-prefixed codec on the wire, per-peer
  reconnect, monotonic-clock timers, and a file-backed durable store.

Around the live runtime sit the chaos and observability layers:
:class:`~repro.runtime.chaos_rt.LiveFaultInjector` (deterministic fault
injection inside the peer channels), :class:`~repro.runtime.supervisor
.Supervisor` (crash restarts with exponential backoff),
:class:`~repro.runtime.auditor.OnlineAuditor` (an online causal-consistency
checker fed by decision-log streams), and
:func:`~repro.runtime.live_chaos.run_live_chaos` (the seeded soak harness
tying them all together).
"""

from .asyncio_rt import (
    AsyncioClient,
    AsyncioCluster,
    AsyncioServer,
    FileDurableStore,
)
from .auditor import OnlineAuditor
from .chaos_rt import FrameFate, LiveFaultInjector
from .live_chaos import LiveChaosResult, run_live_chaos
from .sim import EffectNode
from .supervisor import RestartPolicy, Supervisor
from .wire import WIRE_VERSION, WireError, decode_frame, encode_frame

__all__ = [
    "EffectNode",
    "AsyncioCluster",
    "AsyncioServer",
    "AsyncioClient",
    "FileDurableStore",
    "FrameFate",
    "LiveFaultInjector",
    "OnlineAuditor",
    "RestartPolicy",
    "Supervisor",
    "LiveChaosResult",
    "run_live_chaos",
    "WIRE_VERSION",
    "WireError",
    "encode_frame",
    "decode_frame",
]
