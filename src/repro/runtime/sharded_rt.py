"""Live sharded runtime: S asyncio CausalEC clusters behind a shard router.

The asyncio counterpart of :class:`~repro.sharding.sim_store
.ShardedSimStore`: each shard is an independent
:class:`~repro.runtime.asyncio_rt.AsyncioCluster` coding group (its own
servers, vector-clock dimension, and GC), and a
:class:`~repro.sharding.router.ShardRouter` maps keys to (shard, slot)
locations.  A :class:`ShardedSession` is ONE logical session across
shards: its per-shard clients share a node id and an opid counter, so the
online auditor sees a single session order, and the cross-shard causal
floor is the per-shard session timestamps plus the router's cutover
floors for migrated keys.

Live view changes (:meth:`ShardedAsyncioCluster.apply_view_change`) run
the migration protocol under real concurrency:

1. ``ViewInstall`` is broadcast to every server over short-lived control
   connections (best effort -- the epoch also gossips on every request's
   ``view`` field, so a missed server catches up on first contact);
2. per moved key: writes are fenced (:meth:`~repro.sharding.router
   .ShardRouter.begin_move`) and in-flight writes drained, while reads
   keep routing to the old owner;
3. the latest version is read at the source under a floor that is the
   join of the live source servers' clocks (it dominates every
   acknowledged write);
4. a never-written key is skipped (installing the initial value would
   fabricate a write record); otherwise the value is installed at the
   destination with ``MigrateInstall`` carrying the bumped generation,
   and the destination's ack clock becomes the key's **cutover floor**:
   every later operation on the key merges it into the session floor, so
   reads at the new owner park until the migrated value is visible there.

Audit identity: each server is given a globally unique ``audit_node``
(``shard * 1000 + server id``), its ``audit_shard``, and shared per-shard
``audit_key_map``/``audit_gen`` tables translating codeword slots into
global keys and migration generations, so one auditor checks the whole
cross-shard history (see :mod:`repro.consistency.online`).
"""

from __future__ import annotations

import asyncio
import itertools
from functools import reduce

import numpy as np

from ..core.messages import ViewInstall, ViewInstallAck
from ..core.server import ServerConfig
from ..protocol.client_core import RetryPolicy
from ..sharding.codes import default_shard_code
from ..sharding.router import ShardRouter
from ..sharding.view import ViewChange, plan_view_change
from . import wire
from .asyncio_rt import _CONN_ERRORS, AsyncioCluster, read_frame
from .auditor import OnlineAuditor

__all__ = ["ShardedAsyncioCluster", "ShardedSession"]

#: audit node ids are ``shard * _AUDIT_STRIDE + server id`` -- unique as
#: long as every shard has fewer servers than this
_AUDIT_STRIDE = 1000


def _is_zero_tag(tag) -> bool:
    return tag is None or sum(tag.ts.components) == 0


def _merge_floor(core, floor) -> None:
    core.session_ts = (
        floor if core.session_ts is None else core.session_ts.merge(floor)
    )


class ShardedAsyncioCluster:
    """S live CausalEC coding groups on localhost TCP, behind one router.

    Quickstart::

        store = ShardedAsyncioCluster(keys, num_shards=2, audit=True)
        await store.start()
        session = store.session(site=0)
        await session.put("alpha", 7)
        op = await session.get("alpha")
        change, stats = await store.add_shard(2)   # live resharding
        await store.shutdown()
    """

    def __init__(
        self,
        keys,
        num_shards: int = 2,
        slots_per_shard: int = 4,
        num_servers: int = 5,
        value_len: int = 1,
        code_factory=None,
        config: ServerConfig | None = None,
        retry: RetryPolicy | None = None,
        host: str = "127.0.0.1",
        audit: bool = False,
        vnodes: int = 64,
        repair=None,
    ):
        self.num_servers = num_servers
        self.value_len = value_len
        self.host = host
        self.config = config or ServerConfig(gc_interval=50.0)
        self.retry = retry
        #: per-shard anti-entropy config -- required for reconfig_replace
        #: and reconfig_add to re-derive new incarnations' codeword rows
        self.repair = repair
        self.code_factory = code_factory or default_shard_code
        self.router = ShardRouter.build(
            keys, num_shards, slots_per_shard, vnodes=vnodes
        )
        self.auditor: OnlineAuditor | None = OnlineAuditor(host) if audit else None
        self.shards: dict[int, AsyncioCluster] = {}
        self._audit_maps: dict[int, tuple[dict, dict]] = {}
        self._started = False
        # one global client-id space, far above any shard's server ids,
        # so a session keeps one identity on every shard's network
        self._next_client_id = num_servers + 100
        self._next_ctrl_id = num_servers + 10_000
        self._migration_clients: dict[int, object] = {}
        self._migration_id: int | None = None
        self._migration_counter = None

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        if self.auditor is not None:
            await self.auditor.start()
        for shard in self.router.ring.shards:
            await self._boot_shard(shard)
        self._started = True

    async def _boot_shard(self, shard: int) -> AsyncioCluster:
        code = self.code_factory(
            self.num_servers, self.router.slots_per_shard, self.value_len
        )
        cluster = AsyncioCluster(
            code,
            config=self.config,
            retry=self.retry,
            host=self.host,
            audit_addr=self.auditor.address if self.auditor else None,
            repair=self.repair,
        )
        key_map: dict[int, object] = {}
        gen_map: dict[int, int] = {}
        for key in self.router.keys_on(shard):
            loc = self.router.location(key)
            key_map[loc.slot] = key
            gen_map[loc.slot] = loc.gen

        def _wire_audit(srv, shard=shard, key_map=key_map, gen_map=gen_map):
            srv.audit_node = shard * _AUDIT_STRIDE + srv.node_id
            srv.audit_shard = shard
            srv.audit_key_map = key_map
            srv.audit_gen = gen_map

        # every incarnation this shard ever boots -- founding servers,
        # replacements, joiners -- gets the shard's audit identity before
        # it streams a single record
        cluster.on_server_created = _wire_audit
        for srv in cluster.servers:
            _wire_audit(srv)
        await cluster.start()
        self.shards[shard] = cluster
        self._audit_maps[shard] = (key_map, gen_map)
        return cluster

    def _alloc_client_id(self) -> int:
        cid = self._next_client_id
        self._next_client_id += 1
        return cid

    def session(
        self,
        site: int = 0,
        failover: bool = False,
        retry: RetryPolicy | None = None,
    ) -> "ShardedSession":
        return ShardedSession(self, site, failover=failover, retry=retry)

    async def quiesce(self, **kw) -> None:
        for cluster in self.shards.values():
            await cluster.quiesce(**kw)

    async def shutdown(self) -> None:
        for cluster in self.shards.values():
            await cluster.shutdown()
        if self.auditor is not None:
            await self.auditor.close()

    def finalize_audit(self):
        """End-of-run auditor verdict (empty list when auditing is off)."""
        return self.auditor.finalize() if self.auditor else []

    def frame_stats(self) -> dict[str, int]:
        """Aggregate wire-frame counters across every shard."""
        totals = {"frames_sent": 0, "flushes": 0}
        for cluster in self.shards.values():
            for k, v in cluster.frame_stats().items():
                totals[k] += v
        return totals

    # ------------------------------------------------------------------
    # fault injection (per shard, or a whole "site" across shards)

    async def kill_server(self, shard: int, i: int, forever: bool = False) -> None:
        await self.shards[shard].kill_server(i, forever=forever)

    async def restart_server(self, shard: int, i: int) -> None:
        await self.shards[shard].restart_server(i)

    async def kill_site(self, site: int) -> None:
        """Crash server ``site`` in every shard (a data-center outage)."""
        for cluster in self.shards.values():
            await cluster.kill_server(site)

    async def restart_site(self, site: int) -> None:
        for cluster in self.shards.values():
            await cluster.restart_server(site)

    # ------------------------------------------------------------------
    # per-shard dynamic membership

    async def reconfig_replace(self, shard: int, server: int):
        """Replace a permanently failed server inside one shard's group.

        Each shard reconfigures independently: its coding group has its
        own membership epoch, and the router is untouched (keys stay
        where they are -- only the group serving them changes shape).
        The replacement inherits the shard's audit identity via the
        ``on_server_created`` hook, so the auditor's ``(server, epoch,
        seq)`` dedup separates it from the dead incarnation's records.
        """
        return await self.shards[shard].replace_server(server)

    async def reconfig_add(self, shard: int, row_seed: int | None = None):
        """Join a redundancy server to one shard's coding group."""
        return await self.shards[shard].add_server(row_seed)

    async def reconfig_remove(self, shard: int, server: int) -> None:
        """Retire a server from one shard's coding group."""
        await self.shards[shard].remove_server(server)

    # ------------------------------------------------------------------
    # view changes

    async def _migration_client(self, shard: int):
        if self._migration_id is None:
            self._migration_id = self._alloc_client_id()
            self._migration_counter = itertools.count()
        if shard not in self._migration_clients:
            # no failover (a retried install must hit the same dedup
            # table), but a retry budget generous enough to ride out a
            # restart of the home server
            self._migration_clients[shard] = await self.shards[shard].add_client(
                server=0,
                retry=RetryPolicy(timeout=150.0, max_retries=10),
                node_id=self._migration_id,
                opid_counter=self._migration_counter,
            )
        return self._migration_clients[shard]

    async def add_shard(self, shard: int) -> tuple[ViewChange, dict]:
        """Boot a new coding group and migrate its keys to it, live."""
        await self._boot_shard(shard)
        change = plan_view_change(self.router, add=(shard,))
        stats = await self.apply_view_change(change)
        return change, stats

    async def remove_shard(self, shard: int) -> tuple[ViewChange, dict]:
        """Drain a shard's keys to the survivors (the group keeps running
        so stragglers still resolve, but owns no keys afterwards)."""
        change = plan_view_change(self.router, remove=(shard,))
        stats = await self.apply_view_change(change)
        return change, stats

    async def apply_view_change(self, change: ViewChange) -> dict:
        """Execute a planned view change while serving traffic."""
        await self._install_view_everywhere(change.version)
        migrated, skipped = [], []
        for mv in change.moves:
            self.router.begin_move(mv.key)
            await self.router.drain_writes(mv.key)
            src = self.shards[mv.src_shard]
            mc_src = await self._migration_client(mv.src_shard)
            mc_src.core.view_version = change.version
            # floor = join of live source clocks: dominates every acked
            # write, so the migration read returns the latest version
            clocks = [s.core.vc for s in src.servers if not s.halted]
            if clocks:
                _merge_floor(
                    mc_src.core, reduce(lambda a, b: a.merge(b), clocks)
                )
            op = await mc_src.read(mv.src_slot)
            if op.failed:
                raise op.error
            # destination audit identity *before* the install, so every
            # audit record for the slot already carries the global key
            # and the bumped generation
            key_map, gen_map = self._audit_maps[mv.dst_shard]
            key_map[mv.dst_slot] = mv.key
            gen_map[mv.dst_slot] = mv.gen
            cutover = None
            if _is_zero_tag(op.tag):
                # never written: nothing to copy, and installing the
                # initial value would fabricate a write record
                skipped.append(mv.key)
            else:
                mc_dst = await self._migration_client(mv.dst_shard)
                mc_dst.core.view_version = change.version
                mop = await mc_dst.migrate(
                    mv.dst_slot, np.array(op.value, copy=True), mv.gen
                )
                if mop.failed:
                    raise mop.error
                cutover = mop.ts
                migrated.append(mv.key)
            self.router.finish_move(
                mv.key, mv.dst_shard, mv.dst_slot, mv.gen, cutover_floor=cutover
            )
        self.router.commit_view(change)
        return {
            "version": change.version,
            "moves": len(change.moves),
            "migrated": migrated,
            "skipped": skipped,
        }

    async def _install_view_everywhere(self, version: int) -> None:
        """Broadcast ``ViewInstall`` to every live server, best effort."""
        sends = [
            self._send_view_install(srv, version)
            for cluster in self.shards.values()
            for srv in cluster.servers
            if not srv.halted
        ]
        await asyncio.gather(*sends, return_exceptions=True)

    async def _send_view_install(self, srv, version: int) -> bool:
        for _ in range(3):
            ctrl_id = self._next_ctrl_id
            self._next_ctrl_id += 1
            writer = None
            try:
                reader, writer = await asyncio.open_connection(
                    srv.host, srv.port
                )
                # a control connection is just a client connection that
                # sends one message and waits for its ack
                writer.write(wire.encode_frame(("hc", ctrl_id)))
                writer.write(wire.encode_frame(("m", ViewInstall(version))))
                await writer.drain()
                while True:
                    frame = await asyncio.wait_for(read_frame(reader), 2.0)
                    if frame[0] == "m" and isinstance(frame[1], ViewInstallAck):
                        return True
            except (*_CONN_ERRORS, asyncio.TimeoutError):
                await asyncio.sleep(0.05)
            finally:
                if writer is not None:
                    writer.close()
        return False  # the epoch still gossips on every request's view field


class ShardedSession:
    """One logical session spanning shards (shared id + opid counter)."""

    def __init__(
        self,
        store: ShardedAsyncioCluster,
        site: int,
        failover: bool = False,
        retry: RetryPolicy | None = None,
    ):
        self._store = store
        self._site = site
        self._failover = failover
        self._retry = retry
        self.session_id = store._alloc_client_id()
        self._counter = itertools.count()
        self._clients: dict[int, object] = {}

    async def _client(self, shard: int):
        client = self._clients.get(shard)
        if client is None:
            client = await self._store.shards[shard].add_client(
                server=self._site,
                retry=self._retry,
                failover=self._failover,
                node_id=self.session_id,
                opid_counter=self._counter,
            )
            self._clients[shard] = client
        return client

    def _prepare(self, client, key) -> None:
        router = self._store.router
        client.core.view_version = router.view_version
        floor = router.cutover_floor(key)
        if floor is not None:
            # migration watermark: park at the new owner until the
            # migrated value is visible there
            _merge_floor(client.core, floor)

    async def put(self, key, raw):
        router = self._store.router
        # fence: block while the key is mid-migration, then register as
        # in-flight *before* any await so drain_writes counts this write
        await router.wait_movable(key)
        loc = router.location(key)
        router.op_started(key, write=True)
        try:
            cluster = self._store.shards[loc.shard]
            client = await self._client(loc.shard)
            self._prepare(client, key)
            op = await client.write(loc.slot, cluster.value(raw))
        finally:
            router.op_finished(key, write=True)
        if op.failed:
            raise op.error
        return op

    async def get(self, key):
        # reads are not fenced: mid-migration they route to the old
        # owner, whose latest acked version is what migration copies
        loc = self._store.router.location(key)
        client = await self._client(loc.shard)
        self._prepare(client, key)
        op = await client.read(loc.slot)
        if op.failed:
            raise op.error
        return op
