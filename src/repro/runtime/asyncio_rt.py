"""Real-network runtime: the sans-I/O cores on asyncio TCP sockets.

This module proves the sans-I/O refactor by running the *same*
:class:`~repro.protocol.server_core.ServerCore` and
:class:`~repro.protocol.client_core.ClientCore` objects that power the
discrete-event simulator on an actual asyncio event loop, with real
length-prefixed frames (:mod:`repro.runtime.wire`) over real localhost
sockets, monotonic-clock timers, and file-backed durable checkpoints.

Topology
--------
Each :class:`AsyncioServer` owns one TCP listener.  Three connection kinds
arrive on it, distinguished by a hello frame:

* ``("hp", i, acked, cfg_epoch)`` -- the *peer data channel* from server
  ``i``: server ``i`` dials every other server and owns the directed
  channel ``i -> j``.  Data frames ``("d", seq, msg)`` flow dialer ->
  listener; cumulative acks ``("a", seq)`` flow back on the same socket.
  ``cfg_epoch`` is the dialer's membership epoch: a listener that has
  moved to a newer configuration *fences* the connection (rejecting every
  frame it would have carried) after answering with its commit chain
  (``("rc", commits)``) so a merely-behind peer can catch up and redial.
* ``("hc", c)`` -- a client connection: request/reply frames ``("m", msg)``
  flow both ways.  Clients get no ARQ; the client retry policy plus
  server-side opid deduplication already make requests crash-tolerant.

Reliable FIFO channels (the paper's network model) are realised per peer
channel with a small ARQ: the dialer numbers messages, buffers them until
acked, and replays the unacked tail on every reconnect; the listener
delivers in sequence order, deduplicates, records the delivery watermark
*before* handling (so the post-handler checkpoint makes delivery and state
change atomic), and acks only after the handler's ``PersistEffect`` hit
stable storage.  Channel state (send seq + unacked tail, receive
watermarks) rides inside each :class:`~repro.core.snapshot.ServerCheckpoint`
exactly like the simulator's ARQ transport state, so a restarted server
resumes its channels without duplicating or dropping protocol messages.

Time is ``loop.time()`` in milliseconds, so the cores see the same unit the
simulator uses; effect timers map to ``loop.call_later`` guarded by an
incarnation epoch (a timer armed before a crash never fires into the next
incarnation).
"""

from __future__ import annotations

import asyncio
import hashlib
import logging
import os
import struct
import tempfile
from collections import deque
from pathlib import Path

import numpy as np

from ..consistency.history import History, Operation
from ..consistency.online import AuditOp
from ..core.messages import (
    DigestMsg,
    Heartbeat,
    ReconfigCommit,
    ReconfigPropose,
    RepairRequest,
    RepairResponse,
)
from ..core.snapshot import (
    CorruptCheckpoint,
    ServerCheckpoint,
    capture_server_state,
    restore_server_state,
)
from ..ec.code import LinearCode
from ..ec.codes import extend_code
from ..protocol.client_core import ClientCore, HomeServerUnavailable, RetryPolicy
from ..protocol.effects import (
    CancelTimerEffect,
    HomeServerSwitchEffect,
    LogEffect,
    MembershipChangedEffect,
    OpSettledEffect,
    PeerAliveEffect,
    PeerConfirmedDeadEffect,
    PeerSuspectedEffect,
    PersistEffect,
    ReplyEffect,
    SendEffect,
    SetTimerEffect,
)
from ..protocol.failure_detector import FailureDetectorConfig, FailureDetectorCore
from ..protocol.reconfig_core import ReconfigCore, validate_membership
from ..protocol.repair_core import RepairConfig, RepairCore
from ..protocol.scrub_core import ScrubConfig, ScrubCore
from ..protocol.server_core import ServerConfig, ServerCore
from ..sim.faults import FaultPlan
from . import wire
from .chaos_rt import LiveFaultInjector

__all__ = [
    "FileDurableStore",
    "AsyncioServer",
    "AsyncioClient",
    "AsyncioCluster",
    "install_uvloop",
]

log = logging.getLogger(__name__)


def install_uvloop() -> bool:
    """Swap in uvloop's event-loop policy when the package is available.

    Purely optional: the runtime works identically on the stock loop, just
    slower.  Returns whether uvloop was installed.
    """
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        return False
    uvloop.install()
    return True

#: seconds between reconnect attempts for peer channels and clients
RECONNECT_DELAY = 0.02

#: seconds between retransmissions of the unacked tail while chaos is
#: active (plain TCP never loses frames, so the loop only runs under an
#: injector; the receiver's watermark dedups the repeats)
RETRANSMIT_INTERVAL = 0.05

#: seconds between polls of the audit log by the streaming task
AUDIT_POLL = 0.02

_CONN_ERRORS = (
    ConnectionError,
    asyncio.IncompleteReadError,
    OSError,
    wire.WireError,
)


async def read_frame(reader: asyncio.StreamReader):
    """Read one length-prefixed wire frame from a stream.

    Raises :class:`~repro.runtime.wire.FrameCorrupt` on a CRC mismatch
    *after* consuming the frame's bytes, so the stream stays framed and the
    caller can simply skip the frame (it behaves like a drop: ARQ
    retransmission supplies a clean copy).
    """
    (length,) = struct.unpack(">I", await reader.readexactly(4))
    if length > wire.MAX_FRAME_BYTES:
        raise wire.WireError(f"frame length {length} exceeds MAX_FRAME_BYTES")
    return wire.decode_body(await reader.readexactly(length))


def _now_ms(loop: asyncio.AbstractEventLoop) -> float:
    return loop.time() * 1000.0


#: checkpoint file magic; the trailing digit is the container version
_CKPT_MAGIC = b"CECKPT01"
_CKPT_U32 = struct.Struct(">I")
_CKPT_DIGEST_LEN = 16


def _ckpt_digest(data: bytes) -> bytes:
    return hashlib.blake2b(data, digest_size=_CKPT_DIGEST_LEN).digest()


class FileDurableStore:
    """File-backed stable storage: one checkpoint file per server.

    The live-runtime counterpart of the simulator's in-memory
    :class:`~repro.core.snapshot.DurableStore`, with the same interface.
    Checkpoints are wire-encoded (never pickled) and replaced atomically
    (write-to-temp + fsync + rename + directory fsync), so a crash
    mid-persist leaves the previous checkpoint intact *and* the rename is
    itself durable; stale ``*.ckpt.tmp`` from a crash mid-write are swept
    on boot.

    Integrity: the file is a sectioned container --
    ``magic || u32 nsections || (u32 len || blake2b-16 || payload)* ||
    header blake2b-16`` -- with a digest per section (meta / durable state
    / transport state) plus a header digest over the section directory.
    :meth:`load` verifies all of them; *any* mismatch or truncation is
    reported as a typed :class:`~repro.core.snapshot.CorruptCheckpoint`
    (in ``corruption_reports``) and surfaces as "no checkpoint", so the
    server restarts empty and lets anti-entropy repair pull its state back
    from peers instead of crashing on load.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.persist_counts: dict[int, int] = {}
        #: every corruption/truncation ever detected by :meth:`load`
        self.corruption_reports: list[CorruptCheckpoint] = []
        # a crash between tmp-write and rename leaves a stale tmp behind;
        # it was never the live checkpoint, so sweep it
        for stale in self.root.glob("*.ckpt.tmp"):
            stale.unlink(missing_ok=True)

    def _path(self, server_id: int) -> Path:
        return self.root / f"server_{server_id}.ckpt"

    @staticmethod
    def _encode_checkpoint(checkpoint: ServerCheckpoint) -> bytes:
        sections = (
            wire.encode((checkpoint.server_id, checkpoint.time)),
            wire.encode(checkpoint.state),
            wire.encode(checkpoint.transport),
        )
        head = _CKPT_MAGIC + _CKPT_U32.pack(len(sections))
        parts = [head]
        directory = [head]
        for payload in sections:
            digest = _ckpt_digest(payload)
            parts += [_CKPT_U32.pack(len(payload)), digest, payload]
            directory.append(digest)
        parts.append(_ckpt_digest(b"".join(directory)))
        return b"".join(parts)

    @staticmethod
    def _decode_checkpoint(blob: bytes) -> ServerCheckpoint:
        """Parse + verify; raises ``ValueError`` on any integrity failure."""
        view = memoryview(blob)
        if len(view) < len(_CKPT_MAGIC) + 4 + _CKPT_DIGEST_LEN:
            raise ValueError("truncated checkpoint header")
        if view[: len(_CKPT_MAGIC)] != _CKPT_MAGIC:
            raise ValueError("bad checkpoint magic")
        pos = len(_CKPT_MAGIC)
        (nsections,) = _CKPT_U32.unpack(view[pos : pos + 4])
        pos += 4
        if nsections != 3:
            raise ValueError(f"unexpected section count {nsections}")
        payloads, directory = [], [bytes(view[: len(_CKPT_MAGIC) + 4])]
        for i in range(nsections):
            if pos + 4 + _CKPT_DIGEST_LEN > len(view):
                raise ValueError(f"truncated section {i} header")
            (length,) = _CKPT_U32.unpack(view[pos : pos + 4])
            pos += 4
            digest = bytes(view[pos : pos + _CKPT_DIGEST_LEN])
            pos += _CKPT_DIGEST_LEN
            if pos + length > len(view):
                raise ValueError(f"truncated section {i} payload")
            payload = view[pos : pos + length]
            pos += length
            if _ckpt_digest(payload) != digest:
                raise ValueError(f"section {i} digest mismatch")
            payloads.append(payload)
            directory.append(digest)
        if pos + _CKPT_DIGEST_LEN != len(view):
            raise ValueError("trailing bytes after checkpoint footer")
        if _ckpt_digest(b"".join(directory)) != bytes(view[pos:]):
            raise ValueError("checkpoint header digest mismatch")
        try:
            server_id, time = wire.decode(payloads[0])
            state = wire.decode(payloads[1])
            transport = wire.decode(payloads[2])
        except wire.WireError as exc:
            raise ValueError(f"checkpoint section undecodable: {exc}") from exc
        return ServerCheckpoint(server_id, time, state, transport)

    def persist(self, checkpoint: ServerCheckpoint) -> None:
        path = self._path(checkpoint.server_id)
        tmp = path.with_suffix(".ckpt.tmp")
        with open(tmp, "wb") as fh:
            fh.write(self._encode_checkpoint(checkpoint))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._fsync_dir()
        self.persist_counts[checkpoint.server_id] = (
            self.persist_counts.get(checkpoint.server_id, 0) + 1
        )

    def _fsync_dir(self) -> None:
        # the rename is only durable once the directory entry is; some
        # platforms refuse O_RDONLY fsync on directories -- best effort
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover
            pass
        finally:
            os.close(fd)

    def load(self, server_id: int) -> ServerCheckpoint | None:
        path = self._path(server_id)
        if not path.exists():
            return None
        try:
            return self._decode_checkpoint(path.read_bytes())
        except (ValueError, OSError) as exc:
            self.corruption_reports.append(
                CorruptCheckpoint(server_id, str(path), str(exc))
            )
            return None

    def verify_file(self, server_id: int) -> bool | None:
        """Re-verify the at-rest checkpoint's digests (disk scrub).

        Returns ``None`` when no checkpoint exists, ``True`` when every
        digest checks out, ``False`` (recording a typed report) when the
        file is damaged -- without surfacing the decoded checkpoint, so
        scrubbing cannot accidentally become a recovery path.
        """
        path = self._path(server_id)
        if not path.exists():
            return None
        try:
            self._decode_checkpoint(path.read_bytes())
            return True
        except (ValueError, OSError) as exc:
            self.corruption_reports.append(
                CorruptCheckpoint(server_id, str(path), str(exc))
            )
            return False

    def corrupt_detected(self, server_id: int | None = None) -> int:
        """How many corrupt/truncated checkpoints :meth:`load` has seen."""
        if server_id is None:
            return len(self.corruption_reports)
        return sum(
            1 for r in self.corruption_reports if r.server_id == server_id
        )

    # -- deterministic damage, for chaos schedules and tests -----------

    def corrupt_file(self, server_id: int, seed: int = 0, flips: int = 1) -> bool:
        """Flip ``flips`` seeded bits in the stored checkpoint (bit rot).

        Returns whether a file existed to damage.  The flipped offsets are
        a pure function of ``(seed, server_id, file size)`` so chaos
        schedules replay identically.
        """
        path = self._path(server_id)
        if not path.exists():
            return False
        blob = bytearray(path.read_bytes())
        if not blob:
            return False
        rng = np.random.default_rng((seed, 0xB17F11, server_id, len(blob)))
        for _ in range(flips):
            pos = int(rng.integers(0, len(blob)))
            blob[pos] ^= 1 << int(rng.integers(0, 8))
        path.write_bytes(bytes(blob))
        return True

    def truncate_file(self, server_id: int, keep_frac: float = 0.5) -> bool:
        """Model a torn write: keep only a prefix of the checkpoint file."""
        path = self._path(server_id)
        if not path.exists():
            return False
        blob = path.read_bytes()
        path.write_bytes(blob[: int(len(blob) * keep_frac)])
        return True

    def wipe(self, server_id: int) -> None:
        """Simulate disk loss for one server (tests)."""
        self._path(server_id).unlink(missing_ok=True)


class _PeerChannel:
    """The dialer end of one directed reliable channel ``me -> peer``.

    With a :class:`~repro.runtime.chaos_rt.LiveFaultInjector` attached to
    the server, every transmission attempt (first send, reconnect replay,
    periodic retransmission) asks the injector for a
    :class:`~repro.runtime.chaos_rt.FrameFate` first: frames may be
    dropped, duplicated, or delayed before they reach the socket.  The ARQ
    already masks exactly these hazards -- dropped frames stay in
    ``unacked`` and are retransmitted by :meth:`_retransmit_loop`,
    duplicates and reorderings are absorbed by the receiver's watermark --
    so chaos costs latency, never correctness.

    Batched flush (``server.batch``, the default): frames surviving chaos
    land in a per-channel ``_pending`` list instead of going straight to
    the socket; a flusher task wakes once per event-loop tick, concatenates
    everything pending into a **single** ``writer.write`` and then applies
    ``drain()``-based backpressure.  While the transport sits over its
    high-water mark, *data* frames stop being enqueued entirely -- they are
    already held by ``unacked`` -- and the flusher replays the skipped tail
    after the drain completes (the receiver's watermark absorbs any
    overlap).  Gossip frames are best-effort and are simply shed under
    pressure.  FIFO order is preserved: ``_pending`` is flushed in append
    order by the only writer task.
    """

    def __init__(self, server: "AsyncioServer", peer_id: int):
        self.server = server
        self.peer_id = peer_id
        self.seq = 0
        #: highest cumulative ack received; frames <= acked are pruned and
        #: can never be replayed, so the hello advertises it as the
        #: receiver's minimum watermark (see ``_peer_loop``)
        self.acked = 0
        self.unacked: deque[tuple[int, object]] = deque()
        self.writer: asyncio.StreamWriter | None = None
        self.task: asyncio.Task | None = None
        self._rexmit_task: asyncio.Task | None = None
        self._flush_task: asyncio.Task | None = None
        self._stopped = False
        #: frames awaiting the coalesced per-tick flush (batch mode)
        self._pending: list[tuple] = []
        self._flush_wakeup = asyncio.Event()
        #: transport over its high-water mark; a drain() is in flight
        self._paused = False
        #: lowest data seq skipped while paused, replayed after the drain
        self._stall_from: int | None = None
        #: seq -> loop time of the latest transmission attempt; the
        #: retransmit loop only re-sends frames older than the interval
        self._last_tx: dict[int, float] = {}

    def send(self, msg) -> None:
        self.seq += 1
        self.unacked.append((self.seq, msg))
        self._transmit(self.seq, msg)

    def send_gossip(self, msg) -> None:
        """Best-effort unsequenced frame (heartbeats): no ARQ, no replay."""
        fate = self._fate()
        if fate is None or fate.deliver:
            delay = 0.0 if fate is None else fate.delay_ms
            self._enqueue_later(("g", msg), delay)

    def _fate(self):
        chaos = self.server.chaos
        if chaos is None:
            return None
        return chaos.fate(self.server.node_id, self.peer_id)

    def _transmit(self, seq: int, msg) -> None:
        """One transmission attempt for a sequenced data frame."""
        # stamp every attempt, dropped ones included: the age gate measures
        # time since we last *tried*, not since the frame last got through
        self._last_tx[seq] = asyncio.get_running_loop().time()
        fate = self._fate()
        frame = ("d", seq, msg)
        if fate is None:
            self._enqueue(frame)
            return
        if fate.drop:
            return
        if fate.corrupt:
            # deliver the frame *damaged*: seeded bit flips inside the
            # CRC-covered region.  The receiver's frame CRC rejects it
            # like a drop and the ARQ retransmits a clean copy.
            frame = self.server.chaos.damage(
                wire.encode_frame(frame),
                self.server.node_id,
                self.peer_id,
                fate.k,
            )
        self._enqueue_later(frame, fate.delay_ms)
        if fate.dup:
            # the copy lands a beat later, off the FIFO path
            self._enqueue_later(frame, fate.delay_ms + 1.0)

    def _enqueue_later(self, frame, delay_ms: float) -> None:
        if delay_ms <= 0:
            self._enqueue(frame)
        else:
            asyncio.get_running_loop().call_later(
                delay_ms / 1000.0, self._enqueue, frame
            )

    def _enqueue(self, frame) -> None:
        if self.writer is None:
            # disconnected: data frames stay in unacked and are replayed
            # on reconnect; gossip is best-effort and simply lost
            return
        if not self.server.batch:
            self._write_frame(frame)
            return
        if self._paused:
            # backpressure: the transport is over its high-water mark.
            # Data frames are safe in unacked -- remember the lowest seq
            # we skipped so the flusher can replay the tail after drain
            if frame[0] == "d" and (
                self._stall_from is None or frame[1] < self._stall_from
            ):
                self._stall_from = frame[1]
            return
        self._pending.append(frame)
        self._flush_wakeup.set()

    def _write_frame(self, frame) -> None:
        if self.writer is not None:
            try:
                if isinstance(frame, bytes):  # pre-encoded (chaos-damaged)
                    self.writer.write(frame)
                else:
                    self.writer.write(wire.encode_frame(frame))
            except _CONN_ERRORS:  # pragma: no cover - racing disconnect
                self.writer = None
                return
            self.server.frames_sent += 1
            self.server.flushes += 1

    async def _flush_loop(self) -> None:
        """Coalesce pending frames into one write per event-loop tick.

        ``_flush_wakeup`` is set by ``_enqueue``; since this task only runs
        between ticks, every frame produced by one burst of deliveries
        (e.g. all App/Del broadcasts triggered by a batch of client
        requests) lands in a single ``writer.write`` of concatenated
        frames -- one syscall, one TCP segment train, instead of one per
        frame.
        """
        while not self._stopped:
            await self._flush_wakeup.wait()
            self._flush_wakeup.clear()
            writer, frames = self.writer, self._pending
            if not frames:
                continue
            self._pending = []
            if writer is None:
                continue  # data frames replay on reconnect; gossip is lost
            try:
                writer.write(wire.encode_frames(frames))
            except _CONN_ERRORS:  # pragma: no cover - racing disconnect
                self.writer = None
                continue
            self.server.frames_sent += len(frames)
            self.server.flushes += 1
            await self._maybe_drain(writer)

    async def _maybe_drain(self, writer: asyncio.StreamWriter) -> None:
        """Apply backpressure when the transport is over its high water.

        Pausing flips ``_paused`` so ``_enqueue`` stops feeding the socket
        (a slow peer must not grow our buffers without bound -- neither the
        transport's nor ``_pending``); once the peer drains us below the
        low-water mark, the unacked tail from the first skipped seq is
        re-transmitted.  Correctness is untouched: skipped frames live in
        ``unacked`` until acked, and the receiver's watermark deduplicates
        any overlap between pre-pause writes and the replay.
        """
        transport = writer.transport
        if transport is None or transport.is_closing():
            return
        _low, high = transport.get_write_buffer_limits()
        if transport.get_write_buffer_size() <= high:
            return
        self._paused = True
        try:
            await writer.drain()
        except _CONN_ERRORS:  # pragma: no cover - peer vanished mid-drain
            self.writer = None
            return
        finally:
            self._paused = False
        if self._stall_from is not None and self.writer is writer:
            stalled, self._stall_from = self._stall_from, None
            for seq, msg in list(self.unacked):
                if seq >= stalled:
                    self._transmit(seq, msg)

    def start(self) -> None:
        self.task = asyncio.ensure_future(self._run())
        if self.server.batch:
            self._flush_task = asyncio.ensure_future(self._flush_loop())
        if self.server.chaos is not None:
            self._rexmit_task = asyncio.ensure_future(self._retransmit_loop())

    async def _run(self) -> None:
        while not self._stopped:
            writer = None
            try:
                host, port = self.server.peers[self.peer_id]
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    wire.encode_frame(
                        (
                            "hp",
                            self.server.node_id,
                            self.acked,
                            self.server.core.cfg_epoch,
                        )
                    )
                )
                self.server.frames_sent += 1
                self.server.flushes += 1
                # frames queued for the dead connection are stale; the
                # replay below re-sends everything that still matters
                self._pending.clear()
                self._stall_from = None
                self.writer = writer
                for seq, msg in list(self.unacked):  # replay the unacked tail
                    self._transmit(seq, msg)
                await writer.drain()
                while True:
                    try:
                        payload = await read_frame(reader)
                    except wire.FrameCorrupt:
                        # a rotted ack: skip it, the next cumulative ack
                        # carries the same information
                        self.server.frames_corrupt += 1
                        continue
                    if payload[0] == "a":
                        self._on_ack(payload[1])
                    elif payload[0] == "rc":
                        # fenced: the listener is in a newer membership
                        # epoch and sent its commit chain so we can catch
                        # up; install it and let the redial handshake with
                        # the new epoch
                        self.server.install_commits(payload[1])
            except _CONN_ERRORS:
                pass
            finally:
                self.writer = None
                if writer is not None:
                    writer.close()
            if not self._stopped:
                await asyncio.sleep(RECONNECT_DELAY)

    async def _retransmit_loop(self) -> None:
        """Re-send *stale* unacked frames while chaos may be eating frames.

        Plain TCP needs no retransmission timer (replay-on-reconnect covers
        connection loss), but an injector drops individual frames on a live
        connection; without this loop a dropped frame would stall its
        channel forever.
        """
        while not self._stopped:
            await asyncio.sleep(RETRANSMIT_INTERVAL)
            if self.writer is not None:
                self._retransmit_pass(asyncio.get_running_loop().time())

    def _retransmit_pass(self, now: float) -> int:
        """Retransmit unacked frames whose last attempt has aged out.

        Age gating matters: without it every pass re-sent the *entire*
        unacked tail -- frames transmitted microseconds ago included -- and
        each re-send re-rolled the chaos fate, so ``dup`` fates multiplied
        copies of frames the receiver had already absorbed.  Returns the
        number of frames re-sent.
        """
        sent = 0
        for seq, msg in list(self.unacked):
            last = self._last_tx.get(seq, float("-inf"))
            if now - last >= RETRANSMIT_INTERVAL:
                self._transmit(seq, msg)
                sent += 1
        return sent

    def _on_ack(self, upto: int) -> None:
        if upto > self.acked:
            self.acked = upto
        while self.unacked and self.unacked[0][0] <= upto:
            seq, _ = self.unacked.popleft()
            self._last_tx.pop(seq, None)

    def reset(self) -> None:
        """Abruptly drop the established connection (it redials + replays)."""
        writer = self.writer
        self.writer = None
        if writer is not None:
            writer.close()

    async def stop(self) -> None:
        self._stopped = True
        self._flush_wakeup.set()  # unblock the flusher so cancel lands fast
        for task in (self.task, self._rexmit_task, self._flush_task):
            if task is None:
                continue
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            except Exception:
                # cancellation is expected; anything else (a wire-codec
                # bug, a programming error in the loops) must surface
                log.exception(
                    "peer channel %d->%d task failed during stop",
                    self.server.node_id,
                    self.peer_id,
                )
        self.task = None
        self._rexmit_task = None
        self._flush_task = None
        if self.writer is not None:
            self.writer.close()
            self.writer = None


class _ChannelStateView:
    """Presents ARQ channel state through the transport-snapshot interface
    that :func:`~repro.core.snapshot.capture_server_state` expects."""

    active = True

    def __init__(self, server: "AsyncioServer"):
        self._server = server

    def snapshot_node(self, node_id: int) -> dict:
        s = self._server
        return {
            "send": {
                j: {"seq": ch.seq, "unacked": list(ch.unacked)}
                for j, ch in s._channels.items()
            },
            "recv": dict(s._recv_last),
        }

    def restore_node(self, node_id: int, state: dict) -> None:
        s = self._server
        for j, st in state.get("send", {}).items():
            ch = s._channels.get(j)
            if ch is not None:
                ch.seq = st["seq"]
                ch.unacked = deque(tuple(entry) for entry in st["unacked"])
                # everything below the unacked tail was acked and pruned
                ch.acked = ch.unacked[0][0] - 1 if ch.unacked else ch.seq
        s._recv_last = dict(state.get("recv", {}))


class AsyncioServer:
    """One CausalEC server: a :class:`ServerCore` behind a TCP listener.

    Optional resilience attachments:

    * ``chaos`` -- a :class:`~repro.runtime.chaos_rt.LiveFaultInjector`
      consulted by every peer-channel transmission;
    * ``detector`` -- a :class:`FailureDetectorConfig`; the server then
      runs a :class:`FailureDetectorCore` whose heartbeats travel as
      best-effort ``("g", msg)`` gossip frames on the peer channels
      (bypassing the ARQ -- retransmitting liveness evidence would defeat
      it) and whose suspect/alive transitions land in ``detector_log``;
    * ``audit_addr`` -- address of an :class:`~repro.runtime.auditor
      .OnlineAuditor`; decision-log entries are then mirrored as
      :class:`~repro.consistency.online.AuditOp` records and streamed to
      it.  The record list models an append-only log file: it survives
      :meth:`kill` (unlike volatile protocol state) and the stream replays
      it in full after every reconnect, the auditor deduplicates.
    """

    def __init__(
        self,
        core: ServerCore,
        store: FileDurableStore | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        chaos: LiveFaultInjector | None = None,
        detector: FailureDetectorConfig | None = None,
        audit_addr: tuple[str, int] | None = None,
        repair: RepairConfig | None = None,
        scrub: ScrubConfig | None = None,
        batch: bool = True,
    ):
        self.core = core
        self.node_id = core.node_id
        self.num_servers = core.code.N
        self.store = store
        self.host = host
        self.port = port
        self.chaos = chaos
        #: coalesce outbound frames (and acks) per event-loop tick;
        #: ``False`` restores one write + one ack per frame, kept as the
        #: comparison lane for the macro benchmark
        self.batch = batch
        #: wire frames put on a socket / single writer.write calls issued;
        #: ``frames_sent / flushes`` is the measured batching factor
        self.frames_sent = 0
        self.flushes = 0
        #: inbound frames rejected by the frame CRC and skipped like drops
        self.frames_corrupt = 0
        self.audit_addr = audit_addr
        if audit_addr is not None:
            # the audit stream mirrors decision-log entries; auditing a
            # server that never logs decisions would silently check nothing
            core.config.decision_log = True
        self.peers: dict[int, tuple[str, int]] = {}
        self.halted = False
        self.decision_log: list[tuple] = []
        #: delivered-frame counter; quiescence detection watches it
        self.activity = 0
        self._epoch = 0
        self._listener: asyncio.Server | None = None
        self._channels: dict[int, _PeerChannel] = {}
        self._recv_last: dict[int, int] = {}
        self._ooo: dict[int, dict[int, object]] = {}
        self._clients: dict[int, asyncio.StreamWriter] = {}
        self._inbound: set[asyncio.StreamWriter] = set()
        self._timers: dict[tuple, asyncio.TimerHandle] = {}
        self._arq_view = _ChannelStateView(self)
        self._loop: asyncio.AbstractEventLoop | None = None
        self.detector: FailureDetectorCore | None = None
        if detector is not None:
            others = [j for j in range(self.num_servers) if j != self.node_id]
            self.detector = FailureDetectorCore(self.node_id, others, detector)
        #: anti-entropy overlay; digests ride the gossip path, repair
        #: requests/responses the reliable ARQ channels
        self.repair: RepairCore | None = (
            None if repair is None else RepairCore(core, repair)
        )
        #: bit-rot scrubber: periodically re-verifies the codeword seal
        #: and the on-disk checkpoint, quarantining + healing corruption
        self.scrub: ScrubCore | None = (
            None if scrub is None else ScrubCore(core, scrub)
        )
        #: epoch-fenced dynamic membership (always on: with no
        #: reconfigurations it is a zero-cost epoch-0 pass-through)
        self.reconfig = ReconfigCore(core)
        #: every membership commit this incarnation knows, by epoch; the
        #: cluster seeds replacements with the full chain so they can
        #: answer fenced peers and rebuild extended codes after restarts
        self.commit_chain: list[ReconfigCommit] = []
        #: set by ``kill(forever=True)``: this incarnation is permanently
        #: failed -- supervisors must not resurrect it
        self.permanently_failed = False
        #: hook called as ``on_membership_change(server_id, effect)``
        self.on_membership_change = None
        #: (time, peer, "suspect" | "alive") -- this incarnation and earlier
        self.detector_log: list[tuple[float, int, str]] = []
        #: hook called as ``on_transition(server_id, peer, kind)``
        self.on_detector_transition = None
        self._audit_log: list[AuditOp] = []
        self._audit_task: asyncio.Task | None = None
        #: audit identity (sharded clusters): ``audit_node`` must be
        #: globally unique across shards (seq dedup at the auditor is per
        #: server id); ``audit_shard`` scopes this group's tags;
        #: ``audit_key_map``/``audit_gen`` translate codeword slots into
        #: global keys and migration generations.  Defaults leave
        #: unsharded clusters byte-identical on the audit stream.
        self.audit_node = self.node_id
        self.audit_shard = 0
        self.audit_key_map: dict[int, object] | None = None
        self.audit_gen: dict[int, int] = {}
        #: serializes kill/restart.  Both suspend at await points, and a
        #: supervisor (polling ``halted``) can schedule a restart while a
        #: kill coroutine is still tearing down -- unserialized, the kill's
        #: tail would wipe the freshly restored core and leave a zombie
        #: listener acking frames into a never-applying inqueue.
        self._lifecycle = asyncio.Lock()

    # ------------------------------------------------------------------
    # lifecycle

    def now(self) -> float:
        return _now_ms(self._loop)

    @property
    def stats(self):
        return self.core.stats

    async def start(self) -> None:
        """Bind the listener (port 0 = ephemeral) and boot the core."""
        self._loop = asyncio.get_running_loop()
        await self._start_listener()
        self.interpret(self.core.boot(self.now()))
        self._boot_overlays()

    def _boot_overlays(self) -> None:
        """Start the operational overlays: detector, repair, audit stream."""
        if self.detector is not None:
            self.interpret_detector(self.detector.boot(self.now()))
        if self.repair is not None:
            # round state is volatile: each incarnation reboots the overlay
            self.interpret(self.repair.boot(self.now()))
        if self.scrub is not None:
            self.interpret(self.scrub.boot(self.now()))
        if self.audit_addr is not None:
            self._audit_task = asyncio.ensure_future(self._audit_loop())

    async def _start_listener(self) -> None:
        self._listener = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._listener.sockets[0].getsockname()[1]

    def set_peers(self, addresses: dict[int, tuple[str, int]]) -> None:
        self.peers = {j: a for j, a in addresses.items() if j != self.node_id}

    def connect_peers(self) -> None:
        for j in self.peers:
            ch = self._channels[j] = _PeerChannel(self, j)
            ch.start()

    async def kill(self, forever: bool = False) -> None:
        """Crash: drop timers, connections, listener, and volatile state.

        ``forever=True`` additionally marks the incarnation permanently
        failed (a machine that is never coming back): supervisors skip it,
        and the failure detector's confirmed-dead escalation is what
        eventually replaces it.
        """
        async with self._lifecycle:
            if forever:
                self.permanently_failed = True
            await self._kill_locked()

    async def _kill_locked(self) -> None:
        self.halted = True
        self._epoch += 1
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        if self._audit_task is not None:
            self._audit_task.cancel()
            try:
                await self._audit_task
            except asyncio.CancelledError:
                pass
            except Exception:
                log.exception(
                    "server %d audit stream failed during kill", self.node_id
                )
            self._audit_task = None
        for ch in self._channels.values():
            await ch.stop()
        self._channels.clear()
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        for writer in list(self._inbound):
            writer.close()
        self._inbound.clear()
        self._clients.clear()
        await asyncio.sleep(0.01)  # let connection handlers observe the close
        # a crash loses everything not on disk
        self._recv_last = {}
        self._ooo = {}
        self.core.wipe_volatile()

    async def restart(self) -> None:
        """Recover: reload the durable checkpoint, rebind, redial, resume.

        Also usable as a cold-start entry point for a standalone server
        process resuming from an on-disk checkpoint (``repro serve``).
        """
        async with self._lifecycle:
            if self.permanently_failed:
                # a replaced machine's old incarnation must never rejoin:
                # its slot (and endpoint) belong to the replacement now
                raise RuntimeError(
                    f"server {self.node_id} is permanently failed"
                )
            if self._loop is None:
                self._loop = asyncio.get_running_loop()
            self.halted = False
            for j in self.peers:
                ch = self._channels[j] = _PeerChannel(self, j)
            checkpoint = (
                None if self.store is None else self.store.load(self.node_id)
            )
            if checkpoint is not None:
                restore_server_state(
                    self.core, checkpoint, transport=self._arq_view
                )
            await self._start_listener()
            for ch in self._channels.values():
                ch.start()
            self.interpret(self.core.after_restart(self.now()))
            self._boot_overlays()

    def reset_connections(self) -> None:
        """Abruptly close every established connection without crashing.

        Dialer channels redial and replay their unacked tails; inbound
        peers and clients observe the close and reconnect.  Models a NIC
        hiccup / middlebox reset: connection state is lost, process state
        is not (:class:`~repro.sim.faults.FaultPlan` ``resets``).
        """
        for ch in self._channels.values():
            ch.reset()
        for writer in list(self._inbound):
            writer.close()

    async def shutdown(self) -> None:
        if not self.halted:
            await self.kill()

    # ------------------------------------------------------------------
    # connections

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        epoch = self._epoch
        src = None
        self._inbound.add(writer)
        try:
            hello = await read_frame(reader)
            kind, src = hello[0], hello[1]
            if kind == "hp":
                base = hello[2] if len(hello) > 2 else 0
                peer_epoch = hello[3] if len(hello) > 3 else 0
                if not self.reconfig.frame_admissible(peer_epoch):
                    # the dialer is in an older membership epoch: fence the
                    # connection (none of its frames are delivered) but
                    # hand back the commit chain first -- a live-but-behind
                    # peer installs it and redials at the new epoch, while
                    # a superseded zombie stays fenced forever
                    try:
                        writer.write(
                            wire.encode_frame(("rc", list(self.commit_chain)))
                        )
                        self.frames_sent += 1
                        self.flushes += 1
                        await writer.drain()
                    except _CONN_ERRORS:
                        pass
                    return
                await self._peer_loop(src, reader, writer, epoch, base)
            elif kind == "hc":
                self._clients[src] = writer
                await self._client_loop(src, reader, epoch)
        except _CONN_ERRORS:
            pass
        finally:
            self._inbound.discard(writer)
            if src is not None and self._clients.get(src) is writer:
                del self._clients[src]
            writer.close()

    async def _peer_loop(self, src, reader, writer, epoch, base=0) -> None:
        """Deliver data frames from peer ``src`` in order, exactly once.

        ``base`` is the peer's highest received ack: everything up to it
        has been pruned from the peer's ARQ queue and can never be
        replayed.  If our watermark is behind ``base`` (a restart from a
        checkpoint that predates acks we sent -- acked frames that changed
        durable state were persisted *before* their ack, so the gap frames
        provably changed none), waiting for the gap would stall the channel
        forever; fast-forward to ``base`` instead.
        """
        last = self._recv_last.get(src, 0)
        if base > last:
            self._recv_last[src] = base
            pending = self._ooo.get(src)
            if pending:
                for seq in [s for s in pending if s <= base]:
                    del pending[seq]

        ack_scheduled = False

        def _flush_ack() -> None:
            # one cumulative ack per burst of frames: readexactly serves a
            # whole buffered batch without yielding, so this call_soon
            # callback runs once the burst is fully delivered *and
            # persisted* (the persist in _deliver is synchronous) and acks
            # its final watermark
            nonlocal ack_scheduled
            ack_scheduled = False
            if self._epoch != epoch or self.halted:
                return
            try:
                writer.write(
                    wire.encode_frame(("a", self._recv_last.get(src, 0)))
                )
            except _CONN_ERRORS:  # pragma: no cover - racing disconnect
                return
            self.frames_sent += 1
            self.flushes += 1

        while True:
            try:
                payload = await read_frame(reader)
            except wire.FrameCorrupt:
                # bit rot on the wire, caught by the frame CRC: treat it
                # exactly like a dropped frame -- the sender's ARQ
                # retransmits data, gossip is best-effort anyway
                self.frames_corrupt += 1
                continue
            if self._epoch != epoch or self.halted:
                return
            if payload[0] == "g":
                # best-effort gossip (heartbeats, digests): no seq, no ack
                gm = payload[1]
                if self.detector is not None and isinstance(gm, Heartbeat):
                    self.interpret_detector(
                        self.detector.handle_message(src, gm, self.now())
                    )
                elif type(gm) is DigestMsg and self.repair is not None:
                    if self.detector is not None:
                        # a digest is liveness evidence like any frame
                        self.interpret_detector(
                            self.detector.observe(src, self.now())
                        )
                    self.interpret(
                        self.repair.handle_message(src, gm, self.now())
                    )
                continue
            if payload[0] != "d":
                continue
            _, seq, msg = payload
            if self.detector is not None:
                # any delivered frame is liveness evidence, duplicates too
                self.interpret_detector(self.detector.observe(src, self.now()))
            last = self._recv_last.get(src, 0)
            if seq > last:
                pending = self._ooo.setdefault(src, {})
                pending[seq] = msg
                while last + 1 in pending:
                    last += 1
                    m = pending.pop(last)
                    # watermark first: the handler's persist then records
                    # delivery and the resulting state change atomically
                    self._recv_last[src] = last
                    self.activity += 1
                    self._deliver(src, m)
            # cumulative ack, sent only after the persist above hit disk
            if not self.batch:
                writer.write(wire.encode_frame(("a", last)))
                self.frames_sent += 1
                self.flushes += 1
            elif not ack_scheduled:
                ack_scheduled = True
                self._loop.call_soon(_flush_ack)

    def _deliver(self, src: int, msg) -> None:
        """Route one in-order data frame to the right core."""
        if isinstance(msg, (RepairRequest, RepairResponse)):
            if self.repair is not None:
                self.interpret(self.repair.handle_message(src, msg, self.now()))
            return  # overlay disabled here: drop peer repair traffic
        self.interpret(self.core.handle_message(src, msg, self.now()))

    # ------------------------------------------------------------------
    # dynamic membership

    def _remember_commit(self, msg: ReconfigCommit) -> None:
        if all(c.epoch != msg.epoch for c in self.commit_chain):
            self.commit_chain.append(msg)
            self.commit_chain.sort(key=lambda c: c.epoch)

    def install_commits(self, commits) -> None:
        """Catch up on membership commits learned out of band.

        Fed by the fence response of a newer-epoch peer and by the
        cluster's restart replay.  Joins must apply in epoch order (each
        extends the code by one row); commits at or below the installed
        epoch are still scanned for the code-rebuild case -- ``cfg_epoch``
        is durable but the extended code is reconstructed at boot from the
        committed row seeds, never from disk.
        """
        for msg in sorted(commits, key=lambda c: c.epoch):
            if not isinstance(msg, ReconfigCommit):
                continue
            if (
                msg.joiner is not None
                and msg.row_seed is not None
                and msg.joiner == self.core.code.N
                and msg.epoch <= self.core.cfg_epoch
            ):
                # restart of a post-join checkpoint: the epoch is already
                # installed but the boot-time code predates the join
                self.core.adopt_code(extend_code(self.core.code, msg.row_seed))
                self.num_servers = self.core.code.N
            if msg.epoch > self.core.cfg_epoch:
                self.interpret(self.reconfig.apply_commit(msg, self.now()))
            self._remember_commit(msg)

    async def _client_loop(self, src, reader, epoch) -> None:
        while True:
            try:
                payload = await read_frame(reader)
            except wire.FrameCorrupt:
                # corrupt request: drop it, the client's retry re-sends
                self.frames_corrupt += 1
                continue
            if self._epoch != epoch or self.halted:
                return
            if payload[0] == "m":
                self.activity += 1
                msg = payload[1]
                if isinstance(msg, (ReconfigPropose, ReconfigCommit)):
                    # membership control plane: coordinators speak it over
                    # short-lived client connections (never fenced, so a
                    # behind server can always be caught up)
                    self.interpret(
                        self.reconfig.handle_message(src, msg, self.now())
                    )
                    if isinstance(msg, ReconfigCommit):
                        self._remember_commit(msg)
                else:
                    self.interpret(
                        self.core.handle_message(src, msg, self.now())
                    )

    # ------------------------------------------------------------------
    # effect interpretation

    def interpret(self, effects) -> None:
        for e in effects:
            cls = type(e)
            if cls is SendEffect:
                if type(e.msg) is DigestMsg:
                    # digests are periodic and idempotent: best-effort
                    # gossip frames, off the ARQ (like heartbeats)
                    channel = self._channels.get(e.dst)
                    if channel is not None:
                        channel.send_gossip(e.msg)
                else:
                    self._send(e.dst, e.msg)
            elif cls is ReplyEffect:
                self._send(e.client_id, e.msg)
            elif cls is SetTimerEffect:
                handle = self._loop.call_later(
                    e.delay / 1000.0, self._on_timer, e.timer_id, self._epoch
                )
                self._timers[e.timer_id] = handle
            elif cls is CancelTimerEffect:
                handle = self._timers.pop(e.timer_id, None)
                if handle is not None:
                    handle.cancel()
            elif cls is PersistEffect:
                self._persist()
            elif cls is LogEffect:
                self.decision_log.append(e.entry)
                if self.audit_addr is not None:
                    self._append_audit(e.entry)
            elif cls is MembershipChangedEffect:
                self._on_membership_changed(e)
            else:
                raise TypeError(f"unknown effect {e!r}")

    def interpret_detector(self, effects) -> None:
        """Interpret failure-detector effects (separate send path: gossip)."""
        for e in effects:
            cls = type(e)
            if cls is SendEffect:
                channel = self._channels.get(e.dst)
                if channel is not None:
                    channel.send_gossip(e.msg)
            elif cls is SetTimerEffect:
                handle = self._loop.call_later(
                    e.delay / 1000.0, self._on_timer, e.timer_id, self._epoch
                )
                self._timers[e.timer_id] = handle
            elif cls is CancelTimerEffect:
                handle = self._timers.pop(e.timer_id, None)
                if handle is not None:
                    handle.cancel()
            elif cls is PeerSuspectedEffect:
                self.detector_log.append((self.now(), e.peer, "suspect"))
                if self.on_detector_transition is not None:
                    self.on_detector_transition(self.node_id, e.peer, "suspect")
            elif cls is PeerAliveEffect:
                self.detector_log.append((self.now(), e.peer, "alive"))
                if self.on_detector_transition is not None:
                    self.on_detector_transition(self.node_id, e.peer, "alive")
                if self.repair is not None:
                    # a peer back from the dead likely missed writes:
                    # offer it our digest immediately (opportunistic repair)
                    self.interpret(
                        self.repair.on_peer_alive(e.peer, self.now())
                    )
            elif cls is PeerConfirmedDeadEffect:
                self.detector_log.append((self.now(), e.peer, "dead"))
                if self.on_detector_transition is not None:
                    self.on_detector_transition(self.node_id, e.peer, "dead")
            else:
                raise TypeError(f"unknown detector effect {e!r}")

    def _on_membership_changed(self, e: MembershipChangedEffect) -> None:
        """React to an installed membership commit: refresh every cache
        derived from the server set (peer fanout, overlays, detector)."""
        self.num_servers = self.core.code.N
        retired = set(range(self.core.code.N)) - set(e.members)
        if self.repair is not None:
            self.repair.refresh_peers()
        if self.detector is not None:
            for p in retired:
                self.detector.forget(p)
            if e.joiner is not None and e.joiner != self.node_id:
                self.detector.watch(e.joiner, self.now())
        for p in retired:
            self.peers.pop(p, None)
            ch = self._channels.pop(p, None)
            if ch is not None:
                asyncio.ensure_future(ch.stop())
        if self.on_membership_change is not None:
            self.on_membership_change(self.node_id, e)

    def ensure_peer_channels(self) -> None:
        """Dial any peer in ``peers`` without a channel yet (post-join)."""
        if self.halted:
            return
        for j in self.peers:
            if j not in self._channels:
                ch = self._channels[j] = _PeerChannel(self, j)
                ch.start()

    def _send(self, dst: int, msg) -> None:
        if dst < self.num_servers:
            channel = self._channels.get(dst)
            if channel is not None:
                channel.send(msg)
        else:
            writer = self._clients.get(dst)
            if writer is not None:
                try:
                    writer.write(wire.encode_frame(("m", msg)))
                except _CONN_ERRORS:  # pragma: no cover - racing disconnect
                    return
                self.frames_sent += 1
                self.flushes += 1
            # else: client gone; its retry policy re-requests

    def _on_timer(self, timer_id: tuple, epoch: int) -> None:
        if epoch != self._epoch or self.halted:
            return
        self._timers.pop(timer_id, None)
        if timer_id[0] == "fd":
            if self.detector is not None:
                self.interpret_detector(
                    self.detector.handle_timer(timer_id, self.now())
                )
            return
        if timer_id[0] == "rep":
            if self.repair is not None:
                self.interpret(self.repair.handle_timer(timer_id, self.now()))
            return
        if timer_id[0] == "scrub":
            if self.scrub is not None:
                self.interpret(self.scrub.handle_timer(timer_id, self.now()))
                self._scrub_disk()
            return
        self.interpret(self.core.handle_timer(timer_id, self.now()))

    def _persist(self) -> None:
        if self.store is None or self.halted:
            return
        self.core.stats.persists += 1
        self.store.persist(capture_server_state(self.core, self._arq_view))

    def _scrub_disk(self) -> None:
        """Disk-side scrub: re-verify the at-rest checkpoint each round
        and heal detected rot by re-persisting from live memory (the
        in-memory core is authoritative while the server is up)."""
        if self.store is None or self.scrub is None or self.halted:
            return
        ok = self.store.verify_file(self.node_id)
        if ok is None:
            return
        stats = self.scrub.stats
        if ok:
            stats.checkpoints_verified += 1
            return
        stats.checkpoints_corrupt += 1
        self._persist()
        stats.checkpoints_rewritten += 1

    # ------------------------------------------------------------------
    # audit streaming

    def _append_audit(self, entry: tuple) -> None:
        """Mirror one decision-log entry as a wire-ready audit record."""
        kind = entry[0]
        if kind in ("write", "migrate"):
            # a migration install is a write by the coordinator session
            _, obj, tag, opid, _client = entry
            rec_kind = "write"
        elif kind == "apply":
            _, obj, tag = entry
            opid, rec_kind = None, "apply"
        elif kind == "read-return":
            _, _, tag, opid, obj, _client = entry
            rec_kind = "read"
        elif kind == "repair-install":
            # a repaired value is a write the server missed: stream it as
            # an apply record (opid=None -> corroboration, no new edges)
            _, obj, tag = entry
            opid, rec_kind = None, "apply"
        else:
            return  # gc-del and friends carry no audit information
        if self.audit_key_map is not None:
            slot = obj
            obj = self.audit_key_map.get(slot, obj)
            gen = self.audit_gen.get(slot, 0)
        else:
            gen = 0
        self._audit_log.append(
            AuditOp(
                server=self.audit_node,
                seq=len(self._audit_log) + 1,
                kind=rec_kind,
                obj=obj,
                tag=tag,
                opid=opid,
                time=self.now(),
                shard=self.audit_shard,
                gen=gen,
                epoch=self.core.cfg_epoch,
            )
        )

    async def _audit_loop(self) -> None:
        """Stream the audit log to the auditor; replay it all on reconnect."""
        while not self.halted:
            writer = None
            try:
                reader, writer = await asyncio.open_connection(*self.audit_addr)
                writer.write(wire.encode_frame(("ha", self.audit_node)))
                sent = 0
                while True:
                    while sent < len(self._audit_log):
                        writer.write(
                            wire.encode_frame(("r", self._audit_log[sent]))
                        )
                        sent += 1
                    await writer.drain()
                    await asyncio.sleep(AUDIT_POLL)
            except _CONN_ERRORS:
                pass
            finally:
                if writer is not None:
                    writer.close()
            if not self.halted:
                await asyncio.sleep(RECONNECT_DELAY)


class AsyncioClient:
    """A :class:`ClientCore` speaking wire frames to its home server.

    ``addresses`` maps server ids to listener addresses; when the core
    fails over (:class:`~repro.protocol.effects.HomeServerSwitchEffect`)
    the client force-closes its connection and the dial loop redials the
    *new* home server's address.  Switches are recorded in ``switch_log``.
    """

    def __init__(
        self,
        core: ClientCore,
        server_addr: tuple[str, int],
        on_settled=None,
        addresses: dict[int, tuple[str, int]] | None = None,
    ):
        self.core = core
        self.node_id = core.node_id
        self._addr = server_addr
        self._addresses = dict(addresses or {})
        self._on_settled = on_settled
        self._writer: asyncio.StreamWriter | None = None
        self._timers: dict[tuple, asyncio.TimerHandle] = {}
        self._settled: asyncio.Future | None = None
        self._task: asyncio.Task | None = None
        self._closed = False
        self._loop: asyncio.AbstractEventLoop | None = None
        #: (old, new, opid) home-server switches, oldest first
        self.switch_log: list[tuple[int, int, object]] = []
        #: request frames written (hello excluded); feeds frames-per-op
        self.frames_sent = 0
        #: reply frames rejected by the frame CRC and dropped
        self.frames_corrupt = 0

    def _now(self) -> float:
        return _now_ms(self._loop)

    def _home_addr(self) -> tuple[str, int]:
        return self._addresses.get(self.core.server_id, self._addr)

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        start = self._loop.time()
        self._task = asyncio.ensure_future(self._run())
        for _ in range(200):  # wait for the first connection
            if self._writer is not None:
                return
            await asyncio.sleep(0.01)
        # typed, like every other unavailability surfaced by the client path
        raise HomeServerUnavailable(
            None,
            self.core.server_id,
            attempts=0,
            waited=(self._loop.time() - start) * 1000.0,
        )

    async def _run(self) -> None:
        while not self._closed:
            writer = None
            server_id = self.core.server_id
            try:
                reader, writer = await asyncio.open_connection(
                    *self._home_addr()
                )
                writer.write(wire.encode_frame(("hc", self.node_id)))
                await writer.drain()
                self._writer = writer
                while True:
                    try:
                        payload = await read_frame(reader)
                    except wire.FrameCorrupt:
                        # corrupt reply: drop it, the retry timer re-asks
                        self.frames_corrupt += 1
                        continue
                    if payload[0] == "m":
                        self.interpret(
                            self.core.handle_message(
                                server_id, payload[1], self._now()
                            )
                        )
            except _CONN_ERRORS:
                pass
            finally:
                self._writer = None
                if writer is not None:
                    writer.close()
            if not self._closed:
                await asyncio.sleep(RECONNECT_DELAY)

    def notify_home_suspected(self, peer: int) -> None:
        """Failure-detector hint: the client's home server looks dead.

        Advisory -- triggers the core's early failover (reads re-sent to
        the next candidate, sticky rotation otherwise); a false suspicion
        costs a redial, never correctness.
        """
        if self._closed or self.core.server_id != peer or not self.core.failover:
            return
        self.interpret(self.core.suspect_home(self._now()))

    async def close(self) -> None:
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            except Exception:
                log.exception("client %d dial loop failed during close", self.node_id)
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()

    # ------------------------------------------------------------------

    async def write(self, obj: int, value) -> Operation:
        """Invoke write(X, v) and await its completion (or fast failure)."""
        op, effects = self.core.start_write(obj, value, self._now())
        return await self._settle(op, effects)

    async def read(self, obj: int) -> Operation:
        """Invoke read(X) and await its completion (or fast failure)."""
        op, effects = self.core.start_read(obj, self._now())
        return await self._settle(op, effects)

    async def migrate(self, obj: int, value, gen: int) -> Operation:
        """Install a migrated value (view-change coordinators only)."""
        op, effects = self.core.start_migrate(obj, value, gen, self._now())
        return await self._settle(op, effects)

    async def _settle(self, op: Operation, effects) -> Operation:
        self._settled = self._loop.create_future()
        self.interpret(effects)
        await self._settled
        self._settled = None
        return op

    def interpret(self, effects) -> None:
        for e in effects:
            cls = type(e)
            if cls is SendEffect:
                if self._writer is not None:
                    try:
                        self._writer.write(wire.encode_frame(("m", e.msg)))
                    except _CONN_ERRORS:  # pragma: no cover
                        pass
                    else:
                        self.frames_sent += 1
                # else: disconnected; the retry timer re-sends
            elif cls is SetTimerEffect:
                handle = self._loop.call_later(
                    e.delay / 1000.0, self._on_timer, e.timer_id
                )
                self._timers[e.timer_id] = handle
            elif cls is CancelTimerEffect:
                handle = self._timers.pop(e.timer_id, None)
                if handle is not None:
                    handle.cancel()
            elif cls is OpSettledEffect:
                if self._settled is not None and not self._settled.done():
                    self._settled.set_result(e.op)
                if self._on_settled is not None:
                    self._on_settled(e.op)
            elif cls is HomeServerSwitchEffect:
                self.switch_log.append((e.old, e.new, e.opid))
                # force the dial loop off the old connection; it redials
                # the new home server's address.  The SendEffect that may
                # follow finds no writer yet -- the retry timer re-sends
                # once the new connection is up.
                writer = self._writer
                self._writer = None
                if writer is not None:
                    writer.close()
            else:
                raise TypeError(f"unknown effect {e!r}")

    def _on_timer(self, timer_id: tuple) -> None:
        self._timers.pop(timer_id, None)
        if not self._closed:
            self.interpret(self.core.handle_timer(timer_id, self._now()))


class AsyncioCluster:
    """An in-process N-server CausalEC cluster on localhost TCP sockets.

    The live counterpart of :class:`~repro.core.cluster.CausalECCluster`:
    same code/config parameters, same ``add_client``/``value``/``history``
    surface, but every method that touches the network is a coroutine.

    Quickstart::

        cluster = AsyncioCluster(example1_code())
        await cluster.start()
        client = await cluster.add_client(server=0)
        op = await client.write(0, cluster.value(7))
        await cluster.quiesce()
        await cluster.shutdown()
    """

    def __init__(
        self,
        code: LinearCode,
        config: ServerConfig | None = None,
        store_dir: str | os.PathLike | None = None,
        retry: RetryPolicy | None = None,
        host: str = "127.0.0.1",
        chaos: LiveFaultInjector | None = None,
        detector: FailureDetectorConfig | None = None,
        audit_addr: tuple[str, int] | None = None,
        repair: RepairConfig | None = None,
        scrub: ScrubConfig | None = None,
        batch: bool = True,
        auto_replace: bool = False,
    ):
        self.code = code
        #: the founding code never changes (clients and clock dimensions
        #: are anchored to it); joins extend ``current_code``
        self.current_code = code
        self.num_servers = code.N
        self.config = config or ServerConfig()
        self.retry = retry
        self.chaos = chaos
        self.repair = repair
        self.scrub_config = scrub
        self.batch = batch
        self.host = host
        self.detector_config = detector
        self.audit_addr = audit_addr
        #: escalate the detector's confirmed-dead signal into an automatic
        #: replace of the failed server (requires a detector config with
        #: ``confirm_after`` set)
        self.auto_replace = auto_replace
        self.history = History()
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if store_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="causalec-ckpt-")
            store_dir = self._tmpdir.name
        self.store = FileDurableStore(store_dir)
        #: hook called with every freshly built AsyncioServer *before* it
        #: starts (founding, replacement, or joiner) -- sharded clusters
        #: use it to stamp audit identity on new incarnations
        self.on_server_created = None
        self.servers = [
            self._make_server(ServerCore(i, code, self.config))
            for i in range(code.N)
        ]
        self.clients: list[AsyncioClient] = []
        #: aggregated (observer server, peer, kind) transitions, in order
        self.detector_transitions: list[tuple[int, int, str]] = []
        self._fault_handles: list[asyncio.TimerHandle] = []
        # -- dynamic membership (coordinator state) --------------------
        #: the group's committed membership epoch (0 = founding)
        self.cfg_epoch = 0
        #: server ids removed from the group (slots stay in the code)
        self.retired: set[int] = set()
        #: every committed reconfiguration, in epoch order
        self._commit_log: list[ReconfigCommit] = []
        #: (kind, epoch, members, joiner) history for operators and tests
        self.reconfig_log: list[tuple[str, int, tuple, int | None]] = []
        self._replacing: set[int] = set()
        self._auto_replaced: set[int] = set()
        self._replace_tasks: list[asyncio.Task] = []
        self._reconfig_lock = asyncio.Lock()
        self._ctrl_seq = 0

    def _make_server(self, core: ServerCore) -> AsyncioServer:
        server = AsyncioServer(
            core,
            self.store,
            host=self.host,
            chaos=self.chaos,
            detector=self.detector_config,
            audit_addr=self.audit_addr,
            repair=self.repair,
            scrub=self.scrub_config,
            batch=self.batch,
        )
        server.on_detector_transition = self._on_detector_transition
        if self.on_server_created is not None:
            self.on_server_created(server)
        return server

    async def start(self) -> None:
        """Bind every server, exchange addresses, dial all peer channels."""
        if self.chaos is not None:
            self.chaos.arm(asyncio.get_running_loop())
        for s in self.servers:
            await s.start()
        addresses = {s.node_id: (s.host, s.port) for s in self.servers}
        for s in self.servers:
            s.set_peers(addresses)
        for s in self.servers:
            s.connect_peers()

    def frame_stats(self) -> dict[str, int]:
        """Aggregate wire-frame counters across servers and clients.

        ``frames_sent`` counts frames put on a socket, ``flushes`` counts
        ``writer.write`` calls; with batching on, frames/flushes > 1.
        """
        frames = sum(s.frames_sent for s in self.servers)
        flushes = sum(s.flushes for s in self.servers)
        for c in self.clients:
            frames += c.frames_sent
            flushes += c.frames_sent  # clients write one frame at a time
        return {"frames_sent": frames, "flushes": flushes}

    def repair_stats(self) -> dict[str, float]:
        """Aggregate anti-entropy counters across servers (zeros if off)."""
        totals: dict[str, float] = {}
        for s in self.servers:
            if s.repair is None:
                continue
            for k, v in vars(s.repair.stats).items():
                totals[k] = totals.get(k, 0) + v
        return totals

    def scrub_stats(self) -> dict[str, float]:
        """Aggregate scrub counters across servers (zeros if off).

        Adds ``frames_corrupt`` (CRC-rejected inbound frames, servers +
        clients) and ``checkpoint_reports`` (store-level detections,
        scrub *and* load paths) so one dict answers "was every injected
        corruption detected somewhere?".
        """
        totals: dict[str, float] = {}
        for s in self.servers:
            if s.scrub is None:
                continue
            for k, v in vars(s.scrub.stats).items():
                totals[k] = totals.get(k, 0) + v
        totals["frames_corrupt"] = sum(
            s.frames_corrupt for s in self.servers
        ) + sum(c.frames_corrupt for c in self.clients)
        totals["checkpoint_reports"] = self.store.corrupt_detected()
        # guard-path detections (read/val-inq/encoding) are on the core's
        # stats, not the scrub overlay's -- surface both
        totals["integrity_quarantines"] = sum(
            s.core.stats.integrity_quarantines for s in self.servers
        )
        return totals

    def _on_detector_transition(self, observer: int, peer: int, kind: str):
        self.detector_transitions.append((observer, peer, kind))
        if kind == "suspect":
            for client in self.clients:
                client.notify_home_suspected(peer)
        elif kind == "dead" and self.auto_replace:
            self._maybe_auto_replace(peer)

    def _maybe_auto_replace(self, peer: int) -> None:
        """Escalate a confirmed-dead signal into a background replace.

        Idempotent across observers: every live server eventually confirms
        the same dead peer, but only the first signal starts a replacement
        (``_auto_replaced`` clears only if the attempt itself fails).
        """
        if (
            peer in self._replacing
            or peer in self.retired
            or peer in self._auto_replaced
        ):
            return
        self._auto_replaced.add(peer)
        task = asyncio.ensure_future(self._auto_replace(peer))
        self._replace_tasks.append(task)

    async def _auto_replace(self, peer: int) -> None:
        try:
            await self.replace_server(peer)
        except Exception:
            log.exception("auto-replace of server %d failed", peer)
            self._auto_replaced.discard(peer)

    async def add_client(
        self,
        server: int = 0,
        retry: RetryPolicy | None = None,
        failover: bool = False,
        failover_writes: bool = False,
        node_id: int | None = None,
        opid_counter=None,
    ) -> AsyncioClient:
        """Attach a client homed at ``server``.

        ``failover=True`` gives the client every other server as a
        failover candidate (in ring order after its home) and the address
        map to redial them; see :class:`~repro.protocol.client_core
        .ClientCore` for the read-only failover contract.

        ``node_id``/``opid_counter`` let a :class:`~repro.runtime
        .sharded_rt.ShardedSession` give its per-shard clients one shared
        session identity (ids must be >= the server count).
        """
        if not 0 <= server < self.num_servers:
            raise ValueError(f"no such server {server}")
        if node_id is None:
            node_id = self.num_servers + len(self.clients)
        elif node_id < self.num_servers:
            raise ValueError(f"client id {node_id} collides with a server id")
        candidates = None
        if failover:
            candidates = [
                (server + k) % self.num_servers
                for k in range(1, self.num_servers)
            ]
        core = ClientCore(
            node_id,
            server,
            history=self.history,
            retry=retry if retry is not None else self.retry,
            failover=candidates,
            failover_writes=failover_writes,
            opid_counter=opid_counter,
        )
        srv = self.servers[server]
        addresses = {s.node_id: (s.host, s.port) for s in self.servers}
        client = AsyncioClient(core, (srv.host, srv.port), addresses=addresses)
        self.clients.append(client)
        await client.start()
        return client

    def value(self, raw) -> np.ndarray:
        """Coerce a python scalar/list into an object value for this code."""
        field = self.code.field
        arr = np.asarray(raw)
        if arr.ndim == 0:
            arr = np.full(self.code.value_len, int(arr))
        return field.validate(arr)

    async def kill_server(self, i: int, forever: bool = False) -> None:
        """Crash server ``i``; ``forever=True`` models a machine that is
        never coming back (supervisors skip it; auto-replace may claim it).
        """
        await self.servers[i].kill(forever=forever)

    async def restart_server(self, i: int) -> None:
        server = self.servers[i]
        if server.permanently_failed:
            raise RuntimeError(
                f"server {i} is permanently failed; use replace_server"
            )
        server.set_peers(self._addresses())
        await server.restart()
        # the checkpoint restores cfg_epoch/cfg_retired, but the extended
        # code and missed epochs are reconstructed from the commit log
        server.install_commits(self._commit_log)
        server.ensure_peer_channels()

    # ------------------------------------------------------------------
    # dynamic membership (epoch-fenced reconfiguration)

    def _active_members(self) -> list[int]:
        return [s.node_id for s in self.servers if s.node_id not in self.retired]

    def _addresses(self) -> dict[int, tuple[str, int]]:
        return {
            s.node_id: (s.host, s.port)
            for s in self.servers
            if s.node_id not in self.retired
        }

    def _rewire_addresses(self) -> None:
        """Push the current address map to every active server and make
        sure each has a dialer channel to every (possibly new) peer."""
        addresses = self._addresses()
        for s in self.servers:
            if s.node_id in self.retired:
                continue
            s.set_peers(addresses)
            s.ensure_peer_channels()

    async def _reconfig_rpc(self, server: AsyncioServer, msg, timeout: float = 5.0):
        """One membership control request/reply on a short-lived connection.

        Control frames ride the client path (hello ``("hc", id)``), which
        is never epoch-fenced -- a behind server must always be reachable
        for catch-up.  Control ids live far above any client id.
        """
        self._ctrl_seq += 1
        ctrl_id = 1_000_000 + self._ctrl_seq
        reader, writer = await asyncio.open_connection(server.host, server.port)
        try:
            writer.write(wire.encode_frame(("hc", ctrl_id)))
            writer.write(wire.encode_frame(("m", msg)))
            await writer.drain()
            reply = await asyncio.wait_for(read_frame(reader), timeout)
            if reply[0] != "m":
                raise wire.WireError(f"unexpected control reply {reply[0]!r}")
            return reply[1]
        finally:
            writer.close()

    async def _commit_membership(
        self,
        members: tuple,
        joiner: int | None = None,
        row_seed: int | None = None,
        note: str = "reconfig",
    ) -> tuple[int, ReconfigCommit]:
        """Two-phase broadcast: propose to every live member, then commit.

        A failed (unreachable) propose aborts with nothing staged; a
        server that misses the commit catches up from the fence response
        or the cluster's restart replay.  Serialised: concurrent
        reconfigurations would race the epoch counter.
        """
        epoch = self.cfg_epoch + 1
        live = [
            s
            for s in self.servers
            if not s.halted and s.node_id in members and s.node_id != joiner
        ]
        propose = ReconfigPropose(epoch, tuple(members), joiner, row_seed)
        acks = await asyncio.gather(
            *(self._reconfig_rpc(s, propose) for s in live)
        )
        for ack in acks:
            if ack.epoch != epoch:
                raise RuntimeError(
                    f"propose for epoch {epoch} acked as {ack.epoch}"
                )
        commit = ReconfigCommit(epoch, tuple(members), joiner, row_seed)
        await asyncio.gather(*(self._reconfig_rpc(s, commit) for s in live))
        self.cfg_epoch = epoch
        self._commit_log.append(commit)
        self.reconfig_log.append((note, epoch, tuple(members), joiner))
        return epoch, commit

    async def replace_server(self, i: int) -> AsyncioServer:
        """Replace a permanently failed server with a fresh incarnation.

        The epoch bump is the fence: the dead incarnation's frames (and
        redials) are rejected by every peer from the commit on.  The
        replacement keeps slot ``i`` -- same id, same code row, same
        vector-clock component -- and starts from an empty disk; the
        anti-entropy overlay re-derives its history and re-encodes its
        codeword row from any live recovery set.
        """
        if i in self.retired:
            raise ValueError(f"server {i} is retired")
        async with self._reconfig_lock:
            if i in self._replacing:
                raise RuntimeError(f"server {i} is already being replaced")
            self._replacing.add(i)
            try:
                old = self.servers[i]
                if not old.halted:
                    await old.kill(forever=True)
                members = tuple(self._active_members())
                epoch, _ = await self._commit_membership(members, note="replace")
                # the replacement must not inherit the dead incarnation's
                # disk: a stale checkpoint would resurrect pre-fence state
                self.store.wipe(i)
                core = ServerCore(
                    i,
                    self.current_code,
                    self.config,
                    clock_dim=old.core.clock_dim,
                )
                core.cfg_epoch = epoch
                core.set_retired(self.retired)
                new = self._make_server(core)
                # the replacement inherits the dead server's endpoint so
                # existing clients (and peer address maps) keep working
                new.port = old.port
                new.commit_chain = sorted(
                    self._commit_log, key=lambda c: c.epoch
                )
                self.servers[i] = new
                await new.start()
                self._rewire_addresses()
                return new
            finally:
                self._replacing.discard(i)

    async def add_server(self, row_seed: int | None = None) -> AsyncioServer:
        """Grow the group: commit an extended code and boot the joiner.

        Every member derives the identical extension from the committed
        ``row_seed`` alone (no matrices on the wire).  The joiner keeps the
        founding vector-clock dimension and is *non-minting*: it stores
        redundancy, serves reads and repairs, but no client write is homed
        on it (see :mod:`repro.protocol.reconfig_core`).
        """
        async with self._reconfig_lock:
            joiner = self.current_code.N
            if any(c.node_id == joiner for c in self.clients):
                raise ValueError(
                    f"client id {joiner} collides with the joining server; "
                    "attach clients with explicit high node_ids before joins"
                )
            if row_seed is None:
                # deterministic per epoch so reruns commit identical codes
                row_seed = 0xCEC0DE + self.cfg_epoch
            new_code = extend_code(self.current_code, row_seed)
            members = tuple(self._active_members() + [joiner])
            validate_membership(new_code, members)
            epoch, _ = await self._commit_membership(
                members, joiner=joiner, row_seed=row_seed, note="add"
            )
            core = ServerCore(
                joiner, new_code, self.config, clock_dim=self.code.N
            )
            core.cfg_epoch = epoch
            core.set_retired(self.retired)
            new = self._make_server(core)
            new.commit_chain = sorted(self._commit_log, key=lambda c: c.epoch)
            self.current_code = new_code
            self.num_servers = new_code.N
            self.servers.append(new)
            await new.start()
            self._rewire_addresses()
            return new

    async def remove_server(self, i: int) -> None:
        """Shrink the group: retire server ``i`` (its code slot remains).

        Refuses memberships that would strand an object (the survivors
        must form a recovery set for every object).  The evicted server is
        told (if alive) and then permanently halted.
        """
        async with self._reconfig_lock:
            members = tuple(m for m in self._active_members() if m != i)
            if len(members) == len(self._active_members()):
                raise ValueError(f"server {i} is not an active member")
            validate_membership(self.current_code, members)
            epoch, commit = await self._commit_membership(members, note="remove")
            victim = self.servers[i]
            if not victim.halted:
                try:
                    await self._reconfig_rpc(victim, commit)
                except (*_CONN_ERRORS, asyncio.TimeoutError):
                    pass  # it is being removed; fencing handles the rest
                await victim.kill(forever=True)
            self.retired.add(i)
            self._rewire_addresses()

    def reset_server(self, i: int) -> None:
        """Sever server ``i``'s established connections (no crash)."""
        self.servers[i].reset_connections()

    def apply_fault_plan(self, plan: FaultPlan, time_scale: float = 1.0) -> None:
        """Arm a :class:`~repro.sim.faults.FaultPlan` on the event loop.

        The same schedule object the simulator consumes: halts become
        :meth:`kill_server`, restarts :meth:`restart_server`, and resets --
        ignored by the simulator -- become :meth:`reset_server`.  Times are
        schedule milliseconds, mapped to real seconds via ``time_scale``
        (matching :class:`~repro.runtime.chaos_rt.LiveFaultInjector`).
        """
        loop = asyncio.get_running_loop()

        def _later(at_ms: float, coro_or_fn, *args, is_coro: bool):
            def fire():
                if is_coro:
                    asyncio.ensure_future(coro_or_fn(*args))
                else:
                    coro_or_fn(*args)

            self._fault_handles.append(
                loop.call_later(at_ms * time_scale / 1000.0, fire)
            )

        for at, server in plan.halts:
            _later(at, self.kill_server, server, is_coro=True)
        for at, server in getattr(plan, "kill_forevers", ()):
            _later(at, self.kill_server, server, True, is_coro=True)
        for at, server in plan.restarts:
            _later(at, self.restart_server, server, is_coro=True)
        for at, server in plan.resets:
            _later(at, self.reset_server, server, is_coro=False)

        def _rot_memory(i: int) -> None:
            if not self.servers[i].halted:
                self.servers[i].core.corrupt_codeword(seed=plan.rot_seed)

        for at, server in getattr(plan, "rots", ()):
            _later(at, _rot_memory, server, is_coro=False)
        def _rot_disk(i: int) -> None:
            self.store.corrupt_file(i, seed=plan.rot_seed)

        for at, server in getattr(plan, "disk_rots", ()):
            _later(at, _rot_disk, server, is_coro=False)
        for at, server in getattr(plan, "torn_writes", ()):
            _later(at, self.store.truncate_file, server, is_coro=False)

    async def quiesce(
        self, idle_rounds: int = 4, poll: float = 0.03, timeout: float = 30.0
    ) -> None:
        """Wait until no frames have been delivered for a few poll rounds."""
        deadline = asyncio.get_running_loop().time() + timeout
        stable = 0
        last = None
        while stable < idle_rounds:
            snapshot = tuple(s.activity for s in self.servers)
            if snapshot == last:
                stable += 1
            else:
                stable = 0
                last = snapshot
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError("cluster did not quiesce in time")
            await asyncio.sleep(poll)

    async def shutdown(self) -> None:
        for handle in self._fault_handles:
            handle.cancel()
        self._fault_handles.clear()
        for task in self._replace_tasks:
            if not task.done():
                task.cancel()
        for task in self._replace_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._replace_tasks.clear()
        for client in self.clients:
            await client.close()
        for server in self.servers:
            await server.shutdown()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
