"""Real-network runtime: the sans-I/O cores on asyncio TCP sockets.

This module proves the sans-I/O refactor by running the *same*
:class:`~repro.protocol.server_core.ServerCore` and
:class:`~repro.protocol.client_core.ClientCore` objects that power the
discrete-event simulator on an actual asyncio event loop, with real
length-prefixed frames (:mod:`repro.runtime.wire`) over real localhost
sockets, monotonic-clock timers, and file-backed durable checkpoints.

Topology
--------
Each :class:`AsyncioServer` owns one TCP listener.  Three connection kinds
arrive on it, distinguished by a hello frame:

* ``("hp", i)`` -- the *peer data channel* from server ``i``: server ``i``
  dials every other server and owns the directed channel ``i -> j``.  Data
  frames ``("d", seq, msg)`` flow dialer -> listener; cumulative acks
  ``("a", seq)`` flow back on the same socket.
* ``("hc", c)`` -- a client connection: request/reply frames ``("m", msg)``
  flow both ways.  Clients get no ARQ; the client retry policy plus
  server-side opid deduplication already make requests crash-tolerant.

Reliable FIFO channels (the paper's network model) are realised per peer
channel with a small ARQ: the dialer numbers messages, buffers them until
acked, and replays the unacked tail on every reconnect; the listener
delivers in sequence order, deduplicates, records the delivery watermark
*before* handling (so the post-handler checkpoint makes delivery and state
change atomic), and acks only after the handler's ``PersistEffect`` hit
stable storage.  Channel state (send seq + unacked tail, receive
watermarks) rides inside each :class:`~repro.core.snapshot.ServerCheckpoint`
exactly like the simulator's ARQ transport state, so a restarted server
resumes its channels without duplicating or dropping protocol messages.

Time is ``loop.time()`` in milliseconds, so the cores see the same unit the
simulator uses; effect timers map to ``loop.call_later`` guarded by an
incarnation epoch (a timer armed before a crash never fires into the next
incarnation).
"""

from __future__ import annotations

import asyncio
import os
import struct
import tempfile
from collections import deque
from pathlib import Path

import numpy as np

from ..consistency.history import History, Operation
from ..core.snapshot import (
    ServerCheckpoint,
    capture_server_state,
    restore_server_state,
)
from ..ec.code import LinearCode
from ..protocol.client_core import ClientCore, RetryPolicy
from ..protocol.effects import (
    CancelTimerEffect,
    LogEffect,
    OpSettledEffect,
    PersistEffect,
    ReplyEffect,
    SendEffect,
    SetTimerEffect,
)
from ..protocol.server_core import ServerConfig, ServerCore
from . import wire

__all__ = [
    "FileDurableStore",
    "AsyncioServer",
    "AsyncioClient",
    "AsyncioCluster",
]

#: seconds between reconnect attempts for peer channels and clients
RECONNECT_DELAY = 0.02

_CONN_ERRORS = (
    ConnectionError,
    asyncio.IncompleteReadError,
    OSError,
    wire.WireError,
)


async def read_frame(reader: asyncio.StreamReader):
    """Read one length-prefixed wire frame from a stream."""
    (length,) = struct.unpack(">I", await reader.readexactly(4))
    if length > wire.MAX_FRAME_BYTES:
        raise wire.WireError(f"frame length {length} exceeds MAX_FRAME_BYTES")
    return wire.decode_body(await reader.readexactly(length))


def _now_ms(loop: asyncio.AbstractEventLoop) -> float:
    return loop.time() * 1000.0


class FileDurableStore:
    """File-backed stable storage: one checkpoint file per server.

    The live-runtime counterpart of the simulator's in-memory
    :class:`~repro.core.snapshot.DurableStore`, with the same interface.
    Checkpoints are wire-encoded (never pickled) and replaced atomically
    (write-to-temp + rename), so a crash mid-persist leaves the previous
    checkpoint intact.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.persist_counts: dict[int, int] = {}

    def _path(self, server_id: int) -> Path:
        return self.root / f"server_{server_id}.ckpt"

    def persist(self, checkpoint: ServerCheckpoint) -> None:
        path = self._path(checkpoint.server_id)
        tmp = path.with_suffix(".ckpt.tmp")
        tmp.write_bytes(wire.encode_frame(checkpoint))
        os.replace(tmp, path)
        self.persist_counts[checkpoint.server_id] = (
            self.persist_counts.get(checkpoint.server_id, 0) + 1
        )

    def load(self, server_id: int) -> ServerCheckpoint | None:
        path = self._path(server_id)
        if not path.exists():
            return None
        return wire.decode_frame(path.read_bytes())

    def wipe(self, server_id: int) -> None:
        """Simulate disk loss for one server (tests)."""
        self._path(server_id).unlink(missing_ok=True)


class _PeerChannel:
    """The dialer end of one directed reliable channel ``me -> peer``."""

    def __init__(self, server: "AsyncioServer", peer_id: int):
        self.server = server
        self.peer_id = peer_id
        self.seq = 0
        self.unacked: deque[tuple[int, object]] = deque()
        self.writer: asyncio.StreamWriter | None = None
        self.task: asyncio.Task | None = None
        self._stopped = False

    def send(self, msg) -> None:
        self.seq += 1
        self.unacked.append((self.seq, msg))
        if self.writer is not None:
            try:
                self.writer.write(wire.encode_frame(("d", self.seq, msg)))
            except _CONN_ERRORS:  # pragma: no cover - racing disconnect
                self.writer = None

    def start(self) -> None:
        self.task = asyncio.ensure_future(self._run())

    async def _run(self) -> None:
        while not self._stopped:
            writer = None
            try:
                host, port = self.server.peers[self.peer_id]
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(wire.encode_frame(("hp", self.server.node_id)))
                for seq, msg in list(self.unacked):  # replay the unacked tail
                    writer.write(wire.encode_frame(("d", seq, msg)))
                await writer.drain()
                self.writer = writer
                while True:
                    payload = await read_frame(reader)
                    if payload[0] == "a":
                        self._on_ack(payload[1])
            except _CONN_ERRORS:
                pass
            finally:
                self.writer = None
                if writer is not None:
                    writer.close()
            if not self._stopped:
                await asyncio.sleep(RECONNECT_DELAY)

    def _on_ack(self, upto: int) -> None:
        while self.unacked and self.unacked[0][0] <= upto:
            self.unacked.popleft()

    async def stop(self) -> None:
        self._stopped = True
        if self.task is not None:
            self.task.cancel()
            try:
                await self.task
            except (asyncio.CancelledError, Exception):
                pass
            self.task = None
        if self.writer is not None:
            self.writer.close()
            self.writer = None


class _ChannelStateView:
    """Presents ARQ channel state through the transport-snapshot interface
    that :func:`~repro.core.snapshot.capture_server_state` expects."""

    active = True

    def __init__(self, server: "AsyncioServer"):
        self._server = server

    def snapshot_node(self, node_id: int) -> dict:
        s = self._server
        return {
            "send": {
                j: {"seq": ch.seq, "unacked": list(ch.unacked)}
                for j, ch in s._channels.items()
            },
            "recv": dict(s._recv_last),
        }

    def restore_node(self, node_id: int, state: dict) -> None:
        s = self._server
        for j, st in state.get("send", {}).items():
            ch = s._channels.get(j)
            if ch is not None:
                ch.seq = st["seq"]
                ch.unacked = deque(tuple(entry) for entry in st["unacked"])
        s._recv_last = dict(state.get("recv", {}))


class AsyncioServer:
    """One CausalEC server: a :class:`ServerCore` behind a TCP listener."""

    def __init__(
        self,
        core: ServerCore,
        store: FileDurableStore | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.core = core
        self.node_id = core.node_id
        self.num_servers = core.code.N
        self.store = store
        self.host = host
        self.port = port
        self.peers: dict[int, tuple[str, int]] = {}
        self.halted = False
        self.decision_log: list[tuple] = []
        #: delivered-frame counter; quiescence detection watches it
        self.activity = 0
        self._epoch = 0
        self._listener: asyncio.Server | None = None
        self._channels: dict[int, _PeerChannel] = {}
        self._recv_last: dict[int, int] = {}
        self._ooo: dict[int, dict[int, object]] = {}
        self._clients: dict[int, asyncio.StreamWriter] = {}
        self._inbound: set[asyncio.StreamWriter] = set()
        self._timers: dict[tuple, asyncio.TimerHandle] = {}
        self._arq_view = _ChannelStateView(self)
        self._loop: asyncio.AbstractEventLoop | None = None

    # ------------------------------------------------------------------
    # lifecycle

    def now(self) -> float:
        return _now_ms(self._loop)

    @property
    def stats(self):
        return self.core.stats

    async def start(self) -> None:
        """Bind the listener (port 0 = ephemeral) and boot the core."""
        self._loop = asyncio.get_running_loop()
        await self._start_listener()
        self.interpret(self.core.boot(self.now()))

    async def _start_listener(self) -> None:
        self._listener = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._listener.sockets[0].getsockname()[1]

    def set_peers(self, addresses: dict[int, tuple[str, int]]) -> None:
        self.peers = {j: a for j, a in addresses.items() if j != self.node_id}

    def connect_peers(self) -> None:
        for j in self.peers:
            ch = self._channels[j] = _PeerChannel(self, j)
            ch.start()

    async def kill(self) -> None:
        """Crash: drop timers, connections, listener, and volatile state."""
        self.halted = True
        self._epoch += 1
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        for ch in self._channels.values():
            await ch.stop()
        self._channels.clear()
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        for writer in list(self._inbound):
            writer.close()
        self._inbound.clear()
        self._clients.clear()
        await asyncio.sleep(0.01)  # let connection handlers observe the close
        # a crash loses everything not on disk
        self._recv_last = {}
        self._ooo = {}
        self.core.wipe_volatile()

    async def restart(self) -> None:
        """Recover: reload the durable checkpoint, rebind, redial, resume.

        Also usable as a cold-start entry point for a standalone server
        process resuming from an on-disk checkpoint (``repro serve``).
        """
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        self.halted = False
        for j in self.peers:
            ch = self._channels[j] = _PeerChannel(self, j)
        checkpoint = None if self.store is None else self.store.load(self.node_id)
        if checkpoint is not None:
            restore_server_state(self.core, checkpoint, transport=self._arq_view)
        await self._start_listener()
        for ch in self._channels.values():
            ch.start()
        self.interpret(self.core.after_restart(self.now()))

    async def shutdown(self) -> None:
        if not self.halted:
            await self.kill()

    # ------------------------------------------------------------------
    # connections

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        epoch = self._epoch
        src = None
        self._inbound.add(writer)
        try:
            hello = await read_frame(reader)
            kind, src = hello[0], hello[1]
            if kind == "hp":
                await self._peer_loop(src, reader, writer, epoch)
            elif kind == "hc":
                self._clients[src] = writer
                await self._client_loop(src, reader, epoch)
        except _CONN_ERRORS:
            pass
        finally:
            self._inbound.discard(writer)
            if src is not None and self._clients.get(src) is writer:
                del self._clients[src]
            writer.close()

    async def _peer_loop(self, src, reader, writer, epoch) -> None:
        """Deliver data frames from peer ``src`` in order, exactly once."""
        while True:
            payload = await read_frame(reader)
            if self._epoch != epoch or self.halted:
                return
            if payload[0] != "d":
                continue
            _, seq, msg = payload
            last = self._recv_last.get(src, 0)
            if seq > last:
                pending = self._ooo.setdefault(src, {})
                pending[seq] = msg
                while last + 1 in pending:
                    last += 1
                    m = pending.pop(last)
                    # watermark first: the handler's persist then records
                    # delivery and the resulting state change atomically
                    self._recv_last[src] = last
                    self.activity += 1
                    self.interpret(self.core.handle_message(src, m, self.now()))
            # cumulative ack, sent only after the persist above hit disk
            writer.write(wire.encode_frame(("a", last)))

    async def _client_loop(self, src, reader, epoch) -> None:
        while True:
            payload = await read_frame(reader)
            if self._epoch != epoch or self.halted:
                return
            if payload[0] == "m":
                self.activity += 1
                self.interpret(
                    self.core.handle_message(src, payload[1], self.now())
                )

    # ------------------------------------------------------------------
    # effect interpretation

    def interpret(self, effects) -> None:
        for e in effects:
            cls = type(e)
            if cls is SendEffect:
                self._send(e.dst, e.msg)
            elif cls is ReplyEffect:
                self._send(e.client_id, e.msg)
            elif cls is SetTimerEffect:
                handle = self._loop.call_later(
                    e.delay / 1000.0, self._on_timer, e.timer_id, self._epoch
                )
                self._timers[e.timer_id] = handle
            elif cls is CancelTimerEffect:
                handle = self._timers.pop(e.timer_id, None)
                if handle is not None:
                    handle.cancel()
            elif cls is PersistEffect:
                self._persist()
            elif cls is LogEffect:
                self.decision_log.append(e.entry)
            else:
                raise TypeError(f"unknown effect {e!r}")

    def _send(self, dst: int, msg) -> None:
        if dst < self.num_servers:
            channel = self._channels.get(dst)
            if channel is not None:
                channel.send(msg)
        else:
            writer = self._clients.get(dst)
            if writer is not None:
                try:
                    writer.write(wire.encode_frame(("m", msg)))
                except _CONN_ERRORS:  # pragma: no cover - racing disconnect
                    pass
            # else: client gone; its retry policy re-requests

    def _on_timer(self, timer_id: tuple, epoch: int) -> None:
        if epoch != self._epoch or self.halted:
            return
        self._timers.pop(timer_id, None)
        self.interpret(self.core.handle_timer(timer_id, self.now()))

    def _persist(self) -> None:
        if self.store is None or self.halted:
            return
        self.core.stats.persists += 1
        self.store.persist(capture_server_state(self.core, self._arq_view))


class AsyncioClient:
    """A :class:`ClientCore` speaking wire frames to its home server."""

    def __init__(
        self,
        core: ClientCore,
        server_addr: tuple[str, int],
        on_settled=None,
    ):
        self.core = core
        self.node_id = core.node_id
        self._addr = server_addr
        self._on_settled = on_settled
        self._writer: asyncio.StreamWriter | None = None
        self._timers: dict[tuple, asyncio.TimerHandle] = {}
        self._settled: asyncio.Future | None = None
        self._task: asyncio.Task | None = None
        self._closed = False
        self._loop: asyncio.AbstractEventLoop | None = None

    def _now(self) -> float:
        return _now_ms(self._loop)

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._task = asyncio.ensure_future(self._run())
        for _ in range(200):  # wait for the first connection
            if self._writer is not None:
                return
            await asyncio.sleep(0.01)
        raise ConnectionError(f"client {self.node_id}: server never answered")

    async def _run(self) -> None:
        while not self._closed:
            writer = None
            try:
                reader, writer = await asyncio.open_connection(*self._addr)
                writer.write(wire.encode_frame(("hc", self.node_id)))
                await writer.drain()
                self._writer = writer
                while True:
                    payload = await read_frame(reader)
                    if payload[0] == "m":
                        self.interpret(
                            self.core.handle_message(
                                self.core.server_id, payload[1], self._now()
                            )
                        )
            except _CONN_ERRORS:
                pass
            finally:
                self._writer = None
                if writer is not None:
                    writer.close()
            if not self._closed:
                await asyncio.sleep(RECONNECT_DELAY)

    async def close(self) -> None:
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()

    # ------------------------------------------------------------------

    async def write(self, obj: int, value) -> Operation:
        """Invoke write(X, v) and await its completion (or fast failure)."""
        op, effects = self.core.start_write(obj, value, self._now())
        return await self._settle(op, effects)

    async def read(self, obj: int) -> Operation:
        """Invoke read(X) and await its completion (or fast failure)."""
        op, effects = self.core.start_read(obj, self._now())
        return await self._settle(op, effects)

    async def _settle(self, op: Operation, effects) -> Operation:
        self._settled = self._loop.create_future()
        self.interpret(effects)
        await self._settled
        self._settled = None
        return op

    def interpret(self, effects) -> None:
        for e in effects:
            cls = type(e)
            if cls is SendEffect:
                if self._writer is not None:
                    try:
                        self._writer.write(wire.encode_frame(("m", e.msg)))
                    except _CONN_ERRORS:  # pragma: no cover
                        pass
                # else: disconnected; the retry timer re-sends
            elif cls is SetTimerEffect:
                handle = self._loop.call_later(
                    e.delay / 1000.0, self._on_timer, e.timer_id
                )
                self._timers[e.timer_id] = handle
            elif cls is CancelTimerEffect:
                handle = self._timers.pop(e.timer_id, None)
                if handle is not None:
                    handle.cancel()
            elif cls is OpSettledEffect:
                if self._settled is not None and not self._settled.done():
                    self._settled.set_result(e.op)
                if self._on_settled is not None:
                    self._on_settled(e.op)
            else:
                raise TypeError(f"unknown effect {e!r}")

    def _on_timer(self, timer_id: tuple) -> None:
        self._timers.pop(timer_id, None)
        if not self._closed:
            self.interpret(self.core.handle_timer(timer_id, self._now()))


class AsyncioCluster:
    """An in-process N-server CausalEC cluster on localhost TCP sockets.

    The live counterpart of :class:`~repro.core.cluster.CausalECCluster`:
    same code/config parameters, same ``add_client``/``value``/``history``
    surface, but every method that touches the network is a coroutine.

    Quickstart::

        cluster = AsyncioCluster(example1_code())
        await cluster.start()
        client = await cluster.add_client(server=0)
        op = await client.write(0, cluster.value(7))
        await cluster.quiesce()
        await cluster.shutdown()
    """

    def __init__(
        self,
        code: LinearCode,
        config: ServerConfig | None = None,
        store_dir: str | os.PathLike | None = None,
        retry: RetryPolicy | None = None,
        host: str = "127.0.0.1",
    ):
        self.code = code
        self.num_servers = code.N
        self.config = config or ServerConfig()
        self.retry = retry
        self.history = History()
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if store_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="causalec-ckpt-")
            store_dir = self._tmpdir.name
        self.store = FileDurableStore(store_dir)
        self.servers = [
            AsyncioServer(ServerCore(i, code, self.config), self.store, host=host)
            for i in range(code.N)
        ]
        self.clients: list[AsyncioClient] = []

    async def start(self) -> None:
        """Bind every server, exchange addresses, dial all peer channels."""
        for s in self.servers:
            await s.start()
        addresses = {s.node_id: (s.host, s.port) for s in self.servers}
        for s in self.servers:
            s.set_peers(addresses)
        for s in self.servers:
            s.connect_peers()

    async def add_client(
        self, server: int = 0, retry: RetryPolicy | None = None
    ) -> AsyncioClient:
        if not 0 <= server < self.num_servers:
            raise ValueError(f"no such server {server}")
        node_id = self.num_servers + len(self.clients)
        core = ClientCore(
            node_id,
            server,
            history=self.history,
            retry=retry if retry is not None else self.retry,
        )
        srv = self.servers[server]
        client = AsyncioClient(core, (srv.host, srv.port))
        self.clients.append(client)
        await client.start()
        return client

    def value(self, raw) -> np.ndarray:
        """Coerce a python scalar/list into an object value for this code."""
        field = self.code.field
        arr = np.asarray(raw)
        if arr.ndim == 0:
            arr = np.full(self.code.value_len, int(arr))
        return field.validate(arr)

    async def kill_server(self, i: int) -> None:
        await self.servers[i].kill()

    async def restart_server(self, i: int) -> None:
        await self.servers[i].restart()

    async def quiesce(
        self, idle_rounds: int = 4, poll: float = 0.03, timeout: float = 30.0
    ) -> None:
        """Wait until no frames have been delivered for a few poll rounds."""
        deadline = asyncio.get_running_loop().time() + timeout
        stable = 0
        last = None
        while stable < idle_rounds:
            snapshot = tuple(s.activity for s in self.servers)
            if snapshot == last:
                stable += 1
            else:
                stable = 0
                last = snapshot
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError("cluster did not quiesce in time")
            await asyncio.sleep(poll)

    async def shutdown(self) -> None:
        for client in self.clients:
            await client.close()
        for server in self.servers:
            await server.shutdown()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
