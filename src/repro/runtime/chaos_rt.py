"""Deterministic fault injection for the live asyncio runtime.

PR 1 gave the discrete-event simulator lossy links and partitions
(:class:`~repro.sim.network.LinkFaults`, :class:`~repro.sim.network
.PartitionPlan`) and scheduled crashes (:class:`~repro.sim.faults
.FaultPlan`).  This module lets the *same schedule objects* attack the live
TCP runtime: :class:`LiveFaultInjector` sits inside every peer channel of
:class:`~repro.runtime.asyncio_rt.AsyncioServer` and decides, per
transmitted frame, whether to drop it, deliver a duplicate copy, delay it,
or sever it entirely (partition windows).  Connection resets and
kill/restart faults are time-scheduled by the cluster from a
:class:`~repro.sim.faults.FaultPlan` (see
``AsyncioCluster.apply_fault_plan``).

Determinism on a real event loop
--------------------------------
The simulator gets reproducibility for free: one RNG, one deterministic
event order.  A live run has no deterministic event order -- socket
readiness and task scheduling interleave differently every run -- so a
single shared RNG would hand different faults to different frames on every
replay.  The injector instead gives every directed channel its own RNG
*lane*, seeded ``(seed, LANE_SALT, src, dst)``, and draws a **fixed number
of variates per fate query in a fixed order**.  The fate of the k-th query
on a channel is therefore a pure function of ``(seed, src, dst, k)`` --
independent of wall-clock timing, of other channels, and of how queries
interleave across channels.  Replaying a seeded schedule replays the exact
per-channel fault sequence, which is what makes live chaos failures
debuggable.  Time-gated faults (partition windows, the ``until`` horizon)
check the *scaled* clock but still consume their draws, so the lane stream
never shifts across runs.

Time scaling
------------
Chaos schedules are authored in simulated milliseconds (e.g. a fault
window of ``[20, 450]``).  A live cluster needs real milliseconds and some
slack for TCP handshakes, so the injector maps ``sim_now = (real_now -
t0) / time_scale``; with ``time_scale=4`` a 450 ms simulated schedule
plays out over 1.8 real seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.network import LinkFaults

__all__ = ["FrameFate", "LiveFaultInjector"]

#: salt mixed into every channel lane seed, so injector lanes cannot
#: collide with any other consumer of the schedule's seed
LANE_SALT = 0x11FE
#: salt for the per-frame bit-flip offsets of ``corrupt`` fates
CORRUPT_SALT = 0xC0DE
#: first byte of a CRC frame that the frame CRC covers (u32 length,
#: version, flags, u32 crc come first); flips land at or past this offset
#: so damage is always a *detectable* body corruption, never a framing
#: desync of the byte stream
_CRC_BODY_OFFSET = 10


@dataclass(frozen=True)
class FrameFate:
    """The injector's verdict for one transmitted frame.

    ``corrupt`` means the frame's encoded bytes are bit-flipped before the
    socket write: the frame *is* delivered, damaged, and the receiver's
    frame CRC is what must turn it into a drop.
    """

    drop: bool = False
    dup: bool = False
    delay_ms: float = 0.0
    corrupt: bool = False
    #: lane query index of this fate; keys the bit-flip offsets of
    #: :meth:`LiveFaultInjector.damage` so replays damage the same bytes
    k: int = -1

    @property
    def deliver(self) -> bool:
        return not self.drop


class LiveFaultInjector:
    """Per-frame fault decisions for the live runtime's peer channels.

    ``faults`` supplies the schedule -- drop/duplication probabilities
    (global and per-channel), partition windows, and the ``until`` horizon
    -- exactly as the simulator consumes it.  The ``LinkFaults`` object's
    own RNG is deliberately **not** touched (see the module docstring);
    decisions come from per-channel lanes derived from ``faults.seed``.

    ``jitter_ms > 0`` additionally delays each delivered frame by a random
    amount up to that bound, exercising reordering (the receiver's ARQ
    restores order).  The injector is inert until :meth:`arm` pins the
    schedule's time origin to the event loop's clock.
    """

    def __init__(
        self,
        faults: LinkFaults | None = None,
        time_scale: float = 1.0,
        jitter_ms: float = 0.0,
    ):
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if jitter_ms < 0:
            raise ValueError("jitter_ms must be >= 0")
        self.faults = faults
        self.time_scale = float(time_scale)
        self.jitter_ms = float(jitter_ms)
        self.enabled = True
        self._t0: float | None = None
        self._loop = None
        self._lanes: dict[tuple[int, int], np.random.Generator] = {}
        self._lane_index: dict[tuple[int, int], int] = {}
        #: (src, dst, query index, verdict) -- the injected fault schedule;
        #: determinism tests compare this across replays
        self.trace: list[tuple[int, int, int, str]] = []
        # damage counters, mirroring LinkFaults observability
        self.dropped = 0
        self.duplicated = 0
        self.severed = 0
        self.delayed = 0
        self.delivered = 0
        self.corrupted = 0

    # ------------------------------------------------------------------

    def arm(self, loop) -> None:
        """Pin the schedule's t=0 to ``loop.time()`` (idempotent)."""
        if self._t0 is None:
            self._loop = loop
            self._t0 = loop.time() * 1000.0

    def disable(self) -> None:
        """Cease all injection immediately (the convergence phase)."""
        self.enabled = False

    def sim_now(self) -> float:
        """The schedule clock: scaled milliseconds since :meth:`arm`."""
        if self._t0 is None:
            return 0.0
        return (self._loop.time() * 1000.0 - self._t0) / self.time_scale

    def real_delay_ms(self, sim_ms: float) -> float:
        """Map a schedule duration to real milliseconds."""
        return sim_ms * self.time_scale

    # ------------------------------------------------------------------

    def _lane(self, src: int, dst: int) -> np.random.Generator:
        lane = self._lanes.get((src, dst))
        if lane is None:
            seed = self.faults.seed if self.faults is not None else 0
            lane = np.random.default_rng((seed, LANE_SALT, src, dst))
            self._lanes[(src, dst)] = lane
            self._lane_index[(src, dst)] = 0
        return lane

    def fate(self, src: int, dst: int) -> FrameFate:
        """Decide the fate of the next frame on channel ``src -> dst``.

        Exactly four variates are drawn per call (drop, dup, jitter,
        corrupt), in that order, whether or not each is used -- the lane
        stream position is the query index, nothing else.
        """
        f = self.faults
        if f is None or not self.enabled or not f.enabled or self._t0 is None:
            return FrameFate()
        lane = self._lane(src, dst)
        k = self._lane_index[(src, dst)]
        self._lane_index[(src, dst)] = k + 1
        r_drop = lane.random()
        r_dup = lane.random()
        r_jit = lane.random()
        r_rot = lane.random()

        now = self.sim_now()
        if f.partitions.severs(now, src, dst):
            self.severed += 1
            f.severed += 1
            self.trace.append((src, dst, k, "sever"))
            return FrameFate(drop=True)
        drop_p, dup_p = f._probs(src, dst)
        active = f.until is None or now < f.until
        if active and r_drop < drop_p:
            self.dropped += 1
            f.dropped += 1
            self.trace.append((src, dst, k, "drop"))
            return FrameFate(drop=True)
        dup = active and r_dup < dup_p
        delay = r_jit * self.jitter_ms if active and self.jitter_ms > 0 else 0.0
        rot = active and r_rot < getattr(f, "corrupt_prob", 0.0)
        if dup:
            self.duplicated += 1
            f.duplicated += 1
        if delay > 0:
            self.delayed += 1
        if rot:
            self.corrupted += 1
            f.corrupted += 1
        self.delivered += 1
        self.trace.append(
            (
                src,
                dst,
                k,
                "corrupt"
                if rot
                else ("dup" if dup else ("delay" if delay > 0 else "ok")),
            )
        )
        return FrameFate(dup=dup, delay_ms=delay, corrupt=rot, k=k)

    def damage(self, blob: bytes, src: int, dst: int, k: int) -> bytes:
        """Bit-flip an encoded frame for a ``corrupt`` fate.

        Flips land strictly inside the CRC-covered region (never the
        length prefix), so the receiver sees a well-framed but damaged
        frame -- exactly the failure the frame CRC exists to catch.  The
        flipped offsets are a pure function of ``(seed, src, dst, k,
        len(blob))``: replays damage the same bytes.
        """
        raw = bytearray(blob)
        if len(raw) <= _CRC_BODY_OFFSET:  # pragma: no cover - defensive
            return blob
        seed = self.faults.seed if self.faults is not None else 0
        rng = np.random.default_rng((seed, CORRUPT_SALT, src, dst, k, len(raw)))
        pos = int(rng.integers(_CRC_BODY_OFFSET, len(raw)))
        raw[pos] ^= 1 << int(rng.integers(0, 8))
        return bytes(raw)
