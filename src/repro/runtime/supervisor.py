"""Process supervision for the live cluster: restart crashed servers.

A production CausalEC deployment runs each server under a supervisor that
restarts it after a crash -- the paper's liveness theorems (4.4/4.5) only
promise progress for operations whose home server *stays* up, so bounded
downtime is what turns "crash" into "blip".  :class:`Supervisor` watches an
:class:`~repro.runtime.asyncio_rt.AsyncioCluster` for halted servers and
restarts them with exponential backoff per :class:`RestartPolicy`; restart
storms (a server that keeps dying) back off geometrically and give up
after ``max_restarts``, exactly like a real init system.

The supervisor also doubles as the chaos layer's crash injector:
:meth:`inject_crash` kills a server through the same code path an external
``repro cluster --crash`` command uses, then lets the restart policy bring
it back.  Everything it does lands in ``events`` (and :meth:`dump`) so CI
can archive supervisor logs from failed soaks.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["RestartPolicy", "Supervisor"]


@dataclass
class RestartPolicy:
    """Exponential-backoff restart schedule.

    The first restart happens ``initial_delay`` seconds after the crash is
    noticed; each subsequent restart of the *same* server multiplies the
    delay by ``backoff`` up to ``max_delay``.  A server restarted
    ``max_restarts`` times is abandoned (marked given-up, reported in the
    events log).  ``reset_after`` seconds of staying up resets a server's
    backoff to the initial delay.
    """

    initial_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    max_restarts: int = 10
    reset_after: float = 5.0

    def __post_init__(self):
        if self.initial_delay <= 0 or self.backoff < 1.0 or self.max_delay <= 0:
            raise ValueError("need initial_delay > 0, backoff >= 1, max_delay > 0")
        if self.max_restarts < 0 or self.reset_after <= 0:
            raise ValueError("need max_restarts >= 0, reset_after > 0")

    def delay(self, restarts: int) -> float:
        return min(self.initial_delay * self.backoff**restarts, self.max_delay)


class Supervisor:
    """Watches a live cluster and restarts halted servers with backoff."""

    def __init__(
        self,
        cluster,
        policy: RestartPolicy | None = None,
        poll: float = 0.02,
    ):
        self.cluster = cluster
        self.policy = policy or RestartPolicy()
        self.poll = poll
        #: (loop time, event, server, detail) -- crash/restart/give-up log
        self.events: list[tuple[float, str, int, str]] = []
        self.restarts: dict[int, int] = {}
        self.given_up: set[int] = set()
        #: escalation hook, called once as ``on_give_up(server, reason)``
        #: when a server is abandoned (restart storm exhausted) or found
        #: permanently failed -- dynamic-membership clusters wire this to
        #: a replace proposal
        self.on_give_up = None
        self._restarting: set[int] = set()
        self._last_up: dict[int, float] = {}
        self._task: asyncio.Task | None = None
        self._stopped = False

    # ------------------------------------------------------------------

    def start(self) -> None:
        self._task = asyncio.ensure_future(self._watch())

    async def stop(self) -> None:
        self._stopped = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None

    async def inject_crash(self, server: int) -> None:
        """Chaos command: kill a server and let the policy revive it."""
        self._event("inject-crash", server, "operator-injected kill")
        await self.cluster.kill_server(server)

    # ------------------------------------------------------------------

    def _event(self, event: str, server: int, detail: str) -> None:
        self.events.append(
            (asyncio.get_event_loop().time(), event, server, detail)
        )

    def _give_up(self, server: int, reason: str) -> None:
        self.given_up.add(server)
        self._event("give-up", server, reason)
        if self.on_give_up is not None:
            try:
                self.on_give_up(server, reason)
            except Exception:  # noqa: BLE001 - supervisor must survive
                self._event("escalation-failed", server, reason)

    async def _watch(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopped:
            await asyncio.sleep(self.poll)
            now = loop.time()
            for i, server in enumerate(self.cluster.servers):
                if not server.halted:
                    up_since = self._last_up.setdefault(i, now)
                    if (
                        self.restarts.get(i, 0)
                        and now - up_since >= self.policy.reset_after
                    ):
                        self.restarts[i] = 0  # stable again: forgive history
                    # a healthy server in given_up is a *replacement*
                    # incarnation swapped in after we abandoned the old
                    # one: supervise it from a clean slate
                    if i in self.given_up:
                        self.given_up.discard(i)
                        self.restarts[i] = 0
                    continue
                self._last_up.pop(i, None)
                if i in self._restarting or i in self.given_up:
                    continue
                if getattr(server, "permanently_failed", False):
                    # never restart a machine marked gone for good; hand
                    # it to the escalation hook (replace proposal) instead
                    self._give_up(i, "permanently failed; awaiting replacement")
                    continue
                count = self.restarts.get(i, 0)
                if count >= self.policy.max_restarts:
                    self._give_up(
                        i, f"exceeded {self.policy.max_restarts} restarts"
                    )
                    continue
                self._restarting.add(i)
                delay = self.policy.delay(count)
                self._event(
                    "schedule-restart", i, f"attempt {count + 1} in {delay:.3f}s"
                )
                asyncio.ensure_future(self._restart_later(i, delay))

    async def _restart_later(self, i: int, delay: float) -> None:
        try:
            await asyncio.sleep(delay)
            if self._stopped or not self.cluster.servers[i].halted:
                return
            self.restarts[i] = self.restarts.get(i, 0) + 1
            await self.cluster.restart_server(i)
            self._event("restart", i, f"attempt {self.restarts[i]}")
        except Exception as exc:  # noqa: BLE001 - supervisor must survive
            self._event("restart-failed", i, repr(exc))
        finally:
            self._restarting.discard(i)

    # ------------------------------------------------------------------

    def dump(self, path: str | Path) -> Path:
        """Write the supervisor event log as JSON (CI failure artifact)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "restarts": self.restarts,
                    "given_up": sorted(self.given_up),
                    "events": [
                        {"t": t, "event": e, "server": s, "detail": d}
                        for t, e, s, d in self.events
                    ],
                },
                indent=2,
            )
        )
        return path
