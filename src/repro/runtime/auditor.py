"""Online causal-consistency auditor: a TCP sink for decision-log streams.

Every :class:`~repro.runtime.asyncio_rt.AsyncioServer` (when given an
``audit_addr``) streams its decision log over the wire codec as
:class:`~repro.consistency.online.AuditOp` frames.  The auditor listens,
feeds every record into an
:class:`~repro.consistency.online.IncrementalCausalChecker`, and flags
violations *while the cluster runs* -- the live counterpart of running the
offline bad-pattern checker after the fact.

Wire format: a server dials the auditor, sends a hello frame
``("ha", server_id)``, then any number of ``("r", AuditOp)`` frames.
Servers replay their **entire** log after every (re)connect -- the simple
strategy that needs no resume negotiation -- and the checker deduplicates
by ``(server, seq)``, so replays are free.  A server killed mid-stream
reconnects after restart and replays; nothing is lost as long as the
server eventually comes back, and reads referencing a never-returning
server's writes are reported by ``finalize()`` as thin-air reads.

The auditor is an observer: it never sends anything back, and the cluster
functions identically without one.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from ..consistency.online import (
    AuditOp,
    AuditViolation,
    IncrementalCausalChecker,
)
from . import wire
from .asyncio_rt import _CONN_ERRORS, read_frame

__all__ = ["OnlineAuditor"]


class OnlineAuditor:
    """Listens for decision-log streams and checks them incrementally."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        sweep_interval: int = 64,
    ):
        self.host = host
        self.port = port
        self.checker = IncrementalCausalChecker(sweep_interval=sweep_interval)
        self.records_received = 0
        self.connections = 0
        self._listener: asyncio.Server | None = None
        self._finalized = False

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def violations(self) -> list[AuditViolation]:
        return list(self.checker.violations)

    async def start(self) -> None:
        self._listener = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._listener.sockets[0].getsockname()[1]

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            hello = await read_frame(reader)
            if hello[0] != "ha":
                return
            self.connections += 1
            while True:
                payload = await read_frame(reader)
                if payload[0] != "r":
                    continue
                record = payload[1]
                if not isinstance(record, AuditOp):
                    raise wire.WireError(f"expected AuditOp, got {record!r}")
                self.records_received += 1
                self.checker.ingest(record)
        except _CONN_ERRORS:
            pass
        finally:
            writer.close()

    def finalize(self) -> list[AuditViolation]:
        """End-of-run verdict: full sweep plus thin-air-read detection."""
        self._finalized = True
        return self.checker.finalize()

    async def close(self) -> None:
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None

    def dump(self, path: str | Path) -> Path:
        """Write a JSON violation trace (CI failure artifact)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "finalized": self._finalized,
            "records_received": self.records_received,
            "records_ingested": self.checker.records_ingested,
            "connections": self.connections,
            "violations": [
                {"kind": v.kind, "detail": v.detail, "ops": [repr(o) for o in v.ops]}
                for v in self.checker.violations
            ],
        }
        path.write_text(json.dumps(payload, indent=2))
        return path
