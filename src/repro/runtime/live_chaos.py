"""Seeded chaos soak against the live asyncio runtime.

:func:`run_live_chaos` is the live counterpart of
:func:`repro.sim.chaos.run_chaos`: it derives the *same* seeded
:class:`~repro.sim.chaos.ChaosSchedule` (lossy links, duplications, a
partition window, crash-restarts), but replays it against a real TCP
cluster through the chaos stack this package adds --

* :class:`~repro.runtime.chaos_rt.LiveFaultInjector` drops/duplicates/
  delays frames inside every peer channel, deterministically per seed;
* a :class:`~repro.sim.faults.FaultPlan` schedules the kills and
  connection resets on the event loop;
* a :class:`~repro.runtime.supervisor.Supervisor` notices the kills and
  restarts the victims with exponential backoff;
* every server's heartbeat :class:`~repro.protocol.failure_detector
  .FailureDetectorCore` suspects the dead, which triggers client
  failover for reads;
* an :class:`~repro.runtime.auditor.OnlineAuditor` tails every server's
  decision log over TCP and checks causal consistency *while the chaos
  runs*.

After the fault window the injector is disabled, the supervisor heals the
cluster, and the run must **converge**: every client reads every object
from its (possibly switched) server and all answers agree.  The verdict
combines the online auditor, the offline history checkers, and the
convergence check; ``artifact_dir`` captures auditor and supervisor
dumps for CI on failure.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..consistency.causal import (
    check_causal_consistency,
    check_returns_written_values,
)
from ..protocol.client_core import RetryPolicy
from ..protocol.failure_detector import FailureDetectorConfig
from ..protocol.repair_core import RepairConfig
from ..protocol.scrub_core import ScrubConfig
from ..protocol.server_core import ServerConfig
from ..sim.chaos import ChaosConfig, ChaosSchedule
from ..sim.faults import FaultPlan
from ..sim.network import LinkFaults, PartitionPlan
from .asyncio_rt import AsyncioCluster
from .auditor import OnlineAuditor
from .chaos_rt import LiveFaultInjector
from .supervisor import RestartPolicy, Supervisor

__all__ = ["LiveChaosResult", "run_live_chaos"]

#: extra rng stream salts (distinct from ChaosSchedule's 0xC4A05 and the
#: injector's lane salt, so live-only decisions never perturb the schedule)
_WORKLOAD_SALT = 0x11FE01
_RESET_SALT = 0x11FE02


@dataclass
class LiveChaosResult:
    """Verdict and observability counters for one live chaos run."""

    seed: int
    ok: bool
    violations: list[str]
    converged: bool
    completed: int
    failed: int
    dropped: int
    duplicated: int
    severed: int
    delayed: int
    audit_records: int
    detector_transitions: list[tuple[int, int, str]]
    client_switches: int
    supervisor_restarts: int
    schedule: ChaosSchedule
    artifacts: list[str] = field(default_factory=list)
    #: aggregated anti-entropy counters (empty dict when repair is off)
    repair: dict[str, float] = field(default_factory=dict)
    #: frames bit-flipped in flight by the injector
    corrupted: int = 0
    #: aggregated scrub/integrity counters (empty dict when scrub is off)
    scrub: dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        suspects = sum(1 for _, _, k in self.detector_transitions if k == "suspect")
        lines = [
            f"live chaos seed {self.seed}: {verdict} "
            f"(drop={self.schedule.drop_prob:.2f}, "
            f"dup={self.schedule.dup_prob:.2f}, "
            f"partitions={len(self.schedule.partitions)}, "
            f"crashes={len(self.schedule.crashes)})",
            f"  ops: {self.completed} completed, {self.failed} failed fast",
            f"  frames: {self.dropped} dropped, {self.duplicated} duplicated, "
            f"{self.severed} severed, {self.delayed} delayed",
            f"  detector: {suspects} suspicion(s); "
            f"clients switched home {self.client_switches} time(s)",
            f"  supervisor: {self.supervisor_restarts} restart(s); "
            f"auditor ingested {self.audit_records} record(s); "
            f"converged={self.converged}",
        ]
        if self.repair:
            lines.append(
                "  repair: %d round(s), %d install(s), %d decode(s), "
                "%d bytes shipped"
                % (
                    self.repair.get("rounds_completed", 0),
                    self.repair.get("entries_installed", 0),
                    self.repair.get("symbols_decoded", 0),
                    self.repair.get("bits_shipped", 0) // 8,
                )
            )
        if self.corrupted or self.scrub:
            lines.append(
                "  integrity: %d frame(s) bit-flipped (%d rejected by CRC), "
                "%d quarantine(s) (%d by scrub round), %d healed, "
                "%d checkpoint report(s)"
                % (
                    self.corrupted,
                    self.scrub.get("frames_corrupt", 0),
                    self.scrub.get("integrity_quarantines", 0),
                    self.scrub.get("corrupt_detected", 0),
                    self.scrub.get("healed", 0),
                    self.scrub.get("checkpoint_reports", 0),
                )
            )
        lines.extend(f"  violation: {v}" for v in self.violations)
        return "\n".join(lines)


async def _drain_audit(auditor: OnlineAuditor, rounds: int = 5, poll: float = 0.03):
    """Wait until the auditor's record count stops moving."""
    stable, last = 0, -1
    while stable < rounds:
        await asyncio.sleep(poll)
        n = auditor.records_received
        stable = stable + 1 if n == last else 0
        last = n


async def _client_workload(client, cluster, cfg, seed, index, scale):
    """One client's seeded op stream; returns (completed, failed)."""
    rng = np.random.default_rng((seed, _WORKLOAD_SALT, index))
    completed = failed = 0
    for k in range(cfg.ops_per_client):
        await asyncio.sleep(
            float(rng.exponential(cfg.think_time_mean)) * scale / 1000.0
        )
        obj = int(rng.integers(0, cfg.num_objects))
        try:
            if rng.random() < cfg.read_ratio:
                op = await client.read(obj)
            else:
                op = await client.write(
                    obj, cluster.value(1000 * index + k + 1)
                )
            if op.failed:
                failed += 1
            else:
                completed += 1
        except Exception:  # noqa: BLE001 - chaos: count, keep soaking
            failed += 1
    return completed, failed


async def _run(code, seed, cfg, time_scale, jitter_ms, artifact_dir, repair, scrub):
    schedule = ChaosSchedule.generate(seed, code.N, cfg)
    if scrub is None and cfg.scrub_interval is not None:
        scrub = ScrubConfig(interval=cfg.scrub_interval * time_scale)
    faults = LinkFaults(
        drop_prob=schedule.drop_prob,
        dup_prob=schedule.dup_prob,
        partitions=PartitionPlan(schedule.partitions),
        seed=(seed * 2 + 1),
        until=cfg.fault_end,
        corrupt_prob=schedule.corrupt_prob,
    )
    injector = LiveFaultInjector(
        faults, time_scale=time_scale, jitter_ms=jitter_ms
    )

    auditor = OnlineAuditor()
    await auditor.start()
    cluster = AsyncioCluster(
        code,
        config=ServerConfig(gc_interval=cfg.gc_interval),
        retry=RetryPolicy(
            timeout=cfg.retry_timeout * time_scale,
            backoff=cfg.retry_backoff,
            max_retries=cfg.retry_max,
        ),
        chaos=injector,
        detector=FailureDetectorConfig(),
        audit_addr=auditor.address,
        repair=repair,
        scrub=scrub,
    )
    supervisor = Supervisor(
        cluster, RestartPolicy(initial_delay=0.1, max_delay=1.0)
    )
    artifacts: list[str] = []
    try:
        await cluster.start()
        supervisor.start()
        clients = [
            await cluster.add_client(i, failover=True) for i in range(code.N)
        ]

        # kills from the schedule; the supervisor (not the schedule's
        # restart time) brings victims back -- that's the layer under test.
        # One seeded connection reset in mid-window stresses ARQ replay.
        plan = FaultPlan(rot_seed=seed)
        for down, _up, victim in schedule.crashes:
            plan.halt(down, victim)
        plan.rots = list(schedule.rots)
        plan.disk_rots = list(schedule.disk_rots)
        plan.torn_writes = list(schedule.torn_writes)
        reset_rng = np.random.default_rng((seed, _RESET_SALT))
        plan.reset_connections(
            float(
                reset_rng.uniform(
                    cfg.fault_start,
                    cfg.fault_start + 0.5 * (cfg.fault_end - cfg.fault_start),
                )
            ),
            int(reset_rng.integers(0, code.N)),
        )
        cluster.apply_fault_plan(plan, time_scale=time_scale)

        results = await asyncio.gather(
            *(
                _client_workload(c, cluster, cfg, seed, i, time_scale)
                for i, c in enumerate(clients)
            )
        )
        completed = sum(r[0] for r in results)
        failed = sum(r[1] for r in results)

        # heal: no more injected faults; wait for the supervisor to revive
        # every victim, then let the protocol converge (Thm. 4.5 live).
        injector.disable()
        deadline = asyncio.get_running_loop().time() + 15.0
        while any(s.halted for s in cluster.servers):
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError("supervisor failed to heal the cluster")
            await asyncio.sleep(0.05)
        await cluster.quiesce(timeout=60.0)

        # convergence: every client reads every object; all must agree
        converged = True
        divergences: list[str] = []
        for x in range(code.K):
            vals: list[tuple[int, object, object]] = []
            for client in clients:
                r = await client.read(x)
                if r.failed:
                    converged = False
                    divergences.append(
                        f"obj {x}: client {client.core.node_id} final read "
                        f"failed ({r.error})"
                    )
                    continue
                vals.append((client.core.node_id, r.value, r.tag))
            if not vals:
                converged = False
            elif any(not np.array_equal(v, vals[0][1]) for _, v, _ in vals[1:]):
                converged = False
                divergences.append(
                    "obj %d: final reads disagree: %s"
                    % (
                        x,
                        "; ".join(
                            f"client {c} saw tag {t}" for c, _, t in vals
                        ),
                    )
                )
        await cluster.quiesce(timeout=60.0)
        await _drain_audit(auditor)

        violations = [
            f"auditor: {v.kind}: {v.detail}" for v in auditor.finalize()
        ]
        zero = code.zero_value()
        violations += check_causal_consistency(
            cluster.history, zero, raise_on_violation=False
        )
        violations += check_returns_written_values(
            cluster.history, zero, raise_on_violation=False
        )
        if not converged:
            violations.append(
                "no convergence after faults ceased: "
                + ("; ".join(divergences) or "no final read completed")
            )
        scrub_totals = cluster.scrub_stats() if scrub is not None else {}
        if injector.corrupted >= 3 and scrub is not None:
            # bit-flipped frames must be getting rejected by the CRC.
            # Individual flipped frames can die with a torn connection
            # before any receiver sees them, so the check is "rejections
            # observed", not a per-frame ledger; >= 3 injections makes
            # zero rejections a real failure, not scheduling noise.
            if scrub_totals.get("frames_corrupt", 0) == 0:
                violations.append(
                    f"silent corruption: {injector.corrupted} frame(s) "
                    "bit-flipped in flight but no CRC rejection recorded"
                )
        if schedule.rots:
            expected = len({s for _, s in schedule.rots})
            detected = sum(
                s.core.stats.integrity_quarantines for s in cluster.servers
            )
            if detected < expected:
                violations.append(
                    f"silent corruption: {expected} codeword rot(s) "
                    f"injected but only {detected} quarantine(s) recorded"
                )

        ok = not violations
        if not ok and artifact_dir is not None:
            root = Path(artifact_dir)
            artifacts.append(
                str(auditor.dump(root / f"seed{seed}-auditor.json"))
            )
            artifacts.append(
                str(supervisor.dump(root / f"seed{seed}-supervisor.json"))
            )
        return LiveChaosResult(
            seed=seed,
            ok=ok,
            violations=violations,
            converged=converged,
            completed=completed,
            failed=failed,
            dropped=injector.dropped,
            duplicated=injector.duplicated,
            severed=injector.severed,
            delayed=injector.delayed,
            audit_records=auditor.checker.records_ingested,
            detector_transitions=list(cluster.detector_transitions),
            client_switches=sum(len(c.switch_log) for c in clients),
            supervisor_restarts=sum(supervisor.restarts.values()),
            schedule=schedule,
            artifacts=artifacts,
            repair=cluster.repair_stats(),
            corrupted=injector.corrupted,
            scrub=scrub_totals,
        )
    finally:
        await supervisor.stop()
        await cluster.shutdown()
        await auditor.close()


def run_live_chaos(
    code,
    seed: int,
    config: ChaosConfig | None = None,
    time_scale: float = 4.0,
    jitter_ms: float = 6.0,
    artifact_dir: str | Path | None = None,
    repair: RepairConfig | None = None,
    scrub: ScrubConfig | None = None,
) -> LiveChaosResult:
    """Run one seeded chaos schedule against a live asyncio cluster.

    ``config`` is the same :class:`~repro.sim.chaos.ChaosConfig` the
    simulator's harness takes (schedule times are simulated milliseconds);
    ``time_scale`` maps them onto the real clock.  ``repair`` attaches the
    anti-entropy overlay to every server; its counters land in
    ``result.repair``.  ``scrub`` attaches the bit-rot scrubber (defaulted
    from ``config.scrub_interval``, scaled, when set); with corruption in
    the schedule the verdict additionally requires every injected rot to
    have been *detected* (CRC rejections, quarantines).  Returns a
    :class:`LiveChaosResult`; ``result.ok`` means zero auditor violations,
    clean offline checks, detected corruption, and a converged cluster.
    """
    cfg = config or ChaosConfig()
    result = asyncio.run(
        _run(code, seed, cfg, time_scale, jitter_ms, artifact_dir, repair, scrub)
    )
    return result
