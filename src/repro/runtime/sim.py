"""Discrete-event runtime: drive sans-I/O cores with the simulator.

:class:`EffectNode` is the adapter between the two layers: it *is* a
simulated :class:`~repro.sim.node.Node` (scheduler + network + halt/restart
machinery) and expects to be mixed with a :class:`~repro.protocol.effects
.ProtocolCore` (``class CausalECServer(EffectNode, ServerCore)``), whose
``handle_message``/``handle_timer`` it invokes on every delivered event.
The returned effect list is interpreted **strictly in order**:

* ``SendEffect``/``ReplyEffect`` -> :meth:`~repro.sim.node.Node.send` (the
  simulator does not distinguish peer links from client connections);
* ``SetTimerEffect`` -> :meth:`~repro.sim.node.Node.set_timer`, with the
  handle remembered under the timer id so ``CancelTimerEffect`` can cancel
  it; a fired timer feeds ``handle_timer(timer_id)`` back into the core;
* ``PersistEffect`` -> a durable checkpoint when a store is attached;
* ``OpSettledEffect`` -> the ``on_complete``/``on_failure`` application
  hooks (overridden by workload drivers);
* ``LogEffect`` -> appended to ``decision_log``.

In-order interpretation after the handler returns consumes the scheduler's
sequence numbers and the network's latency RNG in exactly the order the
pre-sans-I/O implementation did (handlers themselves never draw
randomness), so simulated executions are bit-for-bit identical to the old
welded implementation -- the refactor is invisible to every benchmark,
chaos schedule, and recorded history.

Mixed classes stay plain attribute bags: the model checker's state forking
(``CausalECServer.__new__`` + direct attribute assignment) keeps working,
which is why the timer table is lazily created.
"""

from __future__ import annotations

from ..protocol.effects import (
    CancelTimerEffect,
    HomeServerSwitchEffect,
    LogEffect,
    OpSettledEffect,
    PersistEffect,
    ReplyEffect,
    SendEffect,
    SetTimerEffect,
)
from ..sim.node import Node

__all__ = ["EffectNode"]


class EffectNode(Node):
    """A simulated node whose behaviour comes from a mixed-in ProtocolCore."""

    def on_message(self, src: int, msg: object) -> None:
        self.interpret(self.handle_message(src, msg, self.scheduler.now))

    def interpret(self, effects: list) -> None:
        """Perform an effect list in order (the order is part of the
        sans-I/O contract; see the module docstring)."""
        for e in effects:
            cls = type(e)
            if cls is SendEffect:
                self.send(e.dst, e.msg)
            elif cls is ReplyEffect:
                self.send(e.client_id, e.msg)
            elif cls is SetTimerEffect:
                timers = self.__dict__.setdefault("_timers", {})
                timers[e.timer_id] = self.set_timer(
                    e.delay, lambda tid=e.timer_id: self._fire_timer(tid)
                )
            elif cls is CancelTimerEffect:
                handle = self.__dict__.get("_timers", {}).pop(e.timer_id, None)
                if handle is not None:
                    handle.cancel()
            elif cls is PersistEffect:
                self._persist()
            elif cls is OpSettledEffect:
                if e.failed:
                    self.on_failure(e.op)
                else:
                    self.on_complete(e.op)
            elif cls is LogEffect:
                self.__dict__.setdefault("decision_log", []).append(e.entry)
            elif cls is HomeServerSwitchEffect:
                # failover bookkeeping: the simulated network routes by
                # node id, so there is no connection to re-dial; record
                # the switch for tests that assert on it
                self.__dict__.setdefault("switch_log", []).append(
                    (e.old, e.new, e.opid)
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown effect {e!r}")

    def _fire_timer(self, timer_id: tuple) -> None:
        self.__dict__.get("_timers", {}).pop(timer_id, None)
        self.interpret(self.handle_timer(timer_id, self.scheduler.now))

    # -- effect targets overridable by subclasses --------------------------

    def _persist(self) -> None:
        """Durable checkpointing; a no-op unless the subclass attaches it."""

    def on_complete(self, op) -> None:
        """Hook for workload drivers; default is a no-op."""

    def on_failure(self, op) -> None:
        """Hook for workload drivers on an unavailability failure."""
