"""Sans-I/O protocol cores: pure state machines plus typed effects.

This package holds exactly one implementation of each protocol in the
repository -- CausalEC servers (:class:`ServerCore`), the shared client
(:class:`ClientCore`), and the baselines' causal broadcast base
(:class:`CausalBroadcastCore`) -- written as side-effect-free state
machines.  Handlers consume an event (a delivered message, a fired timer,
a client invocation) plus the current time and return an ordered list of
:mod:`~repro.protocol.effects` describing the I/O to perform.

Runtimes that interpret the effects live in :mod:`repro.runtime`:
the discrete-event :class:`~repro.runtime.sim.EffectNode` adapters (used by
every benchmark, chaos test, and the model checker) and the live
:mod:`~repro.runtime.asyncio_rt` TCP cluster.
"""

from .broadcast_core import CausalBroadcastCore
from .client_core import ClientCore, HomeServerUnavailable, RetryPolicy
from .effects import (
    CancelTimerEffect,
    HomeServerSwitchEffect,
    LogEffect,
    OpSettledEffect,
    PeerAliveEffect,
    PeerSuspectedEffect,
    PersistEffect,
    ProtocolCore,
    ReplyEffect,
    SendEffect,
    SetTimerEffect,
)
from .failure_detector import FailureDetectorConfig, FailureDetectorCore
from .repair_core import RepairConfig, RepairCore, RepairStats
from .server_core import ServerConfig, ServerCore, ServerStats

__all__ = [
    "ServerCore",
    "ServerConfig",
    "ServerStats",
    "ClientCore",
    "RetryPolicy",
    "HomeServerUnavailable",
    "CausalBroadcastCore",
    "FailureDetectorCore",
    "FailureDetectorConfig",
    "RepairCore",
    "RepairConfig",
    "RepairStats",
    "ProtocolCore",
    "SendEffect",
    "ReplyEffect",
    "SetTimerEffect",
    "CancelTimerEffect",
    "PersistEffect",
    "LogEffect",
    "OpSettledEffect",
    "PeerSuspectedEffect",
    "PeerAliveEffect",
    "HomeServerSwitchEffect",
]
