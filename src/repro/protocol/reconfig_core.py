"""Epoch-fenced dynamic membership as a sans-I/O protocol overlay.

CausalEC (and the full paper, arXiv:2102.13310) assumes a static server
set; coded atomic-memory work such as CASGC shows why reconfiguring
erasure-coded state is the hard robustness problem -- concurrent writes,
partial codewords and GC watermarks must all survive the cutover.  This
overlay drives the repo's reconfigurations with the smallest sound
protocol that composes with everything already here:

* **Membership epochs.** Every server carries a durable ``cfg_epoch``
  (:class:`~repro.protocol.server_core.ServerCore`).  A reconfiguration
  is a two-phase broadcast from a coordinator (the cluster object, like
  the resharding coordinator): :class:`~repro.core.messages
  .ReconfigPropose` (reachability probe, stages nothing irreversible)
  then :class:`~repro.core.messages.ReconfigCommit`.  Both are
  self-contained -- a server that missed the propose still installs the
  epoch correctly from the commit alone, and re-delivered commits are
  idempotent (acked with the installed epoch).

* **Wire fencing.** Peer hellos advertise the dialer's ``cfg_epoch``;
  :meth:`ReconfigCore.frame_admissible` is the admission predicate the
  runtime consults per connection and per frame.  A zombie -- the dead
  incarnation a replacement superseded -- redials with the stale epoch
  forever and is rejected at the wire, so its retransmissions can never
  interleave with the replacement's fresh state.

* **State transfer.** A commit never ships state.  The joiner (or the
  wiped replacement) starts from the initial state and is healed by the
  existing anti-entropy overlay: its first digest advertises nothing, so
  every peer's pull round re-installs missed writes and the recovery-set
  symbol pooling of :class:`~repro.protocol.repair_core.RepairCore`
  re-encodes the newcomer's matrix row from any live recovery set.
  Snapshot installation was rejected deliberately: tags installed
  without their folded codeword would make digests look current while
  the symbol is zero, and repair would never heal it.

* **Joins are non-minting.**  Vector clocks keep the founding dimension
  forever (componentwise comparison cannot mix dimensions), so an added
  server runs with ``clock_dim`` = founding N: it stores redundancy,
  answers reads and repairs, but no client write is homed on it.  A
  *replace* keeps the dead server's id, row and clock slot and is
  therefore a full member -- the expected production path.

* **Removal retires.**  Removed ids go into ``cfg_retired``: excluded
  from fanout, read inquiries and the GC watermark agreement (a
  watermark waiting on dels from a nonexistent server would freeze
  forever).  The coordinator validates the survivors still form recovery
  sets before committing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.messages import ReconfigAck, ReconfigCommit, ReconfigPropose
from ..ec.codes import extend_code
from .effects import (
    LogEffect,
    MembershipChangedEffect,
    PersistEffect,
    ProtocolCore,
)

__all__ = ["ReconfigCore", "ReconfigStats", "validate_membership"]


@dataclass
class ReconfigStats:
    """Counters for one server's reconfiguration overlay."""

    proposes: int = 0
    commits: int = 0
    stale_commits: int = 0
    #: frames rejected by the wire-layer epoch fence
    frames_fenced: int = 0


def validate_membership(code, members) -> None:
    """Coordinator-side check: every object stays recoverable.

    ``members`` are the active server ids of the proposed epoch; raises
    ``ValueError`` when some object has no recovery set among them
    (committing such a membership would strand data).
    """
    members = sorted(int(m) for m in members)
    for k in range(code.K):
        if not code.is_recovery_set(members, k):
            raise ValueError(
                f"members {members} are not a recovery set for object {k}"
            )


class ReconfigCore(ProtocolCore):
    """The per-server receiver side of epoch-fenced reconfiguration.

    Owns no I/O and no timers; the runtime routes ``ReconfigPropose`` /
    ``ReconfigCommit`` control frames here and interprets the returned
    effects with its normal machinery (acks travel back as
    :class:`~repro.protocol.effects.ReplyEffect` over the coordinator's
    control connection).  Mutates the host :class:`ServerCore`'s
    membership state on commit; everything else in the host is untouched.
    """

    def __init__(self, host):
        self.host = host
        self.stats = ReconfigStats()
        #: staged proposals by epoch (advisory: commits are self-contained)
        self.pending: dict[int, ReconfigPropose] = {}
        #: set when a commit removed *this* server from the membership;
        #: the runtime reacts by halting the process
        self.evicted = False
        self.now = 0.0

    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self.host.cfg_epoch

    def frame_admissible(self, peer_epoch: int) -> bool:
        """Wire-layer fence: may a frame from ``peer_epoch`` be delivered?

        Frames from *lower* epochs are from a configuration this server
        has moved past -- a zombie predecessor, or a live peer that has
        not yet installed the commit (it will re-handshake once it has).
        Higher epochs are admitted: the peer knows a commit this server
        has yet to receive, and its frames are still causally sound (the
        commit itself changes no protocol state).
        """
        if peer_epoch < self.host.cfg_epoch:
            self.stats.frames_fenced += 1
            return False
        return True

    # ------------------------------------------------------------------

    def handle_message(self, src: int, msg, now: float) -> list:
        self._begin(now)
        if isinstance(msg, ReconfigPropose):
            self._on_propose(src, msg)
        elif isinstance(msg, ReconfigCommit):
            self._on_commit(src, msg)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected reconfig message {msg!r}")
        return self._end()

    def _ack(self, src: int, epoch: int) -> None:
        ack = ReconfigAck(epoch, self.host.cfg_epoch)
        ack.ts = self.host.vc
        self._emit_reply(src, ack)

    def _on_propose(self, src: int, msg: ReconfigPropose) -> None:
        self.stats.proposes += 1
        if msg.epoch > self.host.cfg_epoch:
            self.pending[msg.epoch] = msg
        self._ack(src, msg.epoch)

    def _on_commit(self, src: int, msg: ReconfigCommit) -> None:
        if msg.epoch <= self.host.cfg_epoch:
            self.stats.stale_commits += 1  # idempotent re-delivery
        else:
            self._apply_commit(msg)
        self._ack(src, msg.epoch)

    def apply_commit(self, msg: ReconfigCommit, now: float) -> list:
        """Install a commit delivered outside the message path.

        Used by runtimes that learn the epoch from the cluster object
        directly (e.g. a joiner booting straight into the new epoch).
        """
        self._begin(now)
        if msg.epoch > self.host.cfg_epoch:
            self._apply_commit(msg)
        return self._end()

    def _apply_commit(self, msg: ReconfigCommit) -> None:
        host = self.host
        members = tuple(int(m) for m in msg.members)
        if msg.joiner is not None and msg.row_seed is not None:
            if msg.joiner != host.code.N:
                raise ValueError(
                    f"commit joins server {msg.joiner} but the local code "
                    f"has N={host.code.N}: an intermediate epoch is missing"
                )
            host.adopt_code(extend_code(host.code, msg.row_seed))
        retired = set(range(host.code.N)) - set(members)
        if host.node_id in retired:
            # this server was removed: record the epoch, flag eviction and
            # let the runtime halt the process; do not retire ourselves in
            # the core (set_retired guards against that footgun)
            self.evicted = True
            retired.discard(host.node_id)
        host.set_retired(retired)
        host.cfg_epoch = msg.epoch
        self.pending = {e: p for e, p in self.pending.items() if e > msg.epoch}
        self.stats.commits += 1
        self._emit(
            LogEffect(
                ("reconfig-commit", msg.epoch, members, msg.joiner, msg.row_seed)
            )
        )
        self._emit(PersistEffect())
        self._emit(MembershipChangedEffect(msg.epoch, members, msg.joiner))
