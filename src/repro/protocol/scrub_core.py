"""Background bit-rot scrubbing as a sans-I/O protocol core.

Erasure-coded storage concentrates risk: one rotted codeword symbol
silently poisons *every* object whose recovery sets include that server,
and nothing in the foreground protocol ever re-reads a symbol it is not
asked for -- latent corruption survives until the worst possible moment
(a decode that needs exactly the damaged server).  Production stores
(ZFS, Ceph, HDFS) answer with periodic *scrub*: re-verify checksums over
data at rest, on a timer, and repair what fails.  :class:`ScrubCore` is
that service for CausalEC.

The overlay runs next to a :class:`~repro.protocol.server_core.ServerCore`
(the *host*), in the style of :class:`~repro.protocol.repair_core
.RepairCore`:

1. **Verify** -- every ``interval`` ms the core asks the host to check
   its codeword integrity seal (a BLAKE2b digest over the symbol and its
   tag vector, renewed only at legitimate mutation points).
2. **Quarantine** -- on a mismatch the host resets the symbol to the
   zero codeword with a zero tag vector: a *detected erasure* instead of
   silent corruption.  Nothing downstream ever decodes from the rotted
   bytes -- read and inquiry handlers check the same seal on entry.
3. **Heal** -- the zero tag vector makes every version the history list
   still holds fold back in via the host's own Encoding action (invoked
   in the same step), and versions already garbage-collected lower the
   host's advertised repair knowledge, so the repair overlay's next
   digest diff opens a pull round against the peers.  The scrub core
   tracks which quarantined objects have regained their pre-rot tags and
   reports them as ``healed``.

Disk-level scrub (re-verifying checkpoint digests at rest) is I/O and
therefore lives in the runtimes; they account it through this core's
:class:`ScrubStats` (``checkpoints_*`` counters) so one stats object
describes the whole integrity story per server.

Non-interference: scrub never blocks a foreground handler, never mints
tags, and a clean symbol costs one digest per interval.  Timers are
namespaced under ``("scrub", ...)`` so runtimes can multiplex them with
the host's, the failure detector's, and the repair overlay's on one
timer table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tags import Tag
from .effects import ProtocolCore, SetTimerEffect
from .server_core import ServerCore

__all__ = ["ScrubConfig", "ScrubStats", "ScrubCore", "SCRUB_TIMER"]

SCRUB_TIMER = ("scrub", "round")


@dataclass
class ScrubConfig:
    """Scrub-overlay tunables (milliseconds, like every core clock).

    ``interval`` paces the rounds; worst-case latent-corruption dwell time
    is one interval.  Scrubbing is cheap (one BLAKE2b digest over the
    stored symbol per round), so intervals well below the repair overlay's
    digest gossip are reasonable.
    """

    interval: float = 250.0

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError("interval must be positive")


@dataclass
class ScrubStats:
    """Counters for one server's scrub overlay."""

    rounds: int = 0
    symbols_verified: int = 0
    corrupt_detected: int = 0
    quarantined: int = 0  # objects zeroed out of the codeword by quarantine
    healed: int = 0  # quarantined objects whose tags recovered
    # disk-side scrub, accounted by the runtime that owns the store
    checkpoints_verified: int = 0
    checkpoints_corrupt: int = 0
    checkpoints_rewritten: int = 0


class ScrubCore(ProtocolCore):
    """Per-server bit-rot scrubber around a :class:`ServerCore` host."""

    def __init__(self, host: ServerCore, config: ScrubConfig | None = None):
        self.host = host
        self.config = config or ScrubConfig()
        self.stats = ScrubStats()
        self.now = 0.0
        self._zero = host._zero
        #: pre-quarantine tags still awaiting recovery, per object
        self._pending_heal: dict[int, Tag] = {}

    # ------------------------------------------------------------------
    # runtime-facing contract

    def boot(self, now: float) -> list:
        """(Re)start the overlay for a fresh incarnation."""
        self._begin(now)
        self._pending_heal = {}
        self._emit(SetTimerEffect(SCRUB_TIMER, self.config.interval))
        return self._end()

    def handle_timer(self, timer_id: tuple, now: float) -> list:
        self._begin(now)
        if timer_id != SCRUB_TIMER:  # pragma: no cover - defensive
            raise ValueError(f"unknown scrub timer {timer_id!r}")
        self._round()
        self._emit(SetTimerEffect(SCRUB_TIMER, self.config.interval))
        return self._end()

    # ------------------------------------------------------------------
    # one scrub round

    def _round(self) -> None:
        host = self.host
        self.stats.rounds += 1
        self._settle_heals()
        # snapshot the tags *before* verification: these are what a
        # quarantine erases and what healing must win back
        before = {
            x: t for x, t in host.M.tagvec.items() if t != self._zero
        }
        clean, effects = host.scrub_codeword(self.now)
        self.stats.symbols_verified += 1
        if not clean:
            self.stats.corrupt_detected += 1
            self.stats.quarantined += len(before)
            for x, t in before.items():
                pending = self._pending_heal.get(x)
                if pending is None or t > pending:
                    self._pending_heal[x] = t
        for e in effects:
            self._emit(e)
        if not clean:
            self._settle_heals()  # Encoding may have refolded immediately

    def _settle_heals(self) -> None:
        host = self.host
        for x, tag in list(self._pending_heal.items()):
            if host.M.tagvec[x] >= tag:
                self.stats.healed += 1
                del self._pending_heal[x]
