"""Typed effects and the sans-I/O core contract.

The protocol logic of CausalEC (Algorithms 1-3) is expressed as *pure state
machines* -- :class:`~repro.protocol.server_core.ServerCore`,
:class:`~repro.protocol.client_core.ClientCore`, and the baselines' causal
broadcast core -- that never touch a scheduler, a socket, or a disk.
Instead, every handler consumes one *event* (a delivered message, a fired
timer, a client invocation) plus the current time, and returns an ordered
list of **effects** describing the I/O the surrounding runtime must perform:

* :class:`SendEffect` -- transmit a protocol message to a peer server;
* :class:`ReplyEffect` -- transmit a response to a client (runtimes that
  distinguish peer links from client connections route on this);
* :class:`SetTimerEffect` / :class:`CancelTimerEffect` -- arm/cancel a named
  timer; when it fires the runtime feeds ``handle_timer(timer_id, now)``
  back into the core;
* :class:`PersistEffect` -- checkpoint the core's durable state (a no-op
  for runtimes without stable storage attached);
* :class:`LogEffect` -- a structured protocol-decision record (causal
  application, read returns, GC deletions); used by the runtime-equivalence
  tests to prove two runtimes drive the same protocol.

Effect **order is part of the contract**: runtimes must interpret a
returned effect list strictly in order.  The discrete-event
:class:`~repro.runtime.sim.SimRuntime` relies on this to reproduce, bit for
bit, the executions of the pre-sans-I/O implementation (message send order
determines both per-channel FIFO floors and latency-RNG consumption), and
the :class:`~repro.runtime.asyncio_rt.AsyncioRuntime` relies on it so that
acks are written before the checkpoint that covers them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "SendEffect",
    "ReplyEffect",
    "SetTimerEffect",
    "CancelTimerEffect",
    "PersistEffect",
    "LogEffect",
    "OpSettledEffect",
    "PeerSuspectedEffect",
    "PeerAliveEffect",
    "PeerConfirmedDeadEffect",
    "MembershipChangedEffect",
    "HomeServerSwitchEffect",
    "ProtocolCore",
]


@dataclass
class SendEffect:
    """Transmit ``msg`` to peer node ``dst`` over a reliable FIFO channel."""

    dst: int
    msg: Any


@dataclass
class ReplyEffect:
    """Transmit ``msg`` to client ``client_id`` (response path)."""

    client_id: int
    msg: Any


@dataclass
class SetTimerEffect:
    """Arm a named timer; deliver ``handle_timer(timer_id)`` after ``delay``.

    ``timer_id`` is an opaque hashable tuple owned by the core (it may carry
    payload, e.g. the servers still to inquire on a read timeout).  Arming a
    timer id that is already armed replaces it.  Timers belong to a process
    incarnation: a crash or restart discards every armed timer.
    """

    timer_id: tuple
    delay: float


@dataclass
class CancelTimerEffect:
    """Disarm a previously armed timer (no-op if it already fired)."""

    timer_id: tuple


@dataclass
class PersistEffect:
    """Checkpoint the core's durable state to stable storage (if attached).

    Emitted at the end of every handled event, modelling a synchronous
    write-ahead log: every state the core has acknowledged to anyone is
    recoverable after a crash.
    """


@dataclass
class LogEffect:
    """A structured protocol-decision record (see ServerConfig.decision_log)."""

    entry: tuple


@dataclass
class OpSettledEffect:
    """Client core only: the pending operation completed or failed fast.

    Runtimes deliver this to the application layer -- the sim adapter calls
    its ``on_complete``/``on_failure`` hooks, the asyncio runtime resolves
    the operation's future.
    """

    op: Any
    failed: bool = False


@dataclass
class PeerSuspectedEffect:
    """Failure detector: ``peer`` missed enough heartbeats to be suspected.

    Purely advisory -- CausalEC's safety never depends on failure detection
    (the model is asynchronous), so runtimes use suspicion only for
    operational reactions: supervisor alerts, metrics, client failover
    hints.  ``last_heard`` is the core-clock time of the last liveness
    evidence from the peer.
    """

    peer: int
    last_heard: float


@dataclass
class PeerAliveEffect:
    """Failure detector: a previously suspected ``peer`` was heard again."""

    peer: int


@dataclass
class PeerConfirmedDeadEffect:
    """Failure detector: ``peer`` stayed suspected for the confirm window.

    Emitted at most once per continuous suspicion when the detector is
    configured with ``confirm_after``: the peer has been silent for
    ``suspect_after + duration`` core-clock milliseconds without a single
    delivered message.  Still advisory (asynchrony means a confirmed-dead
    peer may yet speak), but strong enough to *act* on operationally --
    the cluster uses it to auto-propose an epoch-fenced replacement.
    ``duration`` is how long the suspicion had lasted at confirmation.
    """

    peer: int
    duration: float


@dataclass
class MembershipChangedEffect:
    """Reconfiguration core: a new membership epoch was committed.

    ``members`` are the active server ids of epoch ``epoch``; ``joiner``
    is the newly added server id (or None for remove/replace).  Runtimes
    react by refreshing membership-derived overlay state (repair peer
    lists, detector targets) and by fencing lower-epoch peer channels.
    """

    epoch: int
    members: tuple
    joiner: int | None = None


@dataclass
class HomeServerSwitchEffect:
    """Client core: the client failed over from server ``old`` to ``new``.

    Emitted before the re-sent request's :class:`SendEffect`, so a live
    runtime can re-dial the new server's address first; the simulator needs
    no reaction (its network routes by destination id).
    """

    old: int
    new: int
    opid: Any = None


class ProtocolCore:
    """Mixin base for sans-I/O cores: the per-event effect buffer.

    Handlers run between :meth:`_begin` and :meth:`_end`; side effects are
    *emitted* (appended to the buffer) rather than performed.  ``self.now``
    holds the event's timestamp for the duration of the handler -- the only
    notion of time a core ever sees.

    The buffer is recreated at every event entry, so cores cloned by
    structural copy (e.g. the model checker's state forking, which bypasses
    ``__init__``) need no special handling.
    """

    def _begin(self, now: float) -> None:
        self._effects: list = []
        self.now = now

    def _end(self) -> list:
        effects = self._effects
        self._effects = []
        return effects

    # -- emission helpers ----------------------------------------------------

    def _emit(self, effect) -> None:
        self._effects.append(effect)

    def _emit_send(self, dst: int, msg) -> None:
        self._effects.append(SendEffect(dst, msg))

    def _emit_reply(self, client_id: int, msg) -> None:
        self._effects.append(ReplyEffect(client_id, msg))

    # -- runtime-facing contract --------------------------------------------

    def handle_message(self, src: int, msg, now: float) -> list:
        """Consume one delivered message; return the effects to perform."""
        raise NotImplementedError

    def handle_timer(self, timer_id: tuple, now: float) -> list:
        """Consume one fired timer; return the effects to perform."""
        raise NotImplementedError
