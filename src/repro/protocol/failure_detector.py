"""Heartbeat failure detection as a sans-I/O protocol core.

CausalEC's model is asynchronous with halting faults: *safety never depends
on knowing who crashed*, and no failure detector can be reliable under
unbounded delays.  Operationally, though, a live deployment wants to know
which peers look dead -- supervisors alert on it, dashboards plot it, and
clients use it as a failover hint.  :class:`FailureDetectorCore` provides
exactly that as a pure state machine in the style of the other cores in
this package: events in (``boot``/``handle_timer``/``handle_message``/
``observe``), typed effects out (:class:`~repro.protocol.effects
.SendEffect` heartbeats, :class:`~repro.protocol.effects.SetTimerEffect`
re-arms, and :class:`~repro.protocol.effects.PeerSuspectedEffect` /
:class:`~repro.protocol.effects.PeerAliveEffect` on state transitions).
Because it performs no I/O it is testable deterministically by feeding it
explicit ``(event, now)`` sequences, and the *same* core instance drives
both the discrete-event simulator and the live asyncio runtime.

The detector is an eventually-perfect-style timeout detector (``<>P`` in
the Chandra-Toueg hierarchy): it may wrongly suspect a slow peer (and will,
under the asynchrony the paper allows), but it always un-suspects a peer it
hears from again.  *Any* delivered message counts as liveness evidence, not
just heartbeats -- runtimes feed data traffic through :meth:`observe` so a
busy channel never needs heartbeats to stay trusted.

Timers are namespaced under ``("fd", ...)`` so a runtime can multiplex the
detector's timers with a protocol core's on one timer table.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core.messages import Heartbeat
from .effects import (
    PeerAliveEffect,
    PeerConfirmedDeadEffect,
    PeerSuspectedEffect,
    ProtocolCore,
    SetTimerEffect,
)

__all__ = ["FailureDetectorConfig", "FailureDetectorCore"]

HEARTBEAT_TIMER = ("fd", "hb")
CHECK_TIMER = ("fd", "check")


@dataclass
class FailureDetectorConfig:
    """Detector tunables (milliseconds, like every core clock).

    ``suspect_after`` is the silence threshold: a peer not heard from for
    this long becomes suspected.  It should be several multiples of
    ``heartbeat_interval`` so a single dropped heartbeat never triggers a
    suspicion.  ``check_interval`` bounds detection latency; it defaults to
    the heartbeat interval.
    """

    heartbeat_interval: float = 25.0
    suspect_after: float = 150.0
    check_interval: float | None = None
    #: bound on the retained transition history (a flapping peer in a
    #: long-running cluster would otherwise grow it without limit); the
    #: newest ``max_transitions`` entries are kept, oldest evicted first
    max_transitions: int = 1024
    #: a peer continuously suspected for this long is *confirmed dead*
    #: (one ``PeerConfirmedDeadEffect``, one ``"dead"`` transition); None
    #: disables confirmation, keeping the detector purely advisory
    confirm_after: float | None = None
    #: hysteresis window after an alive transition during which the peer
    #: cannot be re-suspected, bounding the suspect->alive flap rate (and
    #: thereby the suspect->confirm rate) of a marginal peer to at most
    #: one cycle per ``suspect_after + suspect_hysteresis``
    suspect_hysteresis: float = 0.0

    def __post_init__(self):
        if self.heartbeat_interval <= 0 or self.suspect_after <= 0:
            raise ValueError("intervals must be positive")
        if self.max_transitions <= 0:
            raise ValueError("max_transitions must be positive")
        if self.suspect_after < 2 * self.heartbeat_interval:
            raise ValueError(
                "suspect_after must be at least two heartbeat intervals"
            )
        if self.confirm_after is not None and self.confirm_after <= 0:
            raise ValueError("confirm_after must be positive")
        if self.suspect_hysteresis < 0:
            raise ValueError("suspect_hysteresis must be >= 0")
        if self.check_interval is None:
            self.check_interval = self.heartbeat_interval
        elif self.check_interval <= 0:
            raise ValueError("check_interval must be positive")


class FailureDetectorCore(ProtocolCore):
    """Per-node heartbeat failure detector over a fixed peer set."""

    def __init__(
        self,
        node_id: int,
        peers: list[int],
        config: FailureDetectorConfig | None = None,
    ):
        if node_id in peers:
            raise ValueError("a node does not monitor itself")
        self.node_id = node_id
        self.peers = list(peers)
        self.config = config or FailureDetectorConfig()
        self.now = 0.0
        self.last_heard: dict[int, float] = {}
        self.suspected: set[int] = set()
        #: suspicion onset time per currently-suspected peer
        self.suspected_since: dict[int, float] = {}
        #: peers whose continuous suspicion crossed ``confirm_after``
        self.confirmed_dead: set[int] = set()
        #: end of the re-suspect suppression window per peer (hysteresis)
        self._suppress_until: dict[int, float] = {}
        #: (time, peer, "suspect" | "alive" | "dead") transition history,
        #: newest ``max_transitions`` entries only (bounded ring)
        self.transitions: deque[tuple[float, int, str]] = deque(
            maxlen=self.config.max_transitions
        )

    # ------------------------------------------------------------------

    def boot(self, now: float) -> list:
        """Start monitoring: every peer gets the benefit of the doubt."""
        self._begin(now)
        self.last_heard = {p: now for p in self.peers}
        self.suspected = set()
        self.suspected_since = {}
        self.confirmed_dead = set()
        self._suppress_until = {}
        self._send_heartbeats()
        self._emit(SetTimerEffect(HEARTBEAT_TIMER, self.config.heartbeat_interval))
        self._emit(SetTimerEffect(CHECK_TIMER, self.config.check_interval))
        return self._end()

    def handle_timer(self, timer_id: tuple, now: float) -> list:
        self._begin(now)
        if timer_id == HEARTBEAT_TIMER:
            self._send_heartbeats()
            self._emit(
                SetTimerEffect(HEARTBEAT_TIMER, self.config.heartbeat_interval)
            )
        elif timer_id == CHECK_TIMER:
            self._check()
            self._emit(SetTimerEffect(CHECK_TIMER, self.config.check_interval))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown detector timer {timer_id!r}")
        return self._end()

    def handle_message(self, src: int, msg: object, now: float) -> list:
        """A heartbeat arrived from ``src``."""
        if not isinstance(msg, Heartbeat):  # pragma: no cover - defensive
            raise TypeError(f"unexpected detector message {msg!r}")
        return self.observe(src, now)

    def observe(self, src: int, now: float) -> list:
        """Any delivered message from ``src`` is liveness evidence."""
        self._begin(now)
        if src in self.last_heard:
            self.last_heard[src] = now
            if src in self.suspected:
                self.suspected.discard(src)
                self.suspected_since.pop(src, None)
                self.confirmed_dead.discard(src)
                self._suppress_until[src] = now + self.config.suspect_hysteresis
                self.transitions.append((now, src, "alive"))
                self._emit(PeerAliveEffect(src))
        return self._end()

    # ------------------------------------------------------------------

    def forget(self, peer: int) -> None:
        """Stop monitoring a peer (membership retirement).

        Emits no transition: retirement is an administrative fact, not
        liveness evidence, and a ``dead`` record for a deliberately
        removed server would trigger auto-replace machinery upstream.
        """
        if peer in self.peers:
            self.peers.remove(peer)
        self.last_heard.pop(peer, None)
        self.suspected.discard(peer)
        self.suspected_since.pop(peer, None)
        self.confirmed_dead.discard(peer)
        self._suppress_until.pop(peer, None)

    def watch(self, peer: int, now: float) -> None:
        """Start monitoring a newly joined peer (benefit of the doubt)."""
        if peer == self.node_id or peer in self.peers:
            return
        self.peers.append(peer)
        self.last_heard[peer] = now

    def is_suspected(self, peer: int) -> bool:
        return peer in self.suspected

    def is_confirmed_dead(self, peer: int) -> bool:
        return peer in self.confirmed_dead

    def _send_heartbeats(self) -> None:
        for p in self.peers:
            hb = Heartbeat(self.node_id, self.now)
            hb.size_bits = 0.0  # operational overlay: free in the cost model
            self._emit_send(p, hb)

    def _check(self) -> None:
        threshold = self.now - self.config.suspect_after
        for p in self.peers:
            if p not in self.suspected and self.last_heard[p] < threshold:
                if self._suppress_until.get(p, -1.0) > self.now:
                    continue  # hysteresis: too soon after the last revival
                self.suspected.add(p)
                self.suspected_since[p] = self.now
                self.transitions.append((self.now, p, "suspect"))
                self._emit(PeerSuspectedEffect(p, self.last_heard[p]))
        confirm = self.config.confirm_after
        if confirm is None:
            return
        for p in sorted(self.suspected):
            if p in self.confirmed_dead:
                continue
            duration = self.now - self.suspected_since[p]
            if duration >= confirm:
                self.confirmed_dead.add(p)
                self.transitions.append((self.now, p, "dead"))
                self._emit(PeerConfirmedDeadEffect(p, duration))
