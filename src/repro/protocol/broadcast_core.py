"""Sans-I/O causal broadcast: the shared base of the baseline protocols.

All three baselines (full replication, partial replication, intra-object
erasure coding) propagate writes with the same vector-clock-predicated
causal broadcast CausalEC uses (the classic Ahamad et al. scheme [4]):
a write increments the home server's clock, is acked immediately (local
writes), and is shipped to every other server in an ``app`` message that is
applied only once its causal predecessors have been applied.

Subclasses decide what a server *stores* when a write is applied and how
reads are served.  Like :class:`~repro.protocol.server_core.ServerCore`,
the core performs no I/O: handlers consume ``(event, now)`` and emit
effects, so every baseline runs on the same runtime seam as CausalEC.
"""

from __future__ import annotations

import itertools

from ..core.messages import (
    App,
    CostModel,
    ReadRequest,
    ReadReturn,
    WriteAck,
    WriteRequest,
)
from ..core.state import InQueue, InQueueEntry
from ..core.tags import Tag, VectorClock, zero_tag
from .effects import ProtocolCore

__all__ = ["CausalBroadcastCore"]


class CausalBroadcastCore(ProtocolCore):
    """Base server core: local writes + causally ordered application."""

    def __init__(
        self,
        node_id: int,
        num_servers: int,
        num_objects: int,
        cost_model: CostModel | None = None,
    ):
        self.node_id = node_id
        self.num_servers = num_servers
        self.num_objects = num_objects
        self.cost = cost_model or CostModel()
        self.now = 0.0
        self.vc = VectorClock.zero(num_servers)
        self.zero = zero_tag(num_servers)
        self.inqueue = InQueue()
        self._others = [i for i in range(num_servers) if i != node_id]
        self._opid_counter = itertools.count()

    # ------------------------------------------------------------------

    def _sized(self, msg, n_values: float = 0.0, n_tags: float = 0.0):
        msg.size_bits = self.cost.size(n_values, n_tags)
        return msg

    def handle_message(self, src: int, msg: object, now: float) -> list:
        self._begin(now)
        if isinstance(msg, WriteRequest):
            self._on_write(src, msg)
        elif isinstance(msg, ReadRequest):
            self.serve_read(src, msg)
        elif isinstance(msg, App):
            self.inqueue.add(InQueueEntry(src, msg.obj, msg.value, msg.tag))
        else:
            self.on_protocol_message(src, msg)
        self._apply_inqueue()
        return self._end()

    def handle_timer(self, timer_id: tuple, now: float) -> list:
        raise ValueError(f"baseline servers arm no timers ({timer_id!r})")

    def _on_write(self, client: int, msg: WriteRequest) -> None:
        self.vc = self.vc.increment(self.node_id)
        tag = Tag(self.vc, client)
        self.apply_write(msg.obj, msg.value, tag, local=True)
        ack = WriteAck(msg.opid)
        ack.ts = self.vc
        ack.tag = tag
        self._emit_reply(client, self._sized(ack))
        for j in self._others:
            self._emit_send(j, self._sized(App(msg.obj, msg.value, tag), 1, 1))

    def _apply_inqueue(self) -> None:
        while True:
            e = self.inqueue.pop_applicable(self.vc)
            if e is None:
                return
            self.vc = self.vc.with_component(e.sender, e.tag.ts[e.sender])
            self.apply_write(e.obj, e.value, e.tag, local=False)

    def _read_return(self, client: int, opid, value, value_tag: Tag) -> None:
        msg = ReadReturn(opid, value)
        msg.ts = self.vc
        msg.value_tag = value_tag
        self._emit_reply(client, self._sized(msg, 1))

    # ------------------------------------------------------------------
    # subclass hooks

    def apply_write(self, obj: int, value, tag: Tag, local: bool) -> None:
        raise NotImplementedError

    def serve_read(self, client: int, msg: ReadRequest) -> None:
        raise NotImplementedError

    def on_protocol_message(self, src: int, msg: object) -> None:
        raise TypeError(f"unexpected message {msg!r}")
