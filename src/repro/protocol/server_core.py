"""The CausalEC server protocol as a sans-I/O state machine.

:class:`ServerCore` implements, for server ``s``, exactly the transitions of
the paper's pseudocode -- client messages (Algorithm 1), server messages
(Algorithm 2), and internal actions (Algorithm 3) -- as a *pure* state
machine: handlers consume ``(event, now)`` and emit typed effects
(:mod:`repro.protocol.effects`) instead of touching a scheduler or network.
The same core instance can therefore be driven by the discrete-event
simulator, by the bounded model checker, and by a real asyncio TCP cluster,
with one shared implementation of the protocol.

* **Client-message transitions** (Algorithm 1): local writes that increment
  the vector clock, append to the history list, ack immediately and
  broadcast ``app``; reads served locally from the history list or by local
  decoding, otherwise registered in ``ReadL`` with ``val_inq`` inquiries.
* **Server-message transitions** (Algorithm 2): ``app``/``del`` bookkeeping;
  ``val_inq`` answered immediately (wait-free) with either an uncoded
  ``val_resp`` or a re-encoded ``val_resp_encoded``; responses folded into
  pending reads, with decoding once the collected symbols contain a recovery
  set.
* **Internal actions** (Algorithm 3): ``Apply_InQueue`` (causal application
  of remote writes), ``Encoding`` (re-encode the stored codeword symbol to
  newer versions, triggering *internal reads* when the currently-encoded
  version is no longer in the history list), and ``Garbage_Collection``
  (watermark-driven deletion from history lists).

Deviations from the pseudocode are deliberate, documented in DESIGN.md, and
behaviour-preserving: the zero-tag convention, re-encoding with the sender's
Gamma in the ``val_resp_encoded`` handler, first-applicable InQueue scanning,
and del-broadcast deduplication.

Timers are named tuples interpreted by :meth:`ServerCore.handle_timer`:
``("gc",)`` for the periodic Garbage_Collection action and
``("readto", opid, remaining)`` for the recovery-set read-policy fallback
broadcast.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field as dc_field

import numpy as np

from ..ec.code import LinearCode
from ..core.messages import (
    App,
    CostModel,
    Del,
    MigrateInstall,
    ReadRequest,
    ReadReturn,
    ValInq,
    ValResp,
    ValRespEncoded,
    ViewInstall,
    ViewInstallAck,
    WriteAck,
    WriteRequest,
)
from ..core.state import (
    Codeword,
    DeletionList,
    HistoryList,
    InQueue,
    InQueueEntry,
    ReadEntry,
    ReadList,
)
from ..core.tags import LOCALHOST, Tag, VectorClock, zero_tag
from .effects import (
    CancelTimerEffect,
    LogEffect,
    PersistEffect,
    ProtocolCore,
    SetTimerEffect,
)

__all__ = ["ServerCore", "ServerConfig", "ServerStats"]


@dataclass
class ServerConfig:
    """Tunables for a CausalEC server.

    * ``gc_interval`` -- period (ms) of the Garbage_Collection internal
      action; ``None`` runs GC eagerly after every message (useful in
      tests).  Encoding and Apply_InQueue always run eagerly; the paper
      places no timing constraints on internal actions beyond fairness.
    * ``read_policy`` -- ``"broadcast"`` sends ``val_inq`` to every other
      node (Algorithm 1); ``"recovery_set"`` implements the Sec. 4.2
      optimisation: inquire the cheapest recovery set first and broadcast
      only after ``read_timeout`` ms.
    * ``rtt`` -- optional round-trip-time matrix used by ``recovery_set``
      to pick the nearest recovery set.
    * ``del_leader`` -- the other half of the Sec. 4.2 / Appendix G
      low-cost variant: when set to a server id, ``del`` messages are sent
      to that leader, which forwards them to everyone (O(1) del sends per
      writer instead of O(N)).  Convergence liveness (Theorem 4.5) then
      additionally requires the leader to stay up; safety is unaffected.
    * ``decision_log`` -- emit :class:`~repro.protocol.effects.LogEffect`
      records for protocol decisions (write/apply order, read returns, GC
      deletions); used to assert that two runtimes drive the shared core
      identically.
    """

    gc_interval: float | None = None
    read_policy: str = "broadcast"
    read_timeout: float = 500.0
    rtt: np.ndarray | None = None
    del_leader: int | None = None
    record_visibility: bool = False
    cost_model: CostModel = dc_field(default_factory=CostModel)
    decision_log: bool = False


@dataclass
class ServerStats:
    """Operation and internal-action counters for one server."""

    writes: int = 0
    reads: int = 0
    local_reads: int = 0
    decoded_local_reads: int = 0
    remote_reads: int = 0
    internal_reads: int = 0
    reencodings: int = 0
    gc_runs: int = 0
    gc_deletions: int = 0
    error1_events: int = 0
    error2_events: int = 0
    duplicate_requests: int = 0
    parked_requests: int = 0
    restarts: int = 0
    persists: int = 0
    #: codeword-seal mismatches that led to a quarantine (bit rot detected
    #: by a scrub round or by a guard on a path about to use the symbol)
    integrity_quarantines: int = 0
    #: read responses discarded because the responder answered from a
    #: crash-recovered state behind the requested cut (not a protocol
    #: error: anti-entropy will catch the responder up)
    stale_read_responses: int = 0


def _tag_key(tag: Tag) -> tuple:
    return (tag.ts.components, tag.client_id)


class ServerCore(ProtocolCore):
    """One CausalEC server (server index == code position), sans I/O."""

    def __init__(
        self,
        node_id: int,
        code: LinearCode,
        config: ServerConfig | None = None,
        clock_dim: int | None = None,
    ):
        if not 0 <= node_id < code.N:
            raise ValueError("server id must index a code position")
        self.node_id = node_id
        self.code = code
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        self.now = 0.0

        # ``clock_dim`` decouples the vector-clock dimension from code.N
        # for dynamic membership: tags minted by the founding members are
        # length-``clock_dim`` forever (VectorClock comparisons are
        # componentwise, so mixing dimensions would corrupt the order).  A
        # joiner added beyond the founding set runs with the *founding*
        # dimension and is non-minting: it serves reads, applies, repairs
        # and stores redundancy, but no client write is ever homed on it.
        n, k = (clock_dim if clock_dim is not None else code.N), code.K
        if not 1 <= n <= code.N:
            raise ValueError("clock_dim must be in 1..code.N")
        self.clock_dim = n
        self._zero = zero_tag(n)
        self.vc = VectorClock.zero(n)
        self.inqueue = InQueue()
        self.L: dict[int, HistoryList] = {}
        self.DelL: dict[int, DeletionList] = {}
        self.readl = ReadList()
        self.tmax: dict[int, Tag] = {}
        for x in range(k):
            hist = HistoryList(self._zero)
            hist.add(self._zero, code.zero_value())  # Fig. 3 initial state
            self.L[x] = hist
            self.DelL[x] = DeletionList()
            self.tmax[x] = self._zero
        self.M = Codeword(
            value=code.zero_symbol(node_id),
            tagvec={x: self._zero for x in range(k)},
        )
        self.objects = code.objects_at(node_id)
        #: membership epoch: bumped by committed reconfigurations.
        #: Durable, and deliberately NOT reset by :meth:`wipe_volatile` --
        #: a scrub quarantine must not fence a server out of its own
        #: membership.
        self.cfg_epoch = 0
        #: permanently removed server ids (retired members), as a sorted
        #: tuple so it wire-encodes into checkpoints.  Retired servers are
        #: excluded from broadcast fanout, read inquiries and the GC
        #: watermark agreement -- otherwise every watermark would wait
        #: forever on dels from a server that no longer exists.
        self.cfg_retired: tuple[int, ...] = ()
        self._refresh_membership()
        self._opid_seq = 0  # plain int: fork/deepcopy-deterministic
        # del-broadcast deduplication (see DESIGN.md)
        self._del_sent_storing: dict[int, Tag] = {x: self._zero for x in range(k)}
        self._del_sent_all: dict[int, Tag] = {x: self._zero for x in range(k)}
        #: pending-read timeout bookkeeping: opid -> armed timer id
        self._read_timeouts: dict[object, tuple] = {}
        #: per-client request dedup: client id -> (last write opid, cached
        #: ack).  Client retries (timeout + retransmit) may deliver the same
        #: WriteRequest twice; re-acking from the cache keeps writes
        #: exactly-once even across a crash-restart (the table is part of
        #: the durable checkpoint).
        self._client_sessions: dict[int, tuple[object, WriteAck]] = {}
        #: (time, obj, tag) triples recorded when a version becomes locally
        #: visible (write receipt or causal application); enables visibility
        #: latency measurement.  Populated only with record_visibility.
        self.visibility_log: list[tuple[float, int, Tag]] = []
        #: requests from failed-over clients whose session floor this
        #: server's clock does not yet dominate, parked until it does.
        #: Volatile on purpose: a crash drops them and the client's retry
        #: re-delivers.
        self._parked: list[tuple[int, object]] = []
        #: ring epoch (sharded deployments): highest view version adopted
        #: via ViewInstall or piggybacked on a request.  Durable -- a
        #: restarted server resumes in the epoch it last acknowledged.
        self.view = 0
        self.reseal_codeword()

    # ------------------------------------------------------------------
    # codeword integrity seal (bit-rot detection)

    #: class-level defaults so cores forked by structural copy (the model
    #: checker bypasses ``__init__``) and pre-seal checkpoints stay valid:
    #: an absent seal means "unsealed", which verifies trivially
    _m_seal: bytes | None = None
    _seal_checked = True

    def _codeword_digest(self) -> bytes:
        """blake2b over the stored symbol bytes and its tag vector."""
        h = hashlib.blake2b(digest_size=16)
        arr = np.ascontiguousarray(self.M.value)
        if arr.size:  # zero-size views cannot be cast
            h.update(memoryview(arr).cast("B"))
        h.update(
            repr(
                sorted(
                    (x, t.ts.components, t.client_id)
                    for x, t in self.M.tagvec.items()
                )
            ).encode()
        )
        return h.digest()

    def reseal_codeword(self) -> None:
        """Recompute the integrity seal after a *legitimate* mutation of M.

        Called only where the protocol itself rewrites the codeword
        (init, crash-wipe, checkpoint restore, the Encoding action,
        quarantine); anything that changes M without resealing -- bit rot
        above all -- fails :meth:`verify_codeword` at the next guard or
        scrub round.
        """
        self._m_seal = self._codeword_digest()

    def verify_codeword(self) -> bool:
        """Does the stored codeword still match its seal?"""
        seal = getattr(self, "_m_seal", None)
        return seal is None or seal == self._codeword_digest()

    def _guard_codeword(self) -> None:
        """Verify the seal before the symbol is used or mutated.

        At most one verification per handled event (``_begin`` resets the
        latch).  On mismatch the symbol is quarantined *before* it can be
        served to a reader, folded over, or resealed -- corruption is
        never laundered into valid-looking state.
        """
        if self._seal_checked:
            return
        self._seal_checked = True
        if not self.verify_codeword():
            self._quarantine_corrupt()

    def _quarantine_corrupt(self) -> dict[int, Tag]:
        """Discard a corrupt codeword: detected rot is a storage crash.

        Zeroing only the symbol would not be safe: the vector clock would
        keep claiming writes whose folded data just vanished, so any read
        served from the remaining local state would be a causal regression
        (the response ``ts`` dominates writes the reply does not reflect),
        and the read path's re-encode machinery cannot rebuild versions at
        the GC watermark -- their plain values are gone from every history
        list, and only the repair overlay's recovery-set symbol pooling
        can re-derive them.  Quarantine therefore wipes volatile state
        entirely, landing on the well-tested crash-without-durability
        path: the server rejoins from the initial state, session floors
        park clients that know more (no session ever regresses), and
        anti-entropy re-installs the lost writes and re-encodes the
        symbol from any live recovery set of peers.
        """
        old = dict(self.M.tagvec)
        self.stats.integrity_quarantines += 1
        self.wipe_volatile()
        self._log(
            "scrub-quarantine",
            sorted(
                (x, _tag_key(t)) for x, t in old.items() if t != self._zero
            ),
        )
        return old

    def corrupt_codeword(self, seed: int = 0, flips: int = 1) -> None:
        """Chaos helper: flip seeded bits in the stored symbol (bit rot).

        The damage is a pure function of ``(seed, node_id, flips)`` so
        fault schedules replay identically.
        """
        arr = np.array(self.M.value, copy=True)
        raw = arr.view(np.uint8).reshape(-1)
        if not raw.size:
            return
        rng = np.random.default_rng((seed, 0x5C4B, self.node_id))
        for _ in range(flips):
            pos = int(rng.integers(0, raw.size))
            raw[pos] ^= np.uint8(1 << int(rng.integers(0, 8)))
        self.M.value = arr

    # ------------------------------------------------------------------
    # helpers

    def _lookup(self, obj: int, tag: Tag) -> np.ndarray | None:
        """Value for ``tag`` in L[obj]; the zero tag always resolves to 0.

        The zero tag denotes the initial (all-zero) object value, which the
        initial history list carries explicitly (Fig. 3); treating it as
        always resolvable keeps the pseudocode's ``tag != 0`` case analysis
        uniform after garbage collection removes the initial entry.
        """
        if tag == self._zero:
            return self.code.zero_value()
        return self.L[obj].get(tag)

    def _next_opid(self) -> tuple:
        self._opid_seq += 1
        return ("srv", self.node_id, self._opid_seq)

    def _sized(self, msg, n_values: float = 0.0, n_tags: float = 0.0):
        msg.size_bits = self.config.cost_model.size(n_values, n_tags)
        return msg

    def _storing_nodes(self, obj: int) -> list[int]:
        return [
            i
            for i in range(self.code.N)
            if obj in self.code.objects_at(i) and i not in self.cfg_retired
        ]

    def _active_nodes(self) -> list[int]:
        """Member ids of the current configuration (self included)."""
        return [i for i in range(self.code.N) if i not in self.cfg_retired]

    def _refresh_membership(self) -> None:
        """Recompute the cached peer fanout from code + retirements."""
        self._others = [
            i
            for i in range(self.code.N)
            if i != self.node_id and i not in self.cfg_retired
        ]

    # ------------------------------------------------------------------
    # dynamic membership (driven by the reconfiguration overlay)

    def adopt_code(self, new_code: LinearCode) -> None:
        """Install an extended code: the same rows plus joined servers.

        Called when a reconfiguration commit adds members.  The first
        ``self.code.N`` coefficient matrices must be unchanged (existing
        codeword symbols stay valid coordinates of the extended code);
        only membership-derived caches are refreshed -- clocks, tags,
        history lists and the local symbol are untouched.
        """
        if new_code.K != self.code.K or new_code.value_len != self.code.value_len:
            raise ValueError("extended code must keep K and value_len")
        if new_code.N < self.code.N:
            raise ValueError("adopt_code cannot shrink the code")
        for s in range(self.code.N):
            if not np.array_equal(new_code.matrices[s], self.code.matrices[s]):
                raise ValueError(f"extended code changes server {s}'s rows")
        self.code = new_code
        self.objects = new_code.objects_at(self.node_id)
        self._refresh_membership()

    def set_retired(self, retired) -> None:
        """Mark ``retired`` server ids as permanently removed."""
        self.cfg_retired = tuple(sorted(set(int(i) for i in retired)))
        if self.node_id in self.cfg_retired:
            raise ValueError("a server cannot retire itself and keep running")
        self._refresh_membership()

    def _log(self, *entry) -> None:
        if self.config.decision_log:
            self._emit(LogEffect(entry))

    # ------------------------------------------------------------------
    # runtime-facing contract

    def _begin(self, now: float) -> None:
        super()._begin(now)
        # one codeword-seal verification per handled event, on demand
        self._seal_checked = False

    def boot(self, now: float = 0.0) -> list:
        """Effects to perform when the server process starts fresh."""
        self._begin(now)
        if self.config.gc_interval is not None:
            self._emit(SetTimerEffect(("gc",), self.config.gc_interval))
        return self._end()

    def handle_message(self, src: int, msg: object, now: float) -> list:
        self._begin(now)
        if isinstance(msg, WriteRequest):
            self._on_write(src, msg)
        elif isinstance(msg, ReadRequest):
            self._on_read(src, msg)
        elif isinstance(msg, App):
            # Covered entries (``ts[src] <= vc[src]``) can never satisfy the
            # applicability predicate again -- vc components are monotone --
            # so queueing them would hold transient state above zero forever.
            # Algorithm 3 assumes exactly-once channels; here a restart that
            # lost its ARQ dedup state (e.g. a corrupt checkpoint) makes
            # peers re-deliver old ``app`` messages after anti-entropy has
            # already merged a clock past them.
            if msg.tag.ts[src] > self.vc[src]:
                self.inqueue.add(InQueueEntry(src, msg.obj, msg.value, msg.tag))
        elif isinstance(msg, Del):
            self._on_del(src, msg)
        elif isinstance(msg, ValInq):
            self._on_val_inq(src, msg)
        elif isinstance(msg, ValResp):
            self._on_val_resp(src, msg)
        elif isinstance(msg, ValRespEncoded):
            self._on_val_resp_encoded(src, msg)
        elif isinstance(msg, ViewInstall):
            self._on_view_install(src, msg)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message {msg!r}")
        self._internal_actions()
        self._drain_parked()
        self._emit(PersistEffect())
        return self._end()

    def handle_timer(self, timer_id: tuple, now: float) -> list:
        self._begin(now)
        if timer_id[0] == "gc":
            self._gc_tick()
        elif timer_id[0] == "readto":
            self._read_timeout(timer_id[1], list(timer_id[2]))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown timer {timer_id!r}")
        return self._end()

    def after_restart(self, now: float) -> list:
        """Effects to perform after durable state has been reinstalled.

        GC timers are re-armed (they died with the old incarnation) and
        pending remote reads re-inquire: responses to the pre-crash
        inquiries may have been consumed by the dead incarnation, so ask
        everyone again.
        """
        self._begin(now)
        if self.config.gc_interval is not None:
            self._emit(SetTimerEffect(("gc",), self.config.gc_interval))
        for entry in list(self.readl.entries()):
            for j in self._others:
                self._emit_send(
                    j,
                    self._sized(
                        ValInq(
                            entry.client_id, entry.opid, entry.obj,
                            dict(entry.tagvec),
                        ),
                        0,
                        self.code.K,
                    ),
                )
        self._internal_actions()
        self._emit(PersistEffect())
        return self._end()

    def wipe_volatile(self) -> None:
        """Crash: reset in-memory protocol state to the initial state.

        Called by runtimes that model durability, so recovery demonstrably
        comes from stable storage, not from process memory.  Membership
        state (``cfg_epoch``, ``cfg_retired``) survives on purpose: a
        quarantine is a storage crash, not an eviction.
        """
        code, n, k = self.code, self.clock_dim, self.code.K
        self.vc = VectorClock.zero(n)
        self.inqueue = InQueue()
        self.L = {}
        self.DelL = {}
        self.readl = ReadList()
        self.tmax = {}
        for x in range(k):
            hist = HistoryList(self._zero)
            hist.add(self._zero, code.zero_value())
            self.L[x] = hist
            self.DelL[x] = DeletionList()
            self.tmax[x] = self._zero
        self.M = Codeword(
            value=code.zero_symbol(self.node_id),
            tagvec={x: self._zero for x in range(k)},
        )
        self._opid_seq = 0
        self._del_sent_storing = {x: self._zero for x in range(k)}
        self._del_sent_all = {x: self._zero for x in range(k)}
        self._client_sessions = {}
        self._read_timeouts = {}
        self._parked = []
        self.view = 0
        self.reseal_codeword()

    # ------------------------------------------------------------------
    # anti-entropy (the repair overlay's window into protocol state)

    def repair_known_tag(self, x: int) -> Tag:
        """Highest tag this server holds for ``x``: history list or symbol."""
        h = self.L[x].highest_tag
        m = self.M.tagvec[x]
        return h if h > m else m

    def absorb_repair(
        self,
        installs: list[tuple[int, Tag, np.ndarray]],
        dels: dict[int, dict[int, Tag]],
        peer_vc: VectorClock | None,
        peer_tags: dict[int, Tag],
        now: float,
    ) -> list:
        """Install anti-entropy results pulled from a peer; return effects.

        Called by :class:`~repro.protocol.repair_core.RepairCore` after a
        repair response.  Three monotone joins, none of which mints tags or
        acks clients (the safety argument is in PROTOCOL.md):

        * ``installs`` -- (object, tag, value) triples land in the history
          list; the regular Encoding internal action then folds them into
          the codeword symbol and emits the usual ``del`` notices.
        * ``dels`` -- per-object per-node deletion maxima, replaying ``del``
          messages lost to the fault that made repair necessary; without
          them garbage collection would stall forever on both sides.
        * ``peer_vc`` -- adopted only once our per-object knowledge covers
          every tag the peer advertised (``peer_tags``): the merged state
          is then a causally-closed superset of the peer's, so claiming its
          clock is sound.  InQueue entries the merged clock covers are
          purged -- they are permanently inapplicable and already subsumed.
        """
        self._begin(now)
        for x, tag, value in installs:
            if tag > self.repair_known_tag(x) and tag not in self.L[x]:
                self.L[x].add(tag, value)
                self._log("repair-install", x, _tag_key(tag))
                if self.config.record_visibility:
                    self.visibility_log.append((self.now, x, tag))
        for x, by_node in dels.items():
            for node, tag in by_node.items():
                self.DelL[x].add(tag, node)
        if peer_vc is not None and not peer_vc.leq(self.vc):
            if all(self.repair_known_tag(x) >= t for x, t in peer_tags.items()):
                self.vc = self.vc.merge(peer_vc)
                self.inqueue.purge_covered(self.vc)
        self._internal_actions()
        self._drain_parked()
        self._emit(PersistEffect())
        return self._end()

    def scrub_codeword(self, now: float) -> tuple[bool, list]:
        """One scrub pass over the stored symbol (the scrub overlay's
        window into protocol state, like :meth:`absorb_repair` is the
        repair overlay's).

        Verifies the integrity seal; on mismatch quarantines the symbol
        and immediately runs the internal actions so every version the
        history list still holds is refolded in the same step.  Returns
        ``(was_clean, effects)``.
        """
        self._begin(now)
        self._seal_checked = True
        clean = self.verify_codeword()
        if not clean:
            self._quarantine_corrupt()
            self._internal_actions()
            self._emit(PersistEffect())
        return clean, self._end()

    # ------------------------------------------------------------------
    # Algorithm 1: client messages

    def _on_write(self, client: int, msg: WriteRequest) -> None:
        self._adopt_view(msg)
        cached = self._client_sessions.get(client)
        if cached is not None and cached[0] == msg.opid:
            # retried request whose effect is already applied: re-ack only
            self.stats.duplicate_requests += 1
            self._emit_reply(client, cached[1])
            return
        if self._park_if_behind(client, msg):
            return
        self.stats.writes += 1
        self.vc = self.vc.increment(self.node_id)
        tag = Tag(self.vc, client)
        self.L[msg.obj].add(tag, msg.value)
        kind = "migrate" if isinstance(msg, MigrateInstall) else "write"
        self._log(kind, msg.obj, _tag_key(tag), msg.opid, client)
        if self.config.record_visibility:
            self.visibility_log.append((self.now, msg.obj, tag))
        ack = WriteAck(msg.opid)
        ack.ts = self.vc
        ack.tag = tag
        self._client_sessions[client] = (msg.opid, ack)
        self._emit_reply(client, self._sized(ack))
        for j in self._others:
            self._emit_send(j, self._sized(App(msg.obj, msg.value, tag), 1, 1))
        # clear pending external reads to this object (Alg. 1 lines 7-9)
        for entry in self.readl.for_object(msg.obj):
            if entry.client_id != LOCALHOST:
                self._respond_read(entry, msg.value, tag)

    def _on_read(self, client: int, msg: ReadRequest) -> None:
        self._guard_codeword()  # never decode a reply from a rotted symbol
        self._adopt_view(msg)
        if self.readl.get(msg.opid) is not None:
            # retried request already pending: inquiries are in flight
            self.stats.duplicate_requests += 1
            return
        if self._park_if_behind(client, msg):
            return
        self.stats.reads += 1
        obj = msg.obj
        hist = self.L[obj]
        if len(hist) and hist.highest_tag >= self.M.tagvec[obj]:
            self.stats.local_reads += 1
            value = hist.highest_value()
            self._send_read_return(client, msg.opid, value, hist.highest_tag, obj)
            return
        if self.code.is_recovery_set((self.node_id,), obj):
            self.stats.decoded_local_reads += 1
            value = self.code.decode(obj, {self.node_id: self.M.value})
            self._send_read_return(client, msg.opid, value, self.M.tagvec[obj], obj)
            return
        self.stats.remote_reads += 1
        self._register_read(client, msg.opid, obj)

    def _adopt_view(self, msg) -> None:
        """Monotonically adopt a newer ring epoch piggybacked on a request
        (covers servers that missed the ViewInstall broadcast, e.g. ones
        crashed during the view change)."""
        v = getattr(msg, "view", None)
        if v is not None and v > self.view:
            self.view = v

    def _on_view_install(self, src: int, msg: ViewInstall) -> None:
        """Adopt ring epoch ``version`` and ack with this clock.

        Installation is idempotent and monotone; the coordinator
        broadcasts it to every server of every shard before migrating the
        first key, so by cutover the whole fleet agrees on the epoch."""
        if msg.version > self.view:
            self.view = msg.version
            self._log("view-install", msg.version)
        ack = ViewInstallAck(msg.version)
        ack.ts = self.vc
        self._emit_reply(src, self._sized(ack, 0, 1))

    def _park_if_behind(self, client: int, msg) -> bool:
        """Defer a request whose session floor this clock does not cover.

        A client that failed over carries the merge of every response
        ``ts`` its session has observed.  Serving it from a clock that
        does not dominate that floor could regress the session (stale
        reads of its own writes, write tags ordered before ones it has
        already seen).  Park the request; causal application of the
        missing writes advances ``vc`` and releases it.
        """
        floor = getattr(msg, "session_ts", None)
        if floor is None or floor.leq(self.vc):
            return False
        if any(m.opid == msg.opid for _, m in self._parked):
            # client retry of an already-parked request
            self.stats.duplicate_requests += 1
            return True
        self.stats.parked_requests += 1
        self._parked.append((client, msg))
        return True

    def _drain_parked(self) -> None:
        """Re-dispatch parked requests whose floor ``vc`` now dominates.

        Runs to fixpoint: serving a parked write increments ``vc`` and may
        release further parked requests.
        """
        progress = True
        while progress and self._parked:
            progress = False
            for i, (client, msg) in enumerate(self._parked):
                if msg.session_ts.leq(self.vc):
                    del self._parked[i]
                    if isinstance(msg, WriteRequest):
                        self._on_write(client, msg)
                    else:
                        self._on_read(client, msg)
                    self._internal_actions()
                    progress = True
                    break

    def _register_read(self, client_id: int, opid, obj: int) -> None:
        """Register a pending read in ReadL and send inquiries (line 16-18)."""
        entry = ReadEntry(
            client_id=client_id,
            opid=opid,
            obj=obj,
            tagvec=dict(self.M.tagvec),
            symbols={self.node_id: np.array(self.M.value, copy=True)},
            registered_at=self.now,
        )
        self.readl.add(entry)
        targets = self._inq_targets(obj)
        for j in targets:
            self._emit_send(
                j,
                self._sized(
                    ValInq(client_id, opid, obj, dict(self.M.tagvec)),
                    0,
                    self.code.K,
                ),
            )
        if self.config.read_policy == "recovery_set" and set(targets) != set(
            self._others
        ):
            remaining = [j for j in self._others if j not in targets]
            timer_id = ("readto", opid, tuple(remaining))
            self._emit(SetTimerEffect(timer_id, self.config.read_timeout))
            self._read_timeouts[opid] = timer_id

    def _inq_targets(self, obj: int) -> list[int]:
        """Nodes to inquire first: everyone, or the cheapest recovery set."""
        if self.config.read_policy != "recovery_set":
            return list(self._others)
        best: list[int] | None = None
        best_cost = float("inf")
        for rset in self.code.minimal_recovery_sets(obj):
            if any(j in self.cfg_retired for j in rset):
                continue  # a retired member can never answer
            others = [j for j in rset if j != self.node_id]
            if not others:
                continue
            if self.config.rtt is not None:
                cost = max(float(self.config.rtt[self.node_id, j]) for j in others)
            else:
                cost = float(len(others))
            if cost < best_cost:
                best, best_cost = others, cost
        return best if best is not None else list(self._others)

    def _read_timeout(self, opid, remaining: list[int]) -> None:
        entry = self.readl.get(opid)
        self._read_timeouts.pop(opid, None)
        if entry is None:
            return
        for j in remaining:
            self._emit_send(
                j,
                self._sized(
                    ValInq(entry.client_id, opid, entry.obj, dict(entry.tagvec)),
                    0,
                    self.code.K,
                ),
            )

    def _send_read_return(
        self, client: int, opid, value, value_tag: Tag, obj: int
    ) -> None:
        msg = ReadReturn(opid, value)
        msg.ts = self.vc
        msg.value_tag = value_tag
        # entry[1] (repr) keys per-channel comparisons; the trailing fields
        # let the online auditor attribute the read (opid, object, client)
        self._log("read-return", repr(opid), _tag_key(value_tag), opid, obj, client)
        self._emit_reply(client, self._sized(msg, 1))

    def _respond_read(
        self, entry: ReadEntry, value: np.ndarray, value_tag: Tag | None = None
    ) -> None:
        """Complete a pending read: return to the client or feed the
        internal (localhost) read, then clear the ReadL entry."""
        if value_tag is None:
            value_tag = entry.tagvec[entry.obj]
        if entry.client_id == LOCALHOST:
            self.L[entry.obj].add(entry.tagvec[entry.obj], value)
        else:
            self._send_read_return(
                entry.client_id, entry.opid, value, value_tag, entry.obj
            )
        self.readl.remove(entry.opid)
        timer_id = self._read_timeouts.pop(entry.opid, None)
        if timer_id is not None:
            self._emit(CancelTimerEffect(timer_id))

    # ------------------------------------------------------------------
    # Algorithm 2: server messages

    def _on_val_inq(self, src: int, msg: ValInq) -> None:
        self._guard_codeword()  # never re-encode a response from rotted state
        wanted = msg.wanted_tagvec
        value = self._lookup(msg.obj, wanted[msg.obj])
        if value is not None:
            self._emit_send(
                src,
                self._sized(
                    ValResp(msg.obj, value, msg.client_id, msg.opid, dict(wanted)),
                    1,
                    self.code.K,
                ),
            )
            return
        # re-encode M towards the wanted tag vector where the history allows;
        # all per-object deltas are folded in with one batched kernel call
        tagvec = dict(self.M.tagvec)
        s = self.node_id
        updates = []
        for x in sorted(self.objects):
            if tagvec[x] == wanted[x]:
                continue
            current = self._lookup(x, tagvec[x])
            if current is None:
                # case (iii): cannot cancel our version; leave it encoded --
                # the inquirer holds (or will hold) this version locally.
                continue
            target = self._lookup(x, wanted[x])
            if target is not None:
                updates.append((x, current, target))
                tagvec[x] = wanted[x]
            else:
                updates.append((x, current, self.code.zero_value()))
                tagvec[x] = self._zero
        symbol = self.code.reencode_many(s, self.M.value, updates)
        self._emit_send(
            src,
            self._sized(
                ValRespEncoded(
                    symbol, tagvec, msg.client_id, msg.opid, msg.obj, dict(wanted)
                ),
                self.code.symbols_at(s),
                2 * self.code.K,
            ),
        )

    def _on_val_resp_encoded(self, src: int, msg: ValRespEncoded) -> None:
        entry = self.readl.get(msg.opid)
        if entry is None:
            return
        requested = entry.tagvec
        ok = True
        updates = []
        for x in sorted(self.code.objects_at(src)):
            if requested[x] == msg.tagvec[x]:
                continue
            # swap the sender's encoded version of x for the requested one
            current = self._lookup(x, msg.tagvec[x])
            target = self._lookup(x, requested[x])
            if (current is None or target is None) and (
                msg.tagvec[x] < requested[x]
            ):
                # the responder answered from a crash-recovered state
                # *behind* the requested cut (wipe, quarantine, corrupt
                # checkpoint) and the plain values needed to re-align its
                # symbol are long folded away.  Lemmas D.1/D.2 only cover
                # crash-free runs; this is a stale response, not a
                # protocol error -- drop the symbol and let the remaining
                # responders (or the repaired peer, on retry) serve the
                # read.
                self.stats.stale_read_responses += 1
                self._log("read-stale-resp", src, x)
                return
            if current is None:
                self.stats.error1_events += 1  # Lemma D.1 says: unreachable
                ok = False
                break
            if target is None:
                self.stats.error2_events += 1  # Lemma D.2 says: unreachable
                ok = False
                break
            updates.append((x, current, target))
        if not ok:
            return
        modified = self.code.reencode_many(src, msg.symbol, updates)
        entry.symbols[src] = modified
        value = self.code.decode(entry.obj, entry.symbols)
        if value is not None:
            self._respond_read(entry, value)

    def _on_val_resp(self, src: int, msg: ValResp) -> None:
        entry = self.readl.get(msg.opid)
        if entry is None:
            return
        self._respond_read(entry, msg.value)

    # ------------------------------------------------------------------
    # Algorithm 3: internal actions

    def _internal_actions(self) -> None:
        self._apply_inqueue()
        self._encoding()
        if self.config.gc_interval is None:
            self._garbage_collection()

    def _gc_tick(self) -> None:
        self._garbage_collection()
        # encoding may be enabled by GC-driven del exchange
        self._encoding()
        self._emit(SetTimerEffect(("gc",), self.config.gc_interval))
        self._emit(PersistEffect())

    def _apply_inqueue(self) -> None:
        """Apply_InQueue: causally apply pending remote writes."""
        while True:
            e = self.inqueue.pop_applicable(self.vc)
            if e is None:
                return
            self.vc = self.vc.with_component(e.sender, e.tag.ts[e.sender])
            self.L[e.obj].add(e.tag, e.value)
            self._log("apply", e.obj, _tag_key(e.tag))
            if self.config.record_visibility:
                self.visibility_log.append((self.now, e.obj, e.tag))
            for entry in self.readl.for_object(e.obj):
                if entry.client_id != LOCALHOST and entry.tagvec[e.obj] <= e.tag:
                    self._respond_read(entry, e.value, e.tag)
                elif entry.client_id == LOCALHOST and entry.tagvec[e.obj] == e.tag:
                    # the wanted version just landed in L; the internal read
                    # is no longer needed (Alg. 3 lines 11-12)
                    self.readl.remove(entry.opid)

    def _encoding(self) -> None:
        """Encoding: fold newer history-list versions into M.

        All advanceable objects found in one pass are folded into the
        codeword with a **single** batched
        :meth:`~repro.ec.code.LinearCode.reencode_many` call (one field
        matmul instead of one per object; the per-object deltas commute,
        so the result is bit-identical to chaining per-object ``reencode``
        steps).  Del notices and internal reads are then emitted in object
        order against the fully-updated codeword, exactly the effects the
        per-object loop produced.

        The integrity seal is checked *before* mutating M (so a rotted
        symbol is quarantined rather than laundered into a fresh seal)
        and renewed once at the end when anything changed.
        """
        self._guard_codeword()
        dirty = False
        progress = True
        while progress:
            progress = False
            updates: list[tuple] = []
            advanced: dict[int, object] = {}  # x -> new tag, insertion = sorted
            blocked: list[int] = []
            for x in sorted(self.objects):
                hist = self.L[x]
                highest = hist.highest_tag
                if not (len(hist) and highest > self.M.tagvec[x]):
                    continue
                current = self._lookup(x, self.M.tagvec[x])
                if current is None:
                    blocked.append(x)
                    continue
                updates.append((x, current, hist.get(highest)))
                advanced[x] = highest
            if updates:
                self.M.value = self.code.reencode_many(
                    self.node_id, self.M.value, updates
                )
                progress = True
                dirty = True
            for x, highest in advanced.items():
                self.M.tagvec[x] = highest
                self.stats.reencodings += 1
                self.DelL[x].add(highest, self.node_id)
                self._send_del_storing(x, highest)
            for x in blocked:
                # the encoded version left the history list: issue an
                # internal read to recover it
                if not self.readl.localhost_entry_for(
                    x, self.M.tagvec[x], LOCALHOST
                ):
                    self.stats.internal_reads += 1
                    self._register_read(LOCALHOST, self._next_opid(), x)
            for x in range(self.code.K):
                if x not in self.objects:
                    if self._advance_unstored_tag(x):
                        progress = True
                        dirty = True
        if dirty:
            self.reseal_codeword()

    def _advance_unstored_tag(self, x: int) -> bool:
        """Bookkeeping for X not in X_s (Alg. 3 lines 26-32)."""
        hist = self.L[x]
        if not (len(hist) and hist.highest_tag > self.M.tagvec[x]):
            return False
        storing = self._storing_nodes(x)
        if not storing:
            return False
        candidates = [t for t in hist.tags() if t > self.M.tagvec[x]]
        eligible = [
            t
            for t in candidates
            if all(
                (m := self.DelL[x].max_from(i)) is not None and m >= t
                for i in storing
            )
        ]
        if not eligible:
            return False
        best = max(eligible)
        self.M.tagvec[x] = best
        self.DelL[x].add(best, self.node_id)
        self._send_del_all(x, best)
        return True

    def _on_del(self, src: int, msg: Del) -> None:
        """Record a del; a leader forwards fanout dels to everyone else."""
        origin = msg.origin if msg.origin is not None else src
        self.DelL[msg.obj].add(msg.tag, origin)
        if msg.fanout and self.config.del_leader == self.node_id:
            for j in self._others:
                if j != origin:
                    self._emit_send(
                        j, self._sized(Del(msg.obj, msg.tag, origin=origin), 0, 1)
                    )

    def _send_del_storing(self, x: int, tag: Tag) -> None:
        """Encoding line 20: del to the nodes storing X (deduplicated)."""
        if tag <= max(self._del_sent_storing[x], self._del_sent_all[x]):
            return
        leader = self.config.del_leader
        if leader is not None and leader != self.node_id:
            # low-cost variant: one message; the leader reaches everyone
            self._del_sent_storing[x] = tag
            self._del_sent_all[x] = tag
            self._emit_send(leader, self._sized(Del(x, tag, fanout=True), 0, 1))
            return
        self._del_sent_storing[x] = tag
        for j in self._storing_nodes(x):
            if j != self.node_id:
                self._emit_send(j, self._sized(Del(x, tag), 0, 1))

    def _send_del_all(self, x: int, tag: Tag) -> None:
        """Encoding line 32 / GC line 48: del to every node (deduplicated)."""
        if tag <= self._del_sent_all[x]:
            return
        self._del_sent_all[x] = tag
        leader = self.config.del_leader
        if leader is not None and leader != self.node_id:
            self._del_sent_storing[x] = tag
            self._emit_send(leader, self._sized(Del(x, tag, fanout=True), 0, 1))
            return
        for j in self._others:
            self._emit_send(j, self._sized(Del(x, tag), 0, 1))

    def _garbage_collection(self) -> None:
        """Garbage_Collection: watermark advance + history-list deletion."""
        self.stats.gc_runs += 1
        # watermark agreement is over *active* members only: a retired
        # server sends no more dels, so including it would freeze every
        # watermark (and history lists would grow forever)
        all_nodes = self._active_nodes()
        for x in range(self.code.K):
            common = self.DelL[x].max_common(all_nodes)
            if common is not None and common > self.tmax[x]:
                self.tmax[x] = common
            watermark = self.tmax[x]
            mtag = self.M.tagvec[x]
            # every tag a pending read requested stays resolvable, even at
            # the codeword cut: a responder that crash-recovered to an
            # earlier state (wipe, quarantine, corrupt checkpoint) answers
            # with a tagvec *behind* the request, and the case-(iii) swap
            # in _on_val_resp_encoded then needs this server's plain value
            # for its own requested tag -- which only the history list has
            protected = {e.tagvec[x] for e in self.readl.entries()}
            hist = self.L[x]
            if (
                watermark == mtag
                and self.DelL[x].has_exact_from_all(mtag, all_nodes)
                and hist.highest_tag <= mtag
            ):
                doomed = [
                    t for t in hist.tags() if t <= watermark and t not in protected
                ]
            elif watermark < mtag and x not in self.objects:
                doomed = [
                    t for t in hist.tags() if t <= watermark and t not in protected
                ]
            else:
                doomed = [
                    t for t in hist.tags() if t < watermark and t not in protected
                ]
            for t in doomed:
                hist.remove(t)
                self._log("gc-del", x, _tag_key(t))
            self.stats.gc_deletions += len(doomed)
            if x in self.objects:
                max_u = self.DelL[x].max_common(self._storing_nodes(x))
                if max_u is not None and max_u > self._zero:
                    self._send_del_all(x, max_u)
            self.DelL[x].prune_below(watermark)

    # ------------------------------------------------------------------
    # introspection (tests, benchmarks)

    def history_size(self) -> int:
        """Total (tag, value) entries across all history lists.

        The initial (zero-tag, zero-value) placeholder (Fig. 3) is excluded:
        it denotes the implicit initial value and stores no data.
        """
        return sum(
            sum(1 for t in h.tags() if not t.is_zero) for h in self.L.values()
        )

    def transient_state_size(self) -> int:
        """Entries in L + InQueue + ReadL: Theorem 4.5's vanishing state."""
        return self.history_size() + len(self.inqueue) + len(self.readl)

    def stored_value_bits(self, value_bits: float | None = None) -> float:
        """Bits of object-value data held: codeword symbol + history lists."""
        b = value_bits or self.config.cost_model.value_bits
        return b * (self.code.symbols_at(self.node_id) + self.history_size())
