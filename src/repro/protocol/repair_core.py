"""Anti-entropy and background repair as a sans-I/O protocol core.

CausalEC's convergence argument (Theorem 4.5) assumes the network
eventually delivers every ``app``/``del``; the runtimes realise that with
ARQ channels.  But recovery by retransmission is *reactive*: after a long
partition heals, or a server restarts from a wiped disk, the peers' ARQ
queues may have pruned exactly the frames the stale node needs (acked
frames are never replayed), and absent new writes the node sits stale
forever -- eventual convergence degenerates to convergence-at-the-next-
write.  :class:`RepairCore` closes that gap the way storage-optimized
coded-register algorithms repair erased nodes (Konwar et al.,
arXiv:1605.01748): proactively, from any live recovery set, without
touching the foreground write/read paths.

The overlay runs next to a :class:`~repro.protocol.server_core.ServerCore`
(the *host*) on each server, in the style of the failure detector:

1. **Digest gossip** -- every ``digest_interval`` ms the core sends a
   compact :class:`~repro.core.messages.DigestMsg` (vector clock + highest
   known tag per object) to every peer, best-effort.
2. **Diff** -- an incoming digest (or request, or response: any message
   carrying a peer's tag knowledge) showing the peer *ahead* -- a higher
   tag for some object, or a clock component we lack -- marks a deficit.
3. **Pull** -- a deficit opens at most one *repair round* at a time: a
   :class:`~repro.core.messages.RepairRequest` with our own tag knowledge
   goes to every peer.  Each responder answers wait-free from in-memory
   state with a :class:`~repro.core.messages.RepairResponse`: plain
   ``(tag, value)`` entries where its history list (or a singleton
   recovery-set decode) can produce them, its codeword symbol + tag
   vector, its deletion-list maxima, and its clock.
4. **Re-encode** -- plain entries install into the host's history list
   and the host's own Encoding action folds them into its symbol via the
   vectorized :class:`~repro.ec.code.LinearCode` kernels.  Objects no
   responder could serve plainly are decoded by pooling symbols from
   responders whose tag vectors match exactly (identical tag vectors
   encode identical value vectors, so linear decoding is sound) and whose
   server set forms a recovery set.
5. **Converge** -- once installs cover everything the responder
   advertised, the host adopts the merged vector clock and purges
   permanently-inapplicable InQueue entries
   (:meth:`~repro.protocol.server_core.ServerCore.absorb_repair`).

Non-interference: repair never blocks a foreground handler (cores are
single-event state machines and responders answer from what they already
hold), never mints tags, never acks clients, and is paced -- digests are
tiny and periodic, rounds are serialized per node with a ``round_timeout``
between attempts, and a node in sync sends nothing but digests.

Timers are namespaced under ``("rep", ...)`` so runtimes can multiplex
them with the host's and the failure detector's on one timer table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.messages import DigestMsg, RepairRequest, RepairResponse
from ..core.tags import Tag, VectorClock
from .effects import CancelTimerEffect, ProtocolCore, SetTimerEffect
from .server_core import ServerCore

__all__ = ["RepairConfig", "RepairStats", "RepairCore", "DIGEST_TIMER", "ROUND_TIMER"]

DIGEST_TIMER = ("rep", "digest")
ROUND_TIMER = ("rep", "round")


@dataclass
class RepairConfig:
    """Repair-overlay tunables (milliseconds, like every core clock).

    ``digest_interval`` paces the gossip; detection latency after a heal is
    at most one interval (plus one round trip for the pull).
    ``round_timeout`` bounds how long an unfinished round waits before the
    deficit is re-checked and re-requested -- it is also the minimum gap
    between rounds, which is what keeps repair traffic from crowding out
    foreground writes and reads.
    """

    digest_interval: float = 100.0
    round_timeout: float = 400.0

    def __post_init__(self):
        if self.digest_interval <= 0:
            raise ValueError("digest_interval must be positive")
        if self.round_timeout <= 0:
            raise ValueError("round_timeout must be positive")


@dataclass
class RepairStats:
    """Counters for one server's repair overlay."""

    digests_sent: int = 0
    digests_received: int = 0
    rounds_started: int = 0
    rounds_completed: int = 0
    requests_served: int = 0
    responses_received: int = 0
    entries_installed: int = 0
    symbols_decoded: int = 0
    bits_shipped: float = 0.0  # repair payload sent (digests + responses)


class RepairCore(ProtocolCore):
    """Per-server anti-entropy overlay around a :class:`ServerCore` host."""

    def __init__(self, host: ServerCore, config: RepairConfig | None = None):
        self.host = host
        self.config = config or RepairConfig()
        self.stats = RepairStats()
        self.now = 0.0
        self._zero = host._zero
        self._others = list(host._others)
        #: freshest advertised knowledge per peer (digest/request/response)
        self._peer_tags: dict[int, dict[int, Tag]] = {}
        self._peer_vc: dict[int, VectorClock] = {}
        #: at most one pull round in flight; symbols collected this round
        self._round_open = False
        self._round_symbols: dict[int, tuple[np.ndarray, dict[int, Tag]]] = {}

    # ------------------------------------------------------------------
    # runtime-facing contract

    def boot(self, now: float) -> list:
        """(Re)start the overlay: volatile round state dies with the
        incarnation, peer knowledge is relearned from the next digests.

        No digest is sent here -- peers may not be reachable yet while a
        cluster is still assembling; the first gossip goes out one
        ``digest_interval`` later (and :meth:`on_peer_alive` covers the
        rejoin case promptly)."""
        self._begin(now)
        self._peer_tags = {}
        self._peer_vc = {}
        self._round_open = False
        self._round_symbols = {}
        self._emit(SetTimerEffect(DIGEST_TIMER, self.config.digest_interval))
        return self._end()

    def handle_timer(self, timer_id: tuple, now: float) -> list:
        self._begin(now)
        if timer_id == DIGEST_TIMER:
            self._send_digests(self._others)
            self._emit(SetTimerEffect(DIGEST_TIMER, self.config.digest_interval))
            if not self._round_open and self._deficit():
                self._start_round()
        elif timer_id == ROUND_TIMER:
            self._round_open = False
            self._round_symbols = {}
            if self._deficit():
                self._start_round()  # retry: responses lost or insufficient
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown repair timer {timer_id!r}")
        return self._end()

    def handle_message(self, src: int, msg: object, now: float) -> list:
        self._begin(now)
        if isinstance(msg, DigestMsg):
            self.stats.digests_received += 1
            self._note_peer(src, msg.tags, msg.vc)
        elif isinstance(msg, RepairRequest):
            self._note_peer(src, msg.tags, msg.vc)
            self._serve_request(src, msg)
        elif isinstance(msg, RepairResponse):
            self._on_response(src, msg)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected repair message {msg!r}")
        if not self._round_open and self._deficit():
            self._start_round()
        return self._end()

    def refresh_peers(self) -> None:
        """Membership changed on the host: re-derive the peer fanout.

        Knowledge advertised by retired servers is dropped -- their state
        is gone, and a deficit computed against a dead peer's clock would
        open pull rounds that can never complete.
        """
        self._others = list(self.host._others)
        keep = set(self._others)
        self._peer_tags = {p: t for p, t in self._peer_tags.items() if p in keep}
        self._peer_vc = {p: v for p, v in self._peer_vc.items() if p in keep}
        self._round_symbols = {
            p: s for p, s in self._round_symbols.items() if p in keep
        }

    def on_peer_alive(self, peer: int, now: float) -> list:
        """Failure-detector hook (suspect -> alive): heal a rejoining peer
        promptly.  An immediate digest lets the peer diff and pull without
        waiting out the periodic tick; if *we* are the stale side, the
        peer's own resumed gossip triggers our pull symmetrically."""
        self._begin(now)
        if peer in self._others:
            self._send_digests([peer])
        return self._end()

    # ------------------------------------------------------------------
    # digest side

    def _known(self, x: int) -> Tag:
        return self.host.repair_known_tag(x)

    def _digest_tags(self) -> dict[int, Tag]:
        tags = {}
        for x in range(self.host.code.K):
            t = self._known(x)
            if t != self._zero:
                tags[x] = t
        return tags

    def _sized(self, msg, n_values: float = 0.0, n_tags: float = 0.0):
        msg.size_bits = self.host.config.cost_model.size(n_values, n_tags)
        self.stats.bits_shipped += msg.size_bits
        return msg

    def _send_digests(self, targets) -> None:
        tags = self._digest_tags()
        for p in targets:
            # vc counts as one tag of metadata; values never ride a digest
            msg = DigestMsg(self.host.node_id, self.host.vc, dict(tags), self.now)
            self._emit_send(p, self._sized(msg, 0, len(tags) + 1))
            self.stats.digests_sent += 1

    def _note_peer(self, src: int, tags: dict[int, Tag], vc) -> None:
        mine = self._peer_tags.setdefault(src, {})
        for x, t in tags.items():
            if t > mine.get(x, self._zero):
                mine[x] = t
        cur = self._peer_vc.get(src)
        self._peer_vc[src] = vc if cur is None else cur.merge(vc)

    def _deficit(self) -> bool:
        """Is any peer known to hold state we lack?"""
        host = self.host
        for tags in self._peer_tags.values():
            for x, t in tags.items():
                if t > self._known(x):
                    return True
        for vc in self._peer_vc.values():
            if not vc.leq(host.vc):
                return True
        return False

    # ------------------------------------------------------------------
    # pull round

    def _start_round(self) -> None:
        self._round_open = True
        self._round_symbols = {}
        self.stats.rounds_started += 1
        req_tags = self._digest_tags()
        for p in self._others:
            msg = RepairRequest(self.host.node_id, dict(req_tags), self.host.vc)
            self._emit_send(p, self._sized(msg, 0, len(req_tags) + 1))
        self._emit(SetTimerEffect(ROUND_TIMER, self.config.round_timeout))

    def _finish_round(self) -> None:
        self._round_open = False
        self._round_symbols = {}
        self.stats.rounds_completed += 1
        self._emit(CancelTimerEffect(ROUND_TIMER))

    def _serve_request(self, src: int, req: RepairRequest) -> None:
        """Answer a pull wait-free from what we already hold."""
        host, code = self.host, self.host.code
        self.stats.requests_served += 1
        entries: dict[int, tuple] = {}
        for x in range(code.K):
            mine = self._known(x)
            if not mine > req.tags.get(x, self._zero):
                continue
            hist = host.L[x]
            if len(hist) and hist.highest_tag >= host.M.tagvec[x]:
                entries[x] = (hist.highest_tag, hist.highest_value())
            elif code.is_recovery_set((host.node_id,), x):
                value = code.decode(x, {host.node_id: host.M.value})
                if value is not None:
                    entries[x] = (host.M.tagvec[x], value)
        dels = {}
        for x in range(code.K):
            by_node = host.DelL[x].max_by_node()
            if by_node:
                dels[x] = by_node
        resp = RepairResponse(
            sender=host.node_id,
            tags=self._digest_tags(),
            vc=host.vc,
            entries=entries,
            dels=dels,
            symbol=np.array(host.M.value, copy=True),
            tagvec=dict(host.M.tagvec),
        )
        # cost: plain values + one symbol's worth of coded data, plus tag
        # metadata (entry/digest/del tags, two tag vectors, the clock)
        n_tags = (
            len(entries) + len(resp.tags) + sum(len(d) for d in dels.values())
            + 2 * code.K + 1
        )
        n_values = len(entries) + code.symbols_at(host.node_id)
        self._emit_send(src, self._sized(resp, n_values, n_tags))

    def _on_response(self, src: int, resp: RepairResponse) -> None:
        host, code = self.host, self.host.code
        self.stats.responses_received += 1
        self._note_peer(src, resp.tags, resp.vc)

        installs: list[tuple[int, Tag, np.ndarray]] = []
        known_after: dict[int, Tag] = {}

        def known(x: int) -> Tag:
            return known_after.get(x) or self._known(x)

        for x, (tag, value) in sorted(resp.entries.items()):
            if tag > known(x):
                installs.append((x, tag, value))
                known_after[x] = tag

        # pool symbols across responders with *identical* tag vectors:
        # equal tag vectors encode equal value vectors, so linear decoding
        # over any recovery set among them is sound
        self._round_symbols[src] = (resp.symbol, dict(resp.tagvec))
        groups: dict[tuple, list[int]] = {}
        for peer, (_, tv) in self._round_symbols.items():
            key = tuple(sorted(tv.items()))
            groups.setdefault(key, []).append(peer)
        for key, peers in groups.items():
            tv = dict(key)
            for x in range(code.K):
                target = tv.get(x, self._zero)
                if not target > known(x):
                    continue
                if not code.is_recovery_set(tuple(peers), x):
                    continue
                symbols = {p: self._round_symbols[p][0] for p in peers}
                value = code.decode(x, symbols)
                if value is not None:
                    installs.append((x, target, value))
                    known_after[x] = target
                    self.stats.symbols_decoded += 1

        self.stats.entries_installed += len(installs)
        for e in host.absorb_repair(
            installs, resp.dels, resp.vc, dict(resp.tags), self.now
        ):
            self._emit(e)
        if self._round_open and not self._deficit():
            self._finish_round()
