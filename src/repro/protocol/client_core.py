"""The CausalEC client protocol (Sec. 3, "Client protocol"), sans I/O.

A client is attached to exactly one server (the partition C_s of Sec. 2.1)
and sends ``write``/``read`` messages to it, awaiting the matching
``write-return-ack``/``read-return``.  Well-formedness is enforced: a client
has at most one pending invocation at any point.

The same client core drives every protocol in this repository (CausalEC and
the baselines) since they share the client-facing message types, and every
runtime (discrete-event simulation and the live asyncio cluster) since it
performs no I/O: invocations and handlers return effect lists, and operation
completion is surfaced as an :class:`~repro.protocol.effects.OpSettledEffect`
for the runtime to deliver to the application layer.

**Fault tolerance.**  With a :class:`RetryPolicy` attached, a client that
hears nothing from its home server re-sends the request with exponential
backoff, and -- once the retry budget or deadline is exhausted -- *fails
fast*: the operation is marked failed with a typed
:class:`HomeServerUnavailable` error instead of hanging.  Servers
deduplicate retried requests (same opid), so retries are safe even when the
original request was delivered but its response was lost to a crash.  A
failed operation releases the well-formedness slot; the consistency checkers
treat it as incomplete (it *may* still take effect later, e.g. when a
crashed server recovers and the ARQ transport delivers the original request
after all).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..consistency.history import History, Operation
from ..core.messages import ReadRequest, ReadReturn, WriteAck, WriteRequest
from .effects import (
    CancelTimerEffect,
    OpSettledEffect,
    ProtocolCore,
    SetTimerEffect,
)

__all__ = ["ClientCore", "RetryPolicy", "HomeServerUnavailable"]


class HomeServerUnavailable(RuntimeError):
    """A client operation gave up: the home server did not respond in time."""

    def __init__(self, opid, server_id: int, attempts: int, waited: float):
        self.opid = opid
        self.server_id = server_id
        self.attempts = attempts
        self.waited = waited
        super().__init__(
            f"operation {opid!r}: home server {server_id} unresponsive after "
            f"{attempts} attempt(s) over {waited:.1f} ms"
        )


@dataclass
class RetryPolicy:
    """Request timeout + retry with exponential backoff.

    ``timeout`` is the wait before the first retry; each subsequent wait
    multiplies by ``backoff``.  After ``max_retries`` re-sends -- or, if
    ``deadline`` is set, once that much total time has elapsed since the
    invocation -- the operation fails with :class:`HomeServerUnavailable`.
    """

    timeout: float = 50.0
    max_retries: int = 4
    backoff: float = 2.0
    deadline: float | None = None

    def __post_init__(self):
        if self.timeout <= 0 or self.backoff < 1.0 or self.max_retries < 0:
            raise ValueError(
                "need timeout > 0, backoff >= 1, max_retries >= 0"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive when set")


class ClientCore(ProtocolCore):
    """A client state machine issuing read/write operations to its server.

    Retry timers are named ``("retry", opid, attempt)``; the attempt count
    in the id makes re-arming on retransmission a fresh timer rather than a
    replacement race.
    """

    def __init__(
        self,
        node_id: int,
        server_id: int,
        history: History | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.node_id = node_id
        self.server_id = server_id
        self.history = history
        self.retry = retry
        self.now = 0.0
        self._op_counter = itertools.count()
        self._pending: Operation | None = None
        self._attempts = 0
        self._retry_timer_id: tuple | None = None

    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._pending is not None

    def start_write(self, obj: int, value: np.ndarray, now: float):
        """Invoke write(X, v); returns ``(op, effects)``."""
        self._begin(now)
        op = self._invoke("write", obj, value)
        self._transmit_request()
        return op, self._end()

    def start_read(self, obj: int, now: float):
        """Invoke read(X); returns ``(op, effects)``."""
        self._begin(now)
        op = self._invoke("read", obj, None)
        self._transmit_request()
        return op, self._end()

    def _invoke(self, kind: str, obj: int, value) -> Operation:
        if self._pending is not None:
            raise RuntimeError(
                f"client {self.node_id} already has a pending operation "
                f"(well-formedness, Sec. 2.1)"
            )
        op = Operation(
            client_id=self.node_id,
            opid=(self.node_id, next(self._op_counter)),
            kind=kind,
            obj=obj,
            value=None if value is None else np.asarray(value),
            invoke_time=self.now,
        )
        self._pending = op
        self._attempts = 0
        if self.history is not None:
            self.history.record_invoke(op)
        return op

    def _request_message(self):
        op = self._pending
        if op.kind == "write":
            msg = WriteRequest(op.opid, op.obj, op.value)
        else:
            msg = ReadRequest(op.opid, op.obj)
        msg.size_bits = 0.0
        return msg

    def _transmit_request(self) -> None:
        """(Re-)send the pending request and arm the retry timer."""
        op = self._pending
        if op is None:
            return
        self._attempts += 1
        self._emit_send(self.server_id, self._request_message())
        if self.retry is not None:
            wait = self.retry.timeout * (
                self.retry.backoff ** (self._attempts - 1)
            )
            timer_id = ("retry", op.opid, self._attempts)
            self._emit(SetTimerEffect(timer_id, wait))
            self._retry_timer_id = timer_id

    def handle_timer(self, timer_id: tuple, now: float) -> list:
        self._begin(now)
        if timer_id[0] == "retry":
            self._on_timeout(timer_id[1])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown timer {timer_id!r}")
        return self._end()

    def _on_timeout(self, opid) -> None:
        op = self._pending
        if op is None or op.opid != opid:
            return  # completed (or failed) meanwhile
        waited = self.now - op.invoke_time
        out_of_retries = self._attempts > self.retry.max_retries
        past_deadline = (
            self.retry.deadline is not None and waited >= self.retry.deadline
        )
        if out_of_retries or past_deadline:
            self._fail(op, waited)
        else:
            self._transmit_request()

    def _fail(self, op: Operation, waited: float) -> None:
        """Give up: surface unavailability instead of hanging forever."""
        op.failed = True
        op.failed_time = self.now
        op.error = HomeServerUnavailable(
            op.opid, self.server_id, self._attempts, waited
        )
        self._pending = None
        self._emit(OpSettledEffect(op, failed=True))

    def _cancel_retry(self) -> None:
        if self._retry_timer_id is not None:
            self._emit(CancelTimerEffect(self._retry_timer_id))
            self._retry_timer_id = None

    # ------------------------------------------------------------------

    def handle_message(self, src: int, msg: object, now: float) -> list:
        self._begin(now)
        op = self._pending
        if op is None:
            return self._end()
        if isinstance(msg, WriteAck) and msg.opid == op.opid:
            self._cancel_retry()
            op.response_time = self.now
            op.ts = msg.ts
            op.tag = msg.tag
            self._pending = None
            self._emit(OpSettledEffect(op))
        elif isinstance(msg, ReadReturn) and msg.opid == op.opid:
            self._cancel_retry()
            op.response_time = self.now
            op.value = msg.value
            op.ts = msg.ts
            op.tag = msg.value_tag
            self._pending = None
            self._emit(OpSettledEffect(op))
        return self._end()
