"""The CausalEC client protocol (Sec. 3, "Client protocol"), sans I/O.

A client is attached to exactly one server (the partition C_s of Sec. 2.1)
and sends ``write``/``read`` messages to it, awaiting the matching
``write-return-ack``/``read-return``.  Well-formedness is enforced: a client
has at most one pending invocation at any point.

The same client core drives every protocol in this repository (CausalEC and
the baselines) since they share the client-facing message types, and every
runtime (discrete-event simulation and the live asyncio cluster) since it
performs no I/O: invocations and handlers return effect lists, and operation
completion is surfaced as an :class:`~repro.protocol.effects.OpSettledEffect`
for the runtime to deliver to the application layer.

**Fault tolerance.**  With a :class:`RetryPolicy` attached, a client that
hears nothing from its home server re-sends the request with exponential
backoff, and -- once the retry budget or deadline is exhausted -- *fails
fast*: the operation is marked failed with a typed
:class:`HomeServerUnavailable` error instead of hanging.  Servers
deduplicate retried requests (same opid), so retries are safe even when the
original request was delivered but its response was lost to a crash.  A
failed operation releases the well-formedness slot; the consistency checkers
treat it as incomplete (it *may* still take effect later, e.g. when a
crashed server recovers and the ARQ transport delivers the original request
after all).

**Failover.**  With a ``failover`` candidate list attached, a client whose
home server exhausts its per-server retry budget *fails over* instead of
failing the operation: it switches its home server (sticky -- subsequent
operations go to the new server too) and surfaces the switch as a
:class:`~repro.protocol.effects.HomeServerSwitchEffect` so a live runtime
can re-dial.  Only **reads** are retried across servers mid-operation:
read requests are idempotent everywhere, whereas write dedup is *per
server* (each server keeps its own client-session table), so re-sending an
in-flight write to a different server could apply the same write twice
under two different tags.  A pending write therefore fails fast with
:class:`HomeServerUnavailable` as before -- but the client still rotates to
a new home server for its *next* operation.  ``failover_writes=True``
lifts the restriction for callers that accept duplicate-apply risk.
:class:`HomeServerUnavailable` is raised only after every candidate has
been tried (for reads) and carries the list of servers tried.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..consistency.history import History, Operation
from ..core.messages import (
    MigrateInstall,
    ReadRequest,
    ReadReturn,
    WriteAck,
    WriteRequest,
)
from .effects import (
    CancelTimerEffect,
    HomeServerSwitchEffect,
    OpSettledEffect,
    ProtocolCore,
    SetTimerEffect,
)

__all__ = ["ClientCore", "RetryPolicy", "HomeServerUnavailable"]


class HomeServerUnavailable(RuntimeError):
    """A client operation gave up: no candidate server responded in time.

    ``servers_tried`` lists every server the operation was sent to (just the
    home server when no failover candidates are configured, or when the
    operation is a write -- see the module docstring).
    """

    def __init__(
        self,
        opid,
        server_id: int,
        attempts: int,
        waited: float,
        servers_tried: list[int] | None = None,
    ):
        self.opid = opid
        self.server_id = server_id
        self.attempts = attempts
        self.waited = waited
        self.servers_tried = (
            list(servers_tried) if servers_tried is not None else [server_id]
        )
        tried = ""
        if len(self.servers_tried) > 1:
            tried = f" (servers tried: {self.servers_tried})"
        super().__init__(
            f"operation {opid!r}: home server {server_id} unresponsive after "
            f"{attempts} attempt(s) over {waited:.1f} ms{tried}"
        )


@dataclass
class RetryPolicy:
    """Request timeout + retry with exponential backoff.

    ``timeout`` is the wait before the first retry; each subsequent wait
    multiplies by ``backoff``.  After ``max_retries`` re-sends -- or, if
    ``deadline`` is set, once that much total time has elapsed since the
    invocation -- the operation fails with :class:`HomeServerUnavailable`.
    """

    timeout: float = 50.0
    max_retries: int = 4
    backoff: float = 2.0
    deadline: float | None = None

    def __post_init__(self):
        if self.timeout <= 0 or self.backoff < 1.0 or self.max_retries < 0:
            raise ValueError(
                "need timeout > 0, backoff >= 1, max_retries >= 0"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive when set")


class ClientCore(ProtocolCore):
    """A client state machine issuing read/write operations to its server.

    Retry timers are named ``("retry", opid, attempt)``; the attempt count
    in the id makes re-arming on retransmission a fresh timer rather than a
    replacement race.
    """

    def __init__(
        self,
        node_id: int,
        server_id: int,
        history: History | None = None,
        retry: RetryPolicy | None = None,
        failover: list[int] | None = None,
        failover_writes: bool = False,
        opid_counter=None,
    ):
        self.node_id = node_id
        self.server_id = server_id
        self.history = history
        self.retry = retry
        self.failover = list(failover or [])
        self.failover_writes = failover_writes
        self.now = 0.0
        #: session floor: merge of every response ``ts`` observed.  Sent
        #: with each request so a failed-over-to server can defer serving
        #: until its own clock covers everything this session has seen.
        self.session_ts = None
        #: ring epoch stamped on outgoing requests (sharded deployments);
        #: a ShardedSession keeps it at the router's current view.
        self.view_version: int | None = None
        # A ShardedSession spans several per-shard cores that together form
        # ONE logical session: they share a single opid counter (and node
        # id) so the audit trail sees one session with a global op order.
        self._op_counter = (
            opid_counter if opid_counter is not None else itertools.count()
        )
        self._migrate_gen: int | None = None
        self._pending: Operation | None = None
        self._attempts = 0
        self._retry_timer_id: tuple | None = None
        self._servers_tried: list[int] = [server_id]

    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._pending is not None

    def start_write(self, obj: int, value: np.ndarray, now: float):
        """Invoke write(X, v); returns ``(op, effects)``."""
        self._begin(now)
        self._migrate_gen = None
        op = self._invoke("write", obj, value)
        self._transmit_request()
        return op, self._end()

    def start_read(self, obj: int, now: float):
        """Invoke read(X); returns ``(op, effects)``."""
        self._begin(now)
        self._migrate_gen = None
        op = self._invoke("read", obj, None)
        self._transmit_request()
        return op, self._end()

    def start_migrate(self, obj: int, value: np.ndarray, gen: int, now: float):
        """Invoke a migration install: a write that the destination logs
        with kind ``migrate`` and generation ``gen``.  Used only by view-
        change coordinators; retransmits rebuild the same message type."""
        self._begin(now)
        self._migrate_gen = gen
        op = self._invoke("write", obj, value)
        self._transmit_request()
        return op, self._end()

    def _invoke(self, kind: str, obj: int, value) -> Operation:
        if self._pending is not None:
            raise RuntimeError(
                f"client {self.node_id} already has a pending operation "
                f"(well-formedness, Sec. 2.1)"
            )
        op = Operation(
            client_id=self.node_id,
            opid=(self.node_id, next(self._op_counter)),
            kind=kind,
            obj=obj,
            value=None if value is None else np.asarray(value),
            invoke_time=self.now,
        )
        self._pending = op
        self._attempts = 0
        self._servers_tried = [self.server_id]
        if self.history is not None:
            self.history.record_invoke(op)
        return op

    def _request_message(self):
        op = self._pending
        if op.kind == "write":
            if self._migrate_gen is not None:
                msg = MigrateInstall(
                    op.opid, op.obj, op.value, gen=self._migrate_gen
                )
            else:
                msg = WriteRequest(op.opid, op.obj, op.value)
        else:
            msg = ReadRequest(op.opid, op.obj)
        msg.session_ts = self.session_ts
        msg.view = self.view_version
        msg.size_bits = 0.0
        return msg

    def _transmit_request(self) -> None:
        """(Re-)send the pending request and arm the retry timer."""
        op = self._pending
        if op is None:
            return
        self._attempts += 1
        self._emit_send(self.server_id, self._request_message())
        if self.retry is not None:
            wait = self.retry.timeout * (
                self.retry.backoff ** (self._attempts - 1)
            )
            timer_id = ("retry", op.opid, self._attempts)
            self._emit(SetTimerEffect(timer_id, wait))
            self._retry_timer_id = timer_id

    def handle_timer(self, timer_id: tuple, now: float) -> list:
        self._begin(now)
        if timer_id[0] == "retry":
            self._on_timeout(timer_id[1])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown timer {timer_id!r}")
        return self._end()

    def _on_timeout(self, opid) -> None:
        op = self._pending
        if op is None or op.opid != opid:
            return  # completed (or failed) meanwhile
        waited = self.now - op.invoke_time
        out_of_retries = self._attempts > self.retry.max_retries
        past_deadline = (
            self.retry.deadline is not None and waited >= self.retry.deadline
        )
        if past_deadline:
            # The deadline is a total budget across every candidate server.
            self._fail(op, waited)
        elif out_of_retries:
            nxt = self._next_candidate()
            if nxt is None:
                self._fail(op, waited)
            elif op.kind == "read" or self.failover_writes:
                self._switch(nxt, op.opid)
                self._attempts = 0
                self._transmit_request()
            else:
                # An in-flight write must not chase a new server: write dedup
                # is per-server, so a cross-server retry could apply twice.
                # Fail it fast, but rotate the sticky home server so the
                # client's *next* operation avoids the unresponsive one.
                self._fail(op, waited)
                self._switch(nxt, None)
        else:
            self._transmit_request()

    def suspect_home(self, now: float) -> list:
        """External suspicion hint (e.g. a failure detector): rotate early.

        An idle client just switches its sticky home server; a client with a
        pending read re-sends it to the new server immediately.  A pending
        write is left to the retry policy's fail-fast path -- the same
        per-server-dedup hazard as in :meth:`_on_timeout` applies.
        """
        self._begin(now)
        nxt = self._next_candidate()
        if nxt is not None:
            op = self._pending
            if op is None:
                self._switch(nxt, None)
            elif op.kind == "read" or self.failover_writes:
                self._cancel_retry()
                self._switch(nxt, op.opid)
                self._attempts = 0
                self._transmit_request()
        return self._end()

    def _next_candidate(self) -> int | None:
        """The first failover server not yet tried for the current op."""
        tried = (
            self._servers_tried
            if self._pending is not None
            else [self.server_id]
        )
        for s in self.failover:
            if s != self.server_id and s not in tried:
                return s
        return None

    def _switch(self, new: int, opid) -> None:
        old = self.server_id
        self.server_id = new
        if self._pending is not None:
            self._servers_tried.append(new)
        self._emit(HomeServerSwitchEffect(old, new, opid))

    def _fail(self, op: Operation, waited: float) -> None:
        """Give up: surface unavailability instead of hanging forever."""
        op.failed = True
        op.failed_time = self.now
        op.error = HomeServerUnavailable(
            op.opid,
            self.server_id,
            self._attempts,
            waited,
            servers_tried=self._servers_tried,
        )
        self._pending = None
        self._emit(OpSettledEffect(op, failed=True))

    def _cancel_retry(self) -> None:
        if self._retry_timer_id is not None:
            self._emit(CancelTimerEffect(self._retry_timer_id))
            self._retry_timer_id = None

    # ------------------------------------------------------------------

    def handle_message(self, src: int, msg: object, now: float) -> list:
        self._begin(now)
        op = self._pending
        if op is None:
            return self._end()
        if isinstance(msg, WriteAck) and msg.opid == op.opid:
            self._cancel_retry()
            op.response_time = self.now
            op.ts = msg.ts
            op.tag = msg.tag
            self._observe_ts(msg.ts)
            self._pending = None
            self._emit(OpSettledEffect(op))
        elif isinstance(msg, ReadReturn) and msg.opid == op.opid:
            self._cancel_retry()
            op.response_time = self.now
            op.value = msg.value
            op.ts = msg.ts
            op.tag = msg.value_tag
            self._observe_ts(msg.ts)
            self._pending = None
            self._emit(OpSettledEffect(op))
        return self._end()

    def _observe_ts(self, ts) -> None:
        if ts is None:
            return
        self.session_ts = (
            ts if self.session_ts is None else self.session_ts.merge(ts)
        )
