"""Availability under crashes: which design keeps data readable?

Property (II) makes CausalEC's read availability exactly the code's
recovery structure, so availability is computable: for f crashes, an
object is available iff every... rather, we report both the *guaranteed*
availability (survives every f-subset) and the *expected* availability
(fraction of (object, crash-set) pairs with a surviving recovery set).

Compared layouts on 6 servers / 4 objects at equal-ish storage:

* the best partial replication placement (6 values total),
* the Sec. 1.1 cross-object code (6 symbols),
* systematic Reed-Solomon(6,4) used cross-object (6 symbols),
* full replication (24 values -- the storage-expensive reference).

Shape: RS(6,4) dominates at equal storage (MDS optimality); the Sec. 1.1
code trades a little availability for its latency profile; partial
replication is strictly worse than RS at the same storage.
"""

from itertools import combinations

from repro.analysis import Topology, search_partial_replication
from repro.ec import (
    partial_replication_code,
    reed_solomon_code,
    replication_code,
    six_dc_code,
)

from bench_utils import fmt, once, print_table


def expected_availability(code, f: int) -> float:
    """Fraction of (object, f-crash-set) pairs that remain readable."""
    total = 0
    ok = 0
    for crashed in combinations(range(code.N), f):
        alive = frozenset(range(code.N)) - frozenset(crashed)
        for k in range(code.K):
            total += 1
            if code.is_recovery_set(alive, k):
                ok += 1
    return ok / total if total else 1.0


def build_layouts():
    topo = Topology.aws_six_dc()
    best = search_partial_replication(topo, 4)
    pr_code = partial_replication_code(
        None, 4, [sorted(p) for p in best.placement_sets()]
    )
    return {
        "partial replication": pr_code,
        "cross-object (Sec. 1.1)": six_dc_code(),
        "RS(6,4) cross-object": reed_solomon_code(num_servers=6, num_objects=4),
        "full replication": replication_code(num_servers=6, num_objects=4),
    }


def test_availability_under_crashes(benchmark):
    def sweep():
        layouts = build_layouts()
        return {
            name: [expected_availability(code, f) for f in range(4)]
            for name, code in layouts.items()
        }

    results = once(benchmark, sweep)
    rows = [
        [name] + [fmt(100 * a, 1) + "%" for a in avail]
        for name, avail in results.items()
    ]
    print_table(
        "Expected read availability vs number of crashed servers "
        "(6 servers, 4 objects)",
        ["layout", "f=0", "f=1", "f=2", "f=3"],
        rows,
    )

    pr = results["partial replication"]
    co = results["cross-object (Sec. 1.1)"]
    rs = results["RS(6,4) cross-object"]
    fr = results["full replication"]

    # everything starts fully available
    assert all(r[0] == 1.0 for r in results.values())
    # MDS: perfect availability through f = N - k = 2 crashes
    assert rs[1] == 1.0 and rs[2] == 1.0
    assert rs[3] < 1.0
    # full replication survives up to 5 crashes
    assert fr[3] == 1.0
    # partial replication already loses data at f = 1 (singleton replicas)
    assert pr[1] < 1.0
    # the hand-tuned cross-object code improves on partial replication at
    # every crash level (same storage)
    for f in (1, 2, 3):
        assert co[f] >= pr[f]
    # RS dominates within its MDS budget (f <= N - k) ...
    for f in (1, 2):
        assert rs[f] >= co[f]
    # ... but beyond it, only systematic survivors serve reads, and the
    # locality-rich hand-tuned code overtakes it: a genuine trade-off
    assert co[3] > rs[3]
