"""Pytest configuration for the benchmark harness.

Ensures the sibling ``bench_utils`` helpers are importable regardless of
pytest's import mode.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
