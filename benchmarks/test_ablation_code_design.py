"""Ablation/extension: automated cross-object code design vs hand tuning.

Sec. 6 leaves code design for general topologies as an open problem; the
Sec. 1.1 code was hand-tuned to the AWS latencies.  This bench runs the
randomized-restart local search of ``repro.analysis.code_design`` and
compares, on the Fig. 1 topology:

* the best partial-replication placement (exhaustive search),
* the paper's hand-tuned cross-object code,
* the worst-case-optimized designed code,
* the average-optimized designed code.

Notably, the search reaches worst-case 138 ms -- the figure the paper
quotes for its hand-tuned code, which computes to 146 ms on the printed
matrix -- and the average-optimized design beats the best partial
replication placement's average.
"""

import pytest

from repro.analysis import (
    Topology,
    cross_object_latency,
    design_cross_object_code,
    search_partial_replication,
)
from repro.ec import six_dc_code

from bench_utils import fmt, once, print_table


def run_design():
    topo = Topology.aws_six_dc()
    pr = search_partial_replication(topo, 4).profile
    hand = cross_object_latency(topo, six_dc_code())
    designed_w = design_cross_object_code(topo, 4, restarts=4, seed=0)
    designed_a = design_cross_object_code(
        topo, 4, objective="avg_then_worst", restarts=4, seed=1
    )
    return topo, pr, hand, designed_w, designed_a


def test_code_design_ablation(benchmark):
    topo, pr, hand, designed_w, designed_a = once(benchmark, run_design)
    rows = [
        ["best partial replication", fmt(pr.worst_case, 0), fmt(pr.average, 2)],
        ["hand-tuned 6-DC code (paper)", fmt(hand.worst_case, 0),
         fmt(hand.average, 2)],
        ["designed (worst-case obj.)", fmt(designed_w.profile.worst_case, 0),
         fmt(designed_w.profile.average, 2)],
        ["designed (average obj.)", fmt(designed_a.profile.worst_case, 0),
         fmt(designed_a.profile.average, 2)],
    ]
    print_table(
        "Extension: automated cross-object code design (AWS 6-DC topology)",
        ["scheme", "worst (ms)", "avg (ms)"],
        rows,
    )
    assignment = ", ".join(
        f"{topo.names[s]}={'+'.join(f'X{k + 1}' for k in sorted(objs))}"
        for s, objs in enumerate(designed_w.assignment)
    )
    print(f"\ndesigned (worst-case) assignment: {assignment}")

    # the designed code dominates the hand-tuned one on the worst case and
    # achieves the 138 ms the paper quotes
    assert designed_w.profile.worst_case == pytest.approx(138.0)
    assert designed_w.profile.worst_case <= hand.worst_case
    # the average-optimized design beats even the best placement's average
    assert designed_a.profile.average < pr.average
    # and both enjoy coding's worst-case advantage over placement
    assert designed_w.profile.worst_case < pr.worst_case - 50
