"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one artefact of the paper's evaluation
(a figure, table, or theorem-backed claim), prints the reproduced rows next
to the paper's numbers, and asserts the qualitative *shape* (who wins,
roughly by how much, where crossovers fall) rather than exact absolute
values -- our substrate is a simulator, not the authors' testbed.

Run with ``pytest benchmarks/ --benchmark-only`` to see the tables.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def fmt(x: float, digits: int = 2) -> str:
    return f"{x:.{digits}f}"


@pytest.fixture
def table():
    return print_table


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result.

    The figure/table benchmarks are full simulations; one timed round keeps
    ``--benchmark-only`` runs fast while still reporting wall time.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def best_of(fn, rounds: int = 10) -> float:
    """Best wall-clock seconds for one call of ``fn`` over ``rounds`` runs."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def write_timing_json(records: list[dict], default_name: str) -> Path:
    """Persist timing records as machine-readable JSON for perf trajectories.

    The output path is ``$MICRO_BENCH_JSON`` when set (CI uploads it as an
    artifact), else ``benchmarks/.bench_out/<default_name>``.  The schema is
    append-friendly: one top-level object with a ``results`` list.
    """
    target = os.environ.get("MICRO_BENCH_JSON")
    path = (
        Path(target)
        if target
        else Path(__file__).parent / ".bench_out" / default_name
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": "repro-micro-timings/v1",
        "unix_time": time.time(),
        "results": records,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
