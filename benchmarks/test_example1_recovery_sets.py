"""Sec. 1.2 / Example 1: the (5,3) code's minimal recovery sets.

Regenerates the recovery-set families R_1, R_2, R_3 the paper lists for the
code [x1, x2, x3, x1+x2+x3, x1+2x2+x3] and checks them verbatim, plus the
re-encoding walk-through of Sec. 1.2 (node 4 re-encodes Y4 so node 5 can
cancel the mismatch and decode X2(1) as Y5 - Y4'').
"""

import numpy as np

from repro import PrimeField, example1_code

from bench_utils import once, print_table

PAPER_SETS = {
    0: [[1], [3, 4, 5], [2, 3, 4], [2, 3, 5]],
    1: [[2], [4, 5], [1, 3, 4], [1, 3, 5]],
    2: [[3], [1, 2, 4], [1, 2, 5], [1, 4, 5]],
}


def test_example1_recovery_sets(benchmark):
    code = once(benchmark, example1_code)
    rows = []
    for obj in range(3):
        ours = sorted(sorted(s + 1 for s in rs) for rs in code.minimal_recovery_sets(obj))
        paper = sorted(sorted(s) for s in PAPER_SETS[obj])
        rows.append([f"R_{obj + 1}", str(ours), str(paper), ours == paper])
    print_table(
        "Sec. 1.2: minimal recovery sets (1-indexed servers)",
        ["family", "computed", "paper", "match"],
        rows,
    )
    assert all(r[3] for r in rows)


def test_example1_reencoding_walkthrough(benchmark):
    """The execution beta of Sec. 1.2, replayed on the code primitives."""

    def walkthrough():
        code = example1_code(PrimeField(257))
        f = code.field
        # versions X_j(i): three writes to X1, two to X2, two to X3
        x1 = {i: np.array([10 + i]) for i in (1, 2, 3)}
        x2 = {i: np.array([20 + i]) for i in (1, 2)}
        x3 = {i: np.array([30 + i]) for i in (1, 2)}
        # node states from the paper's execution
        y4 = code.encode(3, [x1[3], x2[1], x3[2]])  # X1(3)+X2(1)+X3(2)
        y5 = code.encode(4, [x1[2], x2[1], x3[1]])  # X1(2)+2X2(1)+X3(1)
        # node 4 re-encodes: cancel X1(3), roll X3 back to version 1
        y4p = code.reencode(3, y4, 0, x1[3], code.zero_value())
        y4p = code.reencode(3, y4p, 2, x3[2], x3[1])  # = X2(1) + X3(1)
        # node 5 re-encodes: apply X1(2) from its local history
        y4pp = code.reencode(3, y4p, 0, code.zero_value(), x1[2])
        # now Y4'' = X1(2) + X2(1) + X3(1): decode X2(1) from {4, 5}
        decoded = code.decode(1, {3: y4pp, 4: y5})
        return x2[1], decoded

    expected, decoded = once(benchmark, walkthrough)
    assert np.array_equal(decoded, expected)
    print("\nSec. 1.2 walkthrough: node 5 decoded X2(1) =", decoded, "(correct)")
