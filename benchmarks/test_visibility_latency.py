"""Visibility latency: how long until a write is readable everywhere?

Causal stores hide propagation behind local acks; the operational question
is the *visibility* lag -- the time from a write's invocation until every
server has applied it.  In the paper's model this is governed purely by
one-way network delays plus causal-application waits, and crucially it is
independent of the garbage-collection period (GC deletes history, it does
not gate visibility).  This bench measures the write-to-globally-visible
distribution for CausalEC on the AWS topology and checks:

* median global visibility ~ the largest one-way delay from the writing DC
  (here: Seoul's farthest neighbour, London at 240/2 = 120 ms);
* visibility is unchanged across a 32x sweep of T_gc.
"""

import numpy as np

from repro import (
    CausalECCluster,
    MatrixLatency,
    PrimeField,
    ServerConfig,
    six_dc_code,
)
from repro.analysis import Topology
from repro.workloads import ClosedLoopDriver, WorkloadConfig

from bench_utils import fmt, once, print_table


def measure_visibility(t_gc: float, seed: int = 0):
    topo = Topology.aws_six_dc()
    code = six_dc_code(PrimeField(257))
    cluster = CausalECCluster(
        code,
        latency=MatrixLatency(topo.rtt, local=0.1),
        seed=seed,
        config=ServerConfig(gc_interval=t_gc, record_visibility=True),
    )
    driver = ClosedLoopDriver(
        cluster, num_objects=code.K, client_sites=[0],  # writers at Seoul
        config=WorkloadConfig(
            ops_per_client=30, read_ratio=0.0, think_time_mean=400.0, seed=seed
        ),
    )
    driver.run()
    cluster.run(for_time=10_000)

    # per write: invocation time -> max visibility time across servers
    seen: dict = {}
    for s in cluster.servers:
        for t, obj, tag in s.visibility_log:
            key = (obj, tag)
            seen.setdefault(key, []).append(t)
    lags = []
    for w in cluster.history.writes():
        times = seen.get((w.obj, w.tag), [])
        if len(times) == code.N:  # visible everywhere
            lags.append(max(times) - w.invoke_time)
    return np.array(lags)


def test_visibility_latency(benchmark):
    def sweep():
        return {t: measure_visibility(t) for t in (25.0, 200.0, 800.0)}

    results = once(benchmark, sweep)
    rows = []
    for t_gc, lags in results.items():
        rows.append(
            [
                fmt(t_gc, 0) + " ms",
                len(lags),
                fmt(float(np.median(lags)), 1),
                fmt(float(np.percentile(lags, 95)), 1),
                fmt(float(lags.max()), 1),
            ]
        )
    print_table(
        "Write visibility lag from Seoul (6-DC topology)",
        ["T_gc", "writes", "p50 (ms)", "p95 (ms)", "max (ms)"],
        rows,
    )

    topo = Topology.aws_six_dc()
    worst_one_way = float(topo.rtt[0].max()) / 2  # Seoul -> London: 120 ms
    medians = [float(np.median(lags)) for lags in results.values()]
    for m in medians:
        # visibility ~ the farthest one-way delay (plus the client hop and
        # any causal-application wait); well under one round trip
        assert worst_one_way <= m <= worst_one_way + 30.0
    # GC period does not gate visibility
    assert max(medians) - min(medians) < 5.0
