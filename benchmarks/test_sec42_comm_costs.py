"""Sec. 4.2: read/write communication costs.

The paper's low-cost-variant accounting (val_inq to one recovery set,
Lamport timestamps):

* read cost  = O(k) B + O(k^2 log L)
* write cost = O(N) B + O(k^2 log L) + O(N log L)

The write formula charges one Encoding-triggered internal read per write --
the *typical* case, because a version resides in history lists for ~3 GC
periods, so back-to-back writes re-encode directly from history.  This bench
measures CausalEC (recovery-set read policy) for non-systematic RS(k+2, k)
codes in both regimes:

* **warm writes** (previous version still in every history list) against the
  model envelope, and
* **cold writes** (histories fully garbage-collected, forcing internal reads
  at every server) as the worst case the paper's Appendix A bounds by +kB
  per re-encoding server.

Reads are issued against fully garbage-collected servers so they must gather
k codeword symbols and decode -- the paper's O(k)B read path.
"""

import numpy as np
import pytest

from repro import (
    CausalECCluster,
    ConstantLatency,
    CostModel,
    PrimeField,
    ServerConfig,
    reed_solomon_code,
)
from repro.analysis import read_cost_bits, write_cost_bits

from bench_utils import fmt, once, print_table

B = 1024.0  # value size in bits
TAG_BITS = 16.0  # Lamport timestamp (low-cost variant)
READ_KINDS = ("val_inq", "val_resp", "val_resp_encoded")


def measure_for_k(k: int):
    n = k + 2
    code = reed_solomon_code(PrimeField(257), n, k, systematic=False)
    cluster = CausalECCluster(
        code,
        latency=ConstantLatency(1.0),
        config=ServerConfig(
            gc_interval=50.0,
            read_policy="recovery_set",
            read_timeout=500.0,
            cost_model=CostModel(value_bits=B, tag_bits=TAG_BITS, header_bits=0.0),
        ),
    )
    writer = cluster.add_client(0)
    stats = cluster.network.stats

    def total():
        return sum(stats.bits.values())

    # cold start
    for obj in range(k):
        cluster.execute(writer.write(obj, cluster.value(obj + 1)))
    cluster.run(for_time=30.0)  # propagate, but do NOT garbage collect yet

    # warm writes: previous versions still in history lists
    before = total()
    for obj in range(k):
        cluster.execute(writer.write(obj, cluster.value(obj + 10)))
    cluster.run(for_time=30.0)
    warm_write = (total() - before) / k

    # settle fully: GC drains every history list
    cluster.run(for_time=8000)

    # cold writes: re-encoding needs internal reads everywhere
    before = total()
    for obj in range(k):
        cluster.execute(writer.write(obj, cluster.value(obj + 20)))
    cluster.run(for_time=8000)
    cold_write = (total() - before) / k

    # decode-path reads against drained servers
    before_reads = dict(stats.bits)
    reader = cluster.add_client(n - 1)
    for obj in range(k):
        op = cluster.execute(reader.read(obj))
        assert op.done
    read_bits = sum(
        stats.bits.get(kd, 0.0) - before_reads.get(kd, 0.0) for kd in READ_KINDS
    ) / k
    cluster.assert_no_reencoding_errors()
    return read_bits, warm_write, cold_write


def test_sec42_comm_cost_sweep(benchmark):
    def sweep():
        return {k: measure_for_k(k) for k in (2, 3, 4)}

    results = once(benchmark, sweep)
    rows = []
    for k, (read_bits, warm, cold) in results.items():
        n = k + 2
        rows.append(
            [
                f"RS({n},{k})",
                fmt(read_bits / B, 2) + "B",
                fmt(read_cost_bits(k, B, 64) / B, 2) + "B",
                fmt(warm / B, 2) + "B",
                fmt(write_cost_bits(n, k, B, 64) / B, 2) + "B",
                fmt(cold / B, 2) + "B",
            ]
        )
    print_table(
        "Sec. 4.2: measured vs modelled communication cost per op (in B)",
        ["Code", "read", "read model", "warm write", "write model", "cold write"],
        rows,
    )

    for k, (read_bits, warm, cold) in results.items():
        n = k + 2
        # reads: gather >= k-1 remote symbols, within the O(k)B model
        assert (k - 1) * B <= read_bits <= 1.3 * read_cost_bits(k, B, 64)
        # warm writes: app broadcast dominates; within the model envelope
        assert (n - 1) * B <= warm <= 1.3 * write_cost_bits(n, k, B, 64)
        # cold writes cost more (internal reads at every re-encoding server)
        assert cold > warm
        # ... but stay within the Appendix A style bound: app + N servers
        # each running one internal read of <= k symbols (+ metadata slack)
        assert cold <= 1.3 * (n * B + n * k * B)

    # shape: all three grow with k
    for col in range(3):
        series = [results[k][col] for k in (2, 3, 4)]
        assert series[0] < series[2]


def test_sec42_formula_shapes(benchmark):
    def shapes():
        return (
            read_cost_bits(4, 8 * B, 64) / read_cost_bits(4, B, 64),
            (read_cost_bits(8, 0.0, 1024), read_cost_bits(4, 0.0, 1024)),
            write_cost_bits(12, 4, B, 64) - write_cost_bits(6, 4, B, 64),
        )

    b_scaling, (meta8, meta4), n_delta = once(benchmark, shapes)
    # read cost linear in B (metadata fixed)
    assert b_scaling == pytest.approx(8.0, rel=0.2)
    # metadata quadratic in k
    assert meta8 == pytest.approx(4 * meta4)
    # write cost linear in N
    assert n_delta == pytest.approx(6 * (B + np.log2(64)), rel=0.01)
