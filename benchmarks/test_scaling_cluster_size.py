"""Scaling ablation: cluster size N vs latency and message complexity.

Not a paper figure, but the natural question a deployer asks: CausalEC's
writes broadcast ``app`` messages to all N servers (O(N) messages) while
acking locally, so write *latency* should stay flat as N grows while write
*message count* grows linearly; reads touch only a recovery set, so their
message count should track k, not N.  This bench sweeps N for systematic
RS(N, N-2) codes and verifies those shapes.
"""

import pytest

from repro import (
    CausalECCluster,
    ConstantLatency,
    PrimeField,
    ServerConfig,
    reed_solomon_code,
)
from repro.analysis import summarize
from repro.workloads import ClosedLoopDriver, WorkloadConfig

from bench_utils import fmt, once, print_table


def run_at_scale(n: int, seed: int = 0):
    k = n - 2
    code = reed_solomon_code(PrimeField(257), n, k)
    cluster = CausalECCluster(
        code,
        latency=ConstantLatency(1.0),
        seed=seed,
        config=ServerConfig(
            gc_interval=25.0, read_policy="recovery_set", read_timeout=300.0
        ),
    )
    driver = ClosedLoopDriver(
        cluster, num_objects=code.K,
        config=WorkloadConfig(ops_per_client=20, read_ratio=0.5, seed=seed),
    )
    driver.run()
    cluster.run(for_time=4000)
    cluster.assert_no_reencoding_errors()
    stats = summarize(cluster.history)
    writes = len(cluster.history.writes())
    app_msgs = cluster.network.stats.messages.get("app", 0)
    return {
        "n": n,
        "write_p50": stats["write"].p50,
        "read_p50": stats["read"].p50,
        "app_per_write": app_msgs / max(1, writes),
        "total_msgs": cluster.network.stats.total_messages,
        "ops": len(cluster.history),
    }


def test_scaling_cluster_size(benchmark):
    sizes = (4, 6, 8, 10)

    def sweep():
        return [run_at_scale(n) for n in sizes]

    results = once(benchmark, sweep)
    print_table(
        "Scaling: cluster size vs latency and message complexity",
        ["N", "write p50 (ms)", "read p50 (ms)", "app msgs/write", "total msgs"],
        [
            [r["n"], fmt(r["write_p50"], 2), fmt(r["read_p50"], 2),
             fmt(r["app_per_write"], 1), r["total_msgs"]]
            for r in results
        ],
    )

    # write latency flat in N (local writes, Property I)
    p50s = [r["write_p50"] for r in results]
    assert max(p50s) - min(p50s) < 1.0
    # app fan-out is exactly N - 1
    for r in results:
        assert r["app_per_write"] == pytest.approx(r["n"] - 1, abs=0.01)
    # message totals grow with N (O(N) per write dominates)
    totals = [r["total_msgs"] / r["ops"] for r in results]
    assert totals[0] < totals[-1]
