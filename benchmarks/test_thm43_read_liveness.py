"""Theorem 4.3 and Property (II): read liveness and one-round-trip reads.

For the Example 1 (5,3) code, for every object and every minimal recovery
set S, halt every server outside S (plus the reader's home) and verify the
read still terminates with the right value -- and that its latency is one
client round trip plus at most one round trip to S (Property II).

This is the fault-tolerance the paper contrasts against [3, 35], whose
liveness requires the systematic servers to stay up.
"""

import numpy as np

from repro import (
    CausalECCluster,
    ConstantLatency,
    PrimeField,
    ServerConfig,
    example1_code,
)

from bench_utils import fmt, once, print_table

RTT = 10.0  # server-to-server round trip (constant latency 5 ms one way)


def run_case(obj: int, rset: frozenset[int], home: int):
    code = example1_code(PrimeField(257))
    cluster = CausalECCluster(
        code,
        latency=ConstantLatency(RTT / 2),
        config=ServerConfig(gc_interval=50.0),
    )
    writer = cluster.add_client(server=0)
    cluster.execute(writer.write(obj, cluster.value(obj + 40)))
    cluster.run(for_time=2000)  # propagate + GC: uncoded copies are gone

    survivors = set(rset) | {home}
    for s in range(code.N):
        if s not in survivors:
            cluster.halt_server(s)

    reader = cluster.add_client(server=home)
    op = cluster.execute(reader.read(obj))
    assert op.done, (obj, rset, home)
    assert np.array_equal(op.value, cluster.value(obj + 40))
    return op.latency


def enumerate_cases():
    code = example1_code(PrimeField(257))
    cases = []
    for obj in range(code.K):
        for rset in code.minimal_recovery_sets(obj):
            home = min(rset)  # a reader inside the surviving set
            cases.append((obj, rset, home))
    return cases


def test_thm43_liveness_under_halts(benchmark):
    cases = enumerate_cases()

    def run_all():
        return [(obj, rset, home, run_case(obj, rset, home))
                for obj, rset, home in cases]

    results = once(benchmark, run_all)
    rows = [
        [
            f"X{obj + 1}",
            "{" + ",".join(str(s + 1) for s in sorted(rset)) + "}",
            f"s{home + 1}",
            fmt(lat, 1) + " ms",
        ]
        for obj, rset, home, lat in results
    ]
    print_table(
        "Theorem 4.3: reads survive halting all servers outside one "
        "recovery set (Example 1 code)",
        ["object", "surviving recovery set", "reader", "latency"],
        rows,
    )

    assert len(results) == 12  # 4 minimal recovery sets per object x 3
    for obj, rset, home, lat in results:
        # Property (II): at most one round trip to the recovery set on top
        # of the client round trip (client hops are RTT/2 each way here
        # because ConstantLatency applies to every channel)
        if rset == {home}:
            assert lat <= 2 * RTT / 2 + 1e-6  # served locally
        else:
            assert lat <= 2 * RTT / 2 + RTT + 1e-6


def test_thm43_all_but_recovery_set_halted_before_propagation(benchmark):
    """Harsher: servers halt *before* the write fully propagates; the read
    must still terminate once one recovery set plus the writer survive."""

    def run():
        code = example1_code(PrimeField(257))
        cluster = CausalECCluster(
            code,
            latency=ConstantLatency(5.0),
            config=ServerConfig(gc_interval=50.0),
        )
        writer = cluster.add_client(server=0)
        cluster.execute(writer.write(1, cluster.value(77)))
        # halt 2, 4 (0-indexed 1, 3) immediately: {1,3,5} (1-indexed) are
        # alive, containing recovery set {1,3,5} for X2
        cluster.halt_server(1)
        cluster.halt_server(3)
        reader = cluster.add_client(server=4)
        op = cluster.execute(reader.read(1))
        return cluster, op

    cluster, op = once(benchmark, run)
    assert op.done
    assert np.array_equal(op.value, cluster.value(77))
    print(f"\nread after early halts returned in {op.latency:.1f} ms")
