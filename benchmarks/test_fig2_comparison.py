"""Fig. 2 (analytic): latency and communication-cost comparison.

Regenerates the paper's comparison table for the 6-DC deployment of
Sec. 1.1 -- partial replication (via exhaustive placement search),
intra-object Reed-Solomon(6,4), and the cross-object code -- from the
closed-form models, and checks the paper's qualitative claims:

* intra-object coding shaves ~90 ms off partial replication's worst case
  but pays ~1.5x its average latency (throughput, by Little's law);
* cross-object coding matches intra-object's worst case *and* partial
  replication's average, at higher write communication cost.
"""

import pytest

from repro.analysis import (
    Topology,
    cross_object_costs,
    cross_object_latency,
    intra_object_costs,
    intra_object_latency,
    partial_replication_costs,
    search_partial_replication,
)
from repro.ec import six_dc_code

from bench_utils import fmt, once, print_table

PAPER = {
    "Partial Replication": (228, 88.25, "3B/4", "6B"),
    "Intra-Object Coding": (138, 132.5, "3B/4", "6B/4"),
    "Cross-Object Coding": (138, 87.5, "3.33B/4", "12B"),
}


def compute_fig2():
    topo = Topology.aws_six_dc()
    pr = search_partial_replication(topo, 4)
    pr_costs = partial_replication_costs(topo, pr.placement_sets(), 4)
    io = intra_object_latency(topo, k=4)
    io_costs = intra_object_costs(topo, 4)
    code = six_dc_code()
    co = cross_object_latency(topo, code)
    co_costs = cross_object_costs(topo, code)
    return {
        "Partial Replication": (pr.profile, pr_costs),
        "Intra-Object Coding": (io, io_costs),
        "Cross-Object Coding": (co, co_costs),
    }


def test_fig2_comparison_table(benchmark):
    results = once(benchmark, compute_fig2)
    rows = []
    for name, (profile, costs) in results.items():
        p = PAPER[name]
        rows.append(
            [
                name,
                fmt(profile.worst_case, 0),
                fmt(profile.average, 2),
                fmt(costs.read_value_units, 2) + "B",
                fmt(costs.write_value_units, 1) + "B",
                f"(paper: {p[0]}/{p[1]}/{p[2]}/{p[3]})",
            ]
        )
    print_table(
        "Fig. 2: cost and latency comparison (ours vs paper)",
        ["Scheme", "Worst(ms)", "Avg(ms)", "Read", "Write", "Paper"],
        rows,
    )

    pr, io, co = (results[k][0] for k in PAPER)
    pr_c, io_c, co_c = (results[k][1] for k in PAPER)

    # --- headline numbers -------------------------------------------------
    assert pr.worst_case == pytest.approx(228, abs=1)  # paper: 228
    assert pr.average == pytest.approx(88.25, abs=1.0)  # paper: 88.25
    assert io.worst_case == pytest.approx(138, abs=1)  # paper: 138
    assert io.average == pytest.approx(132.5, abs=1.0)  # paper: 132.5
    assert co.average == pytest.approx(87.5, abs=1.0)  # paper: 87.5
    # worst case: we compute 146 where the paper prints 138 (see
    # EXPERIMENTS.md); either way it is within a whisker of intra-object and
    # ~80 ms below partial replication.
    assert co.worst_case <= 146

    # --- the paper's qualitative claims -----------------------------------
    # "a whopping 90ms shaved off the replication scheme"
    assert pr.worst_case - io.worst_case == pytest.approx(90, abs=2)
    # EC store throughput ~66% of replication's (avg-latency proxy)
    assert pr.average / io.average == pytest.approx(0.66, abs=0.03)
    # cross-object: worst case of coding, average of replication
    assert co.worst_case < pr.worst_case - 50
    assert abs(co.average - pr.average) < 2
    # read costs all ~3B/4; cross-object pays more on writes
    assert pr_c.read_value_units == pytest.approx(0.75)
    assert io_c.read_value_units == pytest.approx(0.75)
    assert 0.75 <= co_c.read_value_units <= 1.0
    assert co_c.write_value_units > pr_c.write_value_units
    assert io_c.write_value_units < pr_c.write_value_units
