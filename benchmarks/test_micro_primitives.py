"""Microbenchmarks: the primitive operations underlying CausalEC.

These use pytest-benchmark's statistics properly (many rounds): finite-field
vector arithmetic, encode/decode/re-encode, recovery-set checks, server-side
write/read handling, and raw simulator event throughput.
"""

import numpy as np
import pytest

from repro import (
    CausalECCluster,
    ConstantLatency,
    GF256,
    PrimeField,
    Scheduler,
    example1_code,
    reed_solomon_code,
)

VLEN = 4096


@pytest.fixture(scope="module")
def rs_code():
    return reed_solomon_code(PrimeField(257), 6, 4, value_len=VLEN)


@pytest.fixture(scope="module")
def rs_values(rs_code):
    rng = np.random.default_rng(0)
    return [rs_code.field.random_vector(rng, VLEN) for _ in range(rs_code.K)]


def test_bench_field_add_gf257(benchmark):
    f = PrimeField(257)
    rng = np.random.default_rng(0)
    a, b = f.random_vector(rng, VLEN), f.random_vector(rng, VLEN)
    benchmark(f.add, a, b)


def test_bench_field_scalar_mul_gf256(benchmark):
    rng = np.random.default_rng(0)
    a = GF256.random_vector(rng, VLEN)
    benchmark(GF256.scalar_mul, 7, a)


def test_bench_encode(benchmark, rs_code, rs_values):
    out = benchmark(rs_code.encode, 5, rs_values)
    assert out.shape == (1, VLEN)


def test_bench_reencode(benchmark, rs_code, rs_values):
    sym = rs_code.encode(5, rs_values)
    rng = np.random.default_rng(1)
    new = rs_code.field.random_vector(rng, VLEN)
    benchmark(rs_code.reencode, 5, sym, 2, rs_values[2], new)


def test_bench_decode(benchmark, rs_code, rs_values):
    syms = {s: rs_code.encode(s, rs_values) for s in (0, 2, 4, 5)}
    out = benchmark(rs_code.decode, 1, syms)
    assert np.array_equal(out, rs_values[1])


def test_bench_recovery_check(benchmark):
    code = example1_code(PrimeField(257))

    def check():
        code._recovery_cache.clear()
        code._coeff_cache.clear()
        return code.is_recovery_set({1, 2, 3}, 0)

    assert benchmark(check)


def test_bench_server_write_throughput(benchmark):
    code = example1_code(PrimeField(257))

    def do_writes():
        cluster = CausalECCluster(code, latency=ConstantLatency(0.1))
        client = cluster.add_client(0)
        for i in range(100):
            cluster.execute(client.write(i % 3, cluster.value(i % 250 + 1)))
        return cluster

    cluster = benchmark(do_writes)
    assert len(cluster.history.writes()) == 100


def test_bench_server_local_read_throughput(benchmark):
    code = example1_code(PrimeField(257))
    cluster = CausalECCluster(code, latency=ConstantLatency(0.1))
    client = cluster.add_client(0)
    cluster.execute(client.write(0, cluster.value(5)))

    def do_reads():
        for _ in range(100):
            cluster.execute(client.read(0))

    benchmark(do_reads)


def test_bench_scheduler_event_throughput(benchmark):
    def pump():
        s = Scheduler()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                s.schedule(1.0, tick)

        s.schedule(1.0, tick)
        s.run()
        return count[0]

    assert benchmark(pump) == 10_000
