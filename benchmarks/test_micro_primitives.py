"""Microbenchmarks: the primitive operations underlying CausalEC.

These use pytest-benchmark's statistics properly (many rounds): finite-field
vector arithmetic, encode/decode/re-encode, recovery-set checks, server-side
write/read handling, and raw simulator event throughput.
"""

import numpy as np
import pytest

from bench_utils import best_of, print_table, write_timing_json
from repro import (
    CausalECCluster,
    ConstantLatency,
    GF256,
    PrimeField,
    Scheduler,
    example1_code,
    reed_solomon_code,
)

VLEN = 4096

#: the vectorized-kernel sweep of ISSUE 2: encode/reencode/decode per field
KERNEL_FIELDS = {"gf257": PrimeField(257), "gf256": GF256}
KERNEL_VLENS = (64, 1024, 4096)
#: acceptance floor for kernel vs scalar-reference at value_len=4096
MIN_SPEEDUP = 10.0


@pytest.fixture(scope="module")
def rs_code():
    return reed_solomon_code(PrimeField(257), 6, 4, value_len=VLEN)


@pytest.fixture(scope="module")
def rs_values(rs_code):
    rng = np.random.default_rng(0)
    return [rs_code.field.random_vector(rng, VLEN) for _ in range(rs_code.K)]


def test_bench_field_add_gf257(benchmark):
    f = PrimeField(257)
    rng = np.random.default_rng(0)
    a, b = f.random_vector(rng, VLEN), f.random_vector(rng, VLEN)
    benchmark(f.add, a, b)


def test_bench_field_scalar_mul_gf256(benchmark):
    rng = np.random.default_rng(0)
    a = GF256.random_vector(rng, VLEN)
    benchmark(GF256.scalar_mul, 7, a)


def test_bench_encode(benchmark, rs_code, rs_values):
    out = benchmark(rs_code.encode, 5, rs_values)
    assert out.shape == (1, VLEN)


def test_bench_reencode(benchmark, rs_code, rs_values):
    sym = rs_code.encode(5, rs_values)
    rng = np.random.default_rng(1)
    new = rs_code.field.random_vector(rng, VLEN)
    benchmark(rs_code.reencode, 5, sym, 2, rs_values[2], new)


def test_bench_decode(benchmark, rs_code, rs_values):
    syms = {s: rs_code.encode(s, rs_values) for s in (0, 2, 4, 5)}
    out = benchmark(rs_code.decode, 1, syms)
    assert np.array_equal(out, rs_values[1])


# ---------------------------------------------------------------------------
# vectorized field kernels vs the retained scalar _reference path


@pytest.fixture(scope="module")
def kernel_timings():
    """Collect (op, field, vlen) timing records; dump machine-readable JSON."""
    records: list[dict] = []
    yield records
    if records:
        path = write_timing_json(records, "micro_primitives.json")
        rows = [
            [r["op"], r["field"], r["value_len"],
             f"{r['kernel_s'] * 1e6:.0f}us", f"{r['reference_s'] * 1e3:.2f}ms",
             f"{r['speedup']:.0f}x"]
            for r in records
        ]
        print_table(
            f"EC kernel vs scalar reference (JSON: {path})",
            ["op", "field", "vlen", "kernel", "reference", "speedup"],
            rows,
        )


def _kernel_setup(field, vlen, seed=0):
    code = reed_solomon_code(field, 6, 4, value_len=vlen)
    rng = np.random.default_rng(seed)
    values = [field.random_vector(rng, vlen) for _ in range(code.K)]
    return code, rng, values


@pytest.mark.parametrize("vlen", KERNEL_VLENS)
@pytest.mark.parametrize("field_name", sorted(KERNEL_FIELDS))
def test_kernel_speedup_vs_reference(field_name, vlen, kernel_timings):
    """Encode/reencode/decode kernels vs the scalar-loop reference path.

    Asserts the ISSUE 2 acceptance bar -- >= 10x for encode and decode at
    value_len=4096 -- and records every (op, field, vlen) pair in the timing
    JSON so future PRs can track the perf trajectory.
    """
    field = KERNEL_FIELDS[field_name]
    code, rng, values = _kernel_setup(field, vlen)
    new = field.random_vector(rng, vlen)
    symbols = {s: code.encode(s, values) for s in (0, 2, 4, 5)}
    sym5 = symbols[5]

    pairs = {
        "encode": (
            lambda: code.encode(5, values),
            lambda: code._encode_reference(5, values),
        ),
        "reencode": (
            lambda: code.reencode(5, sym5, 2, values[2], new),
            lambda: code._reencode_reference(5, sym5, 2, values[2], new),
        ),
        "decode": (
            lambda: code.decode(1, symbols),
            lambda: code._decode_reference(1, symbols),
        ),
    }
    for op, (kernel, reference) in pairs.items():
        assert np.array_equal(kernel(), reference())  # bit-identical
        kernel_s = best_of(kernel, rounds=20)
        reference_s = best_of(reference, rounds=3)
        speedup = reference_s / kernel_s
        kernel_timings.append(
            {
                "op": op,
                "field": field_name,
                "value_len": vlen,
                "code": code.name,
                "kernel_s": kernel_s,
                "reference_s": reference_s,
                "speedup": speedup,
            }
        )
        if vlen == 4096 and op in ("encode", "decode"):
            assert speedup >= MIN_SPEEDUP, (
                f"{op}/{field_name}@{vlen}: kernel only {speedup:.1f}x faster "
                f"than the scalar reference (need >= {MIN_SPEEDUP}x)"
            )


@pytest.mark.parametrize("vlen", KERNEL_VLENS)
@pytest.mark.parametrize("field_name", sorted(KERNEL_FIELDS))
@pytest.mark.parametrize("op", ["encode", "reencode", "decode"])
def test_bench_kernel(benchmark, op, field_name, vlen):
    """pytest-benchmark stats for each kernel op at each value length."""
    field = KERNEL_FIELDS[field_name]
    code, rng, values = _kernel_setup(field, vlen)
    if op == "encode":
        out = benchmark(code.encode, 5, values)
        assert out.shape == (1, vlen)
    elif op == "reencode":
        sym = code.encode(5, values)
        new = field.random_vector(rng, vlen)
        out = benchmark(code.reencode, 5, sym, 2, values[2], new)
        assert out.shape == (1, vlen)
    else:
        symbols = {s: code.encode(s, values) for s in (0, 2, 4, 5)}
        out = benchmark(code.decode, 1, symbols)
        assert np.array_equal(out, values[1])


def test_bench_recovery_check(benchmark):
    code = example1_code(PrimeField(257))

    def check():
        code._recovery_cache.clear()
        code._coeff_cache.clear()
        return code.is_recovery_set({1, 2, 3}, 0)

    assert benchmark(check)


def test_bench_server_write_throughput(benchmark):
    code = example1_code(PrimeField(257))

    def do_writes():
        cluster = CausalECCluster(code, latency=ConstantLatency(0.1))
        client = cluster.add_client(0)
        for i in range(100):
            cluster.execute(client.write(i % 3, cluster.value(i % 250 + 1)))
        return cluster

    cluster = benchmark(do_writes)
    assert len(cluster.history.writes()) == 100


def test_bench_server_local_read_throughput(benchmark):
    code = example1_code(PrimeField(257))
    cluster = CausalECCluster(code, latency=ConstantLatency(0.1))
    client = cluster.add_client(0)
    cluster.execute(client.write(0, cluster.value(5)))

    def do_reads():
        for _ in range(100):
            cluster.execute(client.read(0))

    benchmark(do_reads)


def test_bench_scheduler_event_throughput(benchmark):
    def pump():
        s = Scheduler()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                s.schedule(1.0, tick)

        s.schedule(1.0, tick)
        s.run()
        return count[0]

    assert benchmark(pump) == 10_000
