"""Ablation: garbage-collection period vs transient storage and traffic.

DESIGN.md calls out the GC period T_gc as the design knob behind the
Sec. 4.2 storage/overhead trade-off: lazy GC batches deletion work and
shrinks del-message traffic, at the price of longer history lists.  This
bench sweeps T_gc under a fixed write load and reports:

* time-averaged history occupancy (grows with T_gc, per Appendix H),
* del-message count (shrinks with T_gc),
* read latency (unaffected -- reads are wait-free regardless of GC).
"""

import numpy as np

from repro import (
    CausalECCluster,
    PrimeField,
    ServerConfig,
    UniformLatency,
    example1_code,
)
from repro.workloads import ClosedLoopDriver, WorkloadConfig

from bench_utils import fmt, once, print_table


def run_with_gc(t_gc: float, seed: int = 4):
    code = example1_code(PrimeField(257))
    cluster = CausalECCluster(
        code,
        latency=UniformLatency(0.5, 5.0),
        seed=seed,
        config=ServerConfig(gc_interval=t_gc),
    )
    driver = ClosedLoopDriver(
        cluster, num_objects=code.K,
        config=WorkloadConfig(
            ops_per_client=80, read_ratio=0.4, think_time_mean=5.0, seed=seed
        ),
    )
    driver.start()
    samples = []
    while not driver.done():
        cluster.run(for_time=20.0)
        samples.append(cluster.total_history_entries() / cluster.num_servers)
    cluster.run(for_time=30_000)
    cluster.assert_no_reencoding_errors()
    reads = [op.latency for op in cluster.history.reads() if op.done]
    return {
        "occupancy": float(np.mean(samples)),
        "dels": cluster.network.stats.messages.get("del", 0),
        "read_p50": float(np.median(reads)),
        "drained": cluster.total_transient_entries() == 0,
    }


def test_ablation_gc_period(benchmark):
    periods = (10.0, 60.0, 360.0)

    def sweep():
        return {t: run_with_gc(t) for t in periods}

    results = once(benchmark, sweep)
    rows = [
        [
            fmt(t, 0) + " ms",
            fmt(r["occupancy"], 2),
            r["dels"],
            fmt(r["read_p50"], 2) + " ms",
            r["drained"],
        ]
        for t, r in results.items()
    ]
    print_table(
        "Ablation: GC period vs occupancy / del traffic / read latency",
        ["T_gc", "avg history entries", "del msgs", "read p50", "drains"],
        rows,
    )

    occ = [results[t]["occupancy"] for t in periods]
    dels = [results[t]["dels"] for t in periods]
    # occupancy grows with laziness; del traffic shrinks
    assert occ[0] < occ[-1]
    assert dels[0] >= dels[-1]
    # reads stay wait-free and fast regardless of T_gc
    p50s = [results[t]["read_p50"] for t in periods]
    assert max(p50s) - min(p50s) < 5.0
    # Theorem 4.5 holds at every setting
    assert all(results[t]["drained"] for t in periods)
