"""Theorem 4.5 (storage cost): after writes stop, every transient structure
drains and the per-server storage converges to exactly what the erasure code
prescribes (one codeword symbol), i.e. a k-fold saving over replication.

Prints the decay time series of transient state after load stops.
"""

import numpy as np

from repro import (
    CausalECCluster,
    PrimeField,
    ServerConfig,
    UniformLatency,
    example1_code,
)
from repro.consistency.causal import expected_final_value
from repro.workloads import ClosedLoopDriver, WorkloadConfig

from bench_utils import fmt, once, print_table


def run_convergence():
    code = example1_code(PrimeField(257))
    cluster = CausalECCluster(
        code,
        latency=UniformLatency(0.5, 10.0),
        seed=13,
        config=ServerConfig(gc_interval=40.0),
    )
    driver = ClosedLoopDriver(
        cluster, num_objects=code.K,
        config=WorkloadConfig(ops_per_client=60, read_ratio=0.3, seed=13),
    )
    driver.run()  # load phase: writes keep arriving
    series = []
    t0 = cluster.now
    while True:
        series.append((cluster.now - t0, cluster.total_transient_entries()))
        if series[-1][1] == 0 or cluster.now - t0 > 60_000:
            break
        cluster.run(for_time=40.0)
    return cluster, series


def test_thm45_storage_convergence(benchmark):
    cluster, series = once(benchmark, run_convergence)
    shown = series[:: max(1, len(series) // 10)] + [series[-1]]
    print_table(
        "Theorem 4.5: transient entries (history + inqueue + readl) "
        "after writes stop",
        ["t since load stop (ms)", "entries"],
        [[fmt(t, 0), e] for t, e in shown],
    )

    # (a)-(c): everything drains
    assert series[0][1] > 0, "load phase should leave transient state"
    assert series[-1][1] == 0
    for s in cluster.servers:
        assert s.history_size() == 0
        assert len(s.inqueue) == 0
        assert len(s.readl) == 0

    # stable storage = exactly the code's prescription: one symbol, which is
    # 1/K of full replication's per-server K values
    code = cluster.code
    for s in cluster.servers:
        assert s.stored_value_bits(1.0) == code.symbols_at(s.node_id) == 1
    replication_cost = code.K
    assert replication_cost / cluster.server(0).stored_value_bits(1.0) == code.K

    # and the stable codewords encode the arbitration winners
    finals = [
        expected_final_value(cluster.history, obj, code.zero_value())
        for obj in range(code.K)
    ]
    for s in range(code.N):
        assert np.array_equal(cluster.server(s).M.value, code.encode(s, finals))

    print(
        f"\nstable per-server storage: 1 codeword symbol "
        f"(vs {code.K} values under full replication)"
    )
