"""The cost-latency trade-off frontier (the paper's headline claim).

"Our work opens new, desirable, operating points on the cost-latency
trade-offs for data store design" (Sec. 1).  This bench maps those
operating points for the 6-DC topology and K = 4 object groups, sweeping
per-DC storage alpha (symbols per DC, i.e. expansion alpha*N/K):

* alpha = 1: best replication placement vs the Sec. 1.1 cross-object code,
  the auto-designed sum code, and Reed-Solomon(6,4);
* alpha = 2: best two-group-per-DC placement vs RS with two symbols per DC
  (modelled on a clone topology) and a designed-code + placement hybrid;
* alpha = 4: full replication (the latency floor).

Per-DC multi-symbol codes are evaluated on a *cloned topology* (each DC
duplicated per symbol slot, zero RTT between clones), so every existing
single-symbol tool applies unchanged.

Shape assertions: at equal storage, coded points dominate pure placement on
worst-case latency; more storage never hurts; the cross-object points sit
on the frontier the paper claims.
"""

import numpy as np
import pytest

from repro.analysis import (
    Topology,
    cross_object_latency,
    search_partial_replication,
)
from repro.analysis.code_design import design_cross_object_code, sum_code
from repro.ec import PrimeField, reed_solomon_code, six_dc_code

from bench_utils import fmt, once, print_table

F = PrimeField(257)
K = 4


def real_dc_profile(profile, copies: int):
    """Collapse a cloned-topology profile back to the real DCs."""
    lat = profile.latency[::copies]
    return float(lat.max()), float(lat.mean())


def compute_frontier():
    topo = Topology.aws_six_dc()
    points = {}

    # ---- alpha = 1 (expansion 1.5x) -----------------------------------
    pr1 = search_partial_replication(topo, K, slots_per_dc=1)
    points["placement a=1"] = (1, pr1.profile.worst_case, pr1.profile.average)
    hand = cross_object_latency(topo, six_dc_code())
    points["cross-object (paper) a=1"] = (1, hand.worst_case, hand.average)
    designed = design_cross_object_code(topo, K, restarts=3, seed=0)
    points["cross-object (designed) a=1"] = (
        1, designed.profile.worst_case, designed.profile.average,
    )
    rs1 = cross_object_latency(topo, reed_solomon_code(F, 6, K))
    points["RS(6,4) a=1"] = (1, rs1.worst_case, rs1.average)

    # ---- alpha = 2 (expansion 3x) --------------------------------------
    pr2 = search_partial_replication(topo, K, slots_per_dc=2)
    points["placement a=2"] = (2, pr2.profile.worst_case, pr2.profile.average)

    cloned = topo.cloned(2)
    rs2 = cross_object_latency(cloned, reed_solomon_code(F, 12, K))
    points["RS(12,4) a=2"] = (2, *real_dc_profile(rs2, 2))

    # hybrid: each DC stores its designed sum symbol plus its best-placement
    # replica group -- a cheap-to-construct two-symbol code
    assignment = []
    for dc in range(topo.n):
        assignment.append(designed.assignment[dc])
        assignment.append(frozenset({pr1.assignment[dc]}))
    hybrid = sum_code(F, K, assignment)
    hy = cross_object_latency(cloned, hybrid)
    points["designed+placement a=2"] = (2, *real_dc_profile(hy, 2))

    # ---- alpha = 4 (expansion 6x): full replication ---------------------
    points["full replication a=4"] = (4, 0.0, 0.0)
    return points


def test_pareto_frontier(benchmark):
    points = once(benchmark, compute_frontier)
    rows = [
        [name, a, fmt(worst, 1), fmt(avg, 2)]
        for name, (a, worst, avg) in points.items()
    ]
    print_table(
        "Cost-latency operating points (6 DCs, 4 groups; expansion = "
        "1.5 * alpha)",
        ["scheme", "alpha", "worst (ms)", "avg (ms)"],
        rows,
    )

    # equal storage: coded points beat pure placement on worst case
    assert points["cross-object (designed) a=1"][1] < points["placement a=1"][1]
    assert points["RS(6,4) a=1"][1] < points["placement a=1"][1]
    assert points["RS(12,4) a=2"][1] <= points["placement a=2"][1]
    # more storage helps: alpha=2 placement dominates alpha=1 placement
    assert points["placement a=2"][1] <= points["placement a=1"][1]
    assert points["placement a=2"][2] <= points["placement a=1"][2]
    # the designed+placement hybrid keeps coding's worst case while pushing
    # the average toward full replication's
    assert points["designed+placement a=2"][1] <= points["cross-object (designed) a=1"][1]
    assert points["designed+placement a=2"][2] <= points["cross-object (designed) a=1"][2]
    # and the paper's point: the cross-object a=1 schemes open a region no
    # placement at the same storage reaches (placement needs 2x the storage
    # to approach their worst case)
    assert points["cross-object (designed) a=1"][1] < points["placement a=1"][1] - 50
