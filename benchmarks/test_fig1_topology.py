"""Fig. 1: the six-DC AWS topology and its round-trip-time table.

Fig. 1 is input data (measured by the authors via cloudping in Oct 2021);
this bench regenerates the printed table from the embedded matrix and
validates its structural properties.
"""

import numpy as np

from repro.analysis import REGIONS, Topology

from bench_utils import once, print_table


def test_fig1_rtt_table(benchmark):
    topo = once(benchmark, Topology.aws_six_dc)
    rows = [
        [REGIONS[i]] + [int(topo.rtt[i, j]) for j in range(topo.n)]
        for i in range(topo.n)
    ]
    print_table("Fig. 1: inter-DC round-trip times (ms)", ["Regions"] + REGIONS, rows)

    # structural checks
    assert topo.rtt.shape == (6, 6)
    assert np.all(np.diag(topo.rtt) == 0)
    assert np.all(topo.rtt[~np.eye(6, dtype=bool)] > 0)
    # Ireland-London is the closest pair, N.California-Oregon second
    off = topo.rtt + np.eye(6) * 1e9
    assert off.min() == 13
    # the matrix as printed is *nearly* symmetric (Seoul<->Oregon differs)
    asym = np.abs(topo.rtt - topo.rtt.T)
    assert asym.max() == 20  # |126 - 146|
    assert (asym > 0).sum() == 2
