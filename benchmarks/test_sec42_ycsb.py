"""Sec. 4.2 / Appendix H: YCSB transient-storage analysis.

Two parts:

1. **Paper scale (analytic).** The exact Sec. 4.2 computation at 120M
   objects, Zipfian 0.99, 200k req/s, 50% writes, T_gc = 2 min: more than
   95% of objects see rho_w < 1/1000 writes/s, and erasure coding the cold
   95% with dimension k = 4 keeps the average storage cost per EC object at
   roughly (1/k + 0.05) B -- the paper's "a mere 5% overhead".

2. **Simulation validation of the Little's-law model.** A Zipfian workload
   drives a CausalEC cluster; the time-averaged history-list occupancy is
   measured and compared against the Appendix H bound
   ``3 * rho_w * T_gc`` values per object (summed over objects).
"""

import numpy as np
import pytest

from repro import (
    CausalECCluster,
    PrimeField,
    ServerConfig,
    UniformLatency,
    reed_solomon_code,
)
from repro.analysis import analyze_ycsb, history_overhead_values
from repro.workloads import ClosedLoopDriver, WorkloadConfig, ZipfianGenerator

from bench_utils import fmt, once, print_table


def test_ycsb_paper_scale_analytic(benchmark):
    analysis = once(benchmark, analyze_ycsb)
    rows = [
        ["objects", f"{analysis.num_objects:,}", "120M (paper)"],
        ["zipfian theta", analysis.theta, "0.99"],
        ["total write rate", f"{analysis.total_write_rate:,.0f}/s", "100k/s"],
        ["T_gc", f"{analysis.t_gc:.0f} s", "120 s"],
        [
            "objects with rho_w < 1/1000",
            fmt(100 * analysis.fraction_below_threshold, 1) + "%",
            "> 95% (paper)",
        ],
        [
            "avg cost per EC object",
            fmt(analysis.avg_cost_per_ec_object, 3) + "B",
            "(1/k + 0.05)B = 0.30B (paper)",
        ],
        [
            "history overhead",
            fmt(100 * analysis.avg_overhead_values, 1) + "% of B",
            "~5% (paper)",
        ],
    ]
    print_table(
        "Sec. 4.2: YCSB storage analysis (ours vs paper)",
        ["quantity", "ours", "paper"],
        rows,
    )
    assert analysis.fraction_below_threshold > 0.95
    assert analysis.avg_cost_per_ec_object == pytest.approx(0.30, abs=0.02)


def measure_occupancy(t_gc: float, seed: int = 0):
    """Time-averaged history occupancy under a steady Zipfian write load."""
    # value_len=2: room for 257^2 distinct write values (750 writes issued)
    code = reed_solomon_code(PrimeField(257), 5, 3, value_len=2)
    cluster = CausalECCluster(
        code,
        latency=UniformLatency(0.5, 4.0),
        seed=seed,
        config=ServerConfig(gc_interval=t_gc),
    )
    num_objects = code.K
    driver = ClosedLoopDriver(
        cluster,
        num_objects=num_objects,
        keygen=ZipfianGenerator(num_objects, 0.99),
        config=WorkloadConfig(
            ops_per_client=150, read_ratio=0.0, think_time_mean=8.0, seed=seed
        ),
    )
    driver.start()
    samples = []
    horizon = 0.0
    while not driver.done() and horizon < 200_000:
        cluster.run(for_time=25.0)
        horizon += 25.0
        samples.append(cluster.total_history_entries() / cluster.num_servers)
    # per-object write arrival rate over the measured window (writes/ms)
    writes = len(cluster.history.writes())
    rho_total = writes / max(1.0, cluster.now)
    return float(np.mean(samples)), rho_total, num_objects


def test_ycsb_littles_law_validation(benchmark):
    def sweep():
        return {t_gc: measure_occupancy(t_gc) for t_gc in (20.0, 80.0, 320.0)}

    results = once(benchmark, sweep)
    rows = []
    for t_gc, (occupancy, rho_total, num_objects) in results.items():
        bound = history_overhead_values(rho_total, t_gc)  # summed over objects
        rows.append(
            [
                fmt(t_gc, 0) + " ms",
                fmt(occupancy, 2),
                fmt(bound, 2),
                fmt(occupancy / max(bound, 1e-9), 2),
            ]
        )
    print_table(
        "Appendix H: measured occupancy vs 3*rho_w*T_gc bound "
        "(values per server)",
        ["T_gc", "measured", "bound", "ratio"],
        rows,
    )

    occupancies = [results[t][0] for t in (20.0, 80.0, 320.0)]
    # occupancy grows with the GC period ...
    assert occupancies[0] < occupancies[-1]
    # ... and the Appendix H bound holds (with slack for sampling noise)
    for t_gc, (occupancy, rho_total, _) in results.items():
        bound = history_overhead_values(rho_total, t_gc)
        assert occupancy <= bound * 1.25 + 1.0
