"""Macro throughput/latency baseline on the live asyncio cluster.

The first end-to-end perf trajectory point (ROADMAP item 2): an open-loop
Poisson workload (the paper's Sec. 4.2 arrival-rate model) drives a real
TCP cluster at fixed cluster-wide rates and records sustained ops/s,
p50/p99/p999 latency, and the wire-level frames-per-op / flushes-per-op
metrics into ``BENCH_macro.json``.

An unbatched comparison lane re-runs the first rate with the per-tick
flush coalescing disabled (one ``writer.write`` and one ack per frame);
the batched path must put measurably fewer frames on the wire per
completed operation.

The JSON lands at ``$MACRO_BENCH_JSON`` when set (CI uploads it as an
artifact), else ``benchmarks/.bench_out/BENCH_macro.json``; runs are
**appended** (stamped with git SHA + UTC timestamp) so the file
accumulates a history across runs; the ``repro bench-macro`` CLI runs
the same sweep standalone.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import pytest

from bench_utils import fmt, print_table
from repro.workloads.live_open_loop import run_macro_sweep
from repro.workloads.records import RUNS_SCHEMA, append_bench_record

RATES = (60.0, 120.0)
DURATION = 1.2  # seconds of arrivals per lane


@pytest.fixture(scope="module")
def payload():
    return run_macro_sweep(
        rates=RATES, duration=DURATION, value_len=64, seed=7
    )


def test_sweep_covers_both_rates_with_finite_percentiles(payload):
    batched = [r for r in payload["results"] if r["batch"]]
    assert {r["rate"] for r in batched} == set(RATES)
    for r in batched:
        # open-loop arrivals at rate*duration; most must complete
        assert r["offered"] > 0.5 * r["rate"] * DURATION
        assert r["completed"] >= 0.8 * r["offered"]
        assert r["ops_per_s"] > 0
        for key in ("p50_ms", "p99_ms", "p999_ms"):
            assert r[key] is not None and math.isfinite(r[key])
        assert r["p50_ms"] <= r["p99_ms"] <= r["p999_ms"]


def test_batched_flush_sends_fewer_frames_per_op(payload):
    batched = next(
        r for r in payload["results"] if r["batch"] and r["rate"] == RATES[0]
    )
    unbatched = next(r for r in payload["results"] if not r["batch"])
    assert unbatched["rate"] == RATES[0]  # same workload, only batch differs
    # the coalesced flush path must measurably cut both metrics: fewer
    # write syscalls (flushes) and fewer frames (coalesced cumulative acks)
    assert batched["flushes_per_op"] < 0.9 * unbatched["flushes_per_op"]
    assert batched["frames_per_op"] < 0.97 * unbatched["frames_per_op"]


def test_emit_bench_macro_json(payload, capsys):
    rows = [
        [
            f"{r['rate']:g}",
            "on" if r["batch"] else "off",
            r["offered"],
            r["completed"],
            fmt(r["ops_per_s"], 1),
            fmt(r["p50_ms"]),
            fmt(r["p99_ms"]),
            fmt(r["p999_ms"]),
            fmt(r["frames_per_op"], 1),
            fmt(r["flushes_per_op"], 1),
        ]
        for r in payload["results"]
    ]
    with capsys.disabled():
        print_table(
            "macro throughput (live cluster, open-loop Poisson)",
            ["rate", "batch", "offered", "done", "ops/s", "p50ms", "p99ms",
             "p999ms", "frames/op", "flushes/op"],
            rows,
        )
    target = os.environ.get("MACRO_BENCH_JSON")
    path = (
        Path(target)
        if target
        else Path(__file__).parent / ".bench_out" / "BENCH_macro.json"
    )
    append_bench_record(path, payload)
    doc = json.loads(path.read_text())
    assert doc["schema"] == RUNS_SCHEMA
    run = doc["runs"][-1]
    assert run["schema"] == "repro-macro-bench/v1"
    assert "git_sha" in run and "recorded_at" in run
