#!/usr/bin/env bash
# Regenerate every paper artefact and record the outputs.
#
#   ./scripts/reproduce.sh [outdir]
#
# Runs the full correctness suite, then every benchmark with table output,
# teeing results into outdir (default: ./reproduction-results).
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-reproduction-results}"
mkdir -p "$OUT"

echo "== correctness suite =="
python3 -m pytest tests/ 2>&1 | tee "$OUT/test_output.txt" | tail -1

echo "== benchmarks (figures/tables) =="
python3 -m pytest benchmarks/ --benchmark-only -s 2>&1 \
  | tee "$OUT/bench_output.txt" | grep -E "^===|passed|failed" || true

echo "== analytic tables via CLI =="
python3 -m repro fig2 | tee "$OUT/fig2.txt"
python3 -m repro ycsb | tee "$OUT/ycsb.txt"

echo
echo "results written to $OUT/"
