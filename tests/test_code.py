"""Tests for LinearCode: encoding, recovery sets, decoding, re-encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import GF256, LinearCode, PrimeField, example1_code

F = PrimeField(257)


def random_values(code, rng):
    return [code.field.random_vector(rng, code.value_len) for _ in range(code.K)]


# ---------------------------------------------------------------------------
# construction and structure


def test_rejects_zero_objects():
    with pytest.raises(ValueError):
        LinearCode(F, 0, [np.array([[1]])])


def test_rejects_bad_value_len():
    with pytest.raises(ValueError):
        LinearCode(F, 1, [np.array([[1]])], value_len=0)


def test_rejects_wrong_columns():
    with pytest.raises(ValueError):
        LinearCode(F, 3, [np.array([[1, 0]])])


def test_one_dim_matrix_promoted():
    code = LinearCode(F, 2, [[1, 1]])
    assert code.symbols_at(0) == 1


def test_objects_at():
    code = LinearCode(F, 3, [[1, 0, 1], [0, 2, 0], [0, 0, 0]])
    assert code.objects_at(0) == {0, 2}
    assert code.objects_at(1) == {1}
    assert code.objects_at(2) == frozenset()


def test_multi_symbol_server():
    code = LinearCode(F, 2, [np.array([[1, 0], [0, 1]])])
    assert code.symbols_at(0) == 2
    assert code.objects_at(0) == {0, 1}


# ---------------------------------------------------------------------------
# encoding / decoding


def test_encode_matches_manual(small_code):
    rng = np.random.default_rng(0)
    xs = random_values(small_code, rng)
    f = small_code.field
    expected = f.add(f.add(xs[0], f.scalar_mul(2, xs[1])), xs[2])
    assert np.array_equal(small_code.encode(4, xs)[0], expected)


def test_encode_requires_k_values(small_code):
    with pytest.raises(ValueError):
        small_code.encode(0, [small_code.zero_value()])


def test_decode_from_each_minimal_recovery_set(small_code):
    rng = np.random.default_rng(1)
    xs = random_values(small_code, rng)
    syms = {s: small_code.encode(s, xs) for s in range(small_code.N)}
    for k in range(small_code.K):
        for rset in small_code.minimal_recovery_sets(k):
            got = small_code.decode(k, {s: syms[s] for s in rset})
            assert np.array_equal(got, xs[k]), (k, rset)


def test_decode_returns_none_for_insufficient(small_code):
    rng = np.random.default_rng(2)
    xs = random_values(small_code, rng)
    syms = {s: small_code.encode(s, xs) for s in range(small_code.N)}
    # {4, 5} recovers X2 but not X1 or X3
    assert small_code.decode(0, {3: syms[3], 4: syms[4]}) is None
    assert small_code.decode(2, {3: syms[3], 4: syms[4]}) is None


def test_is_recovery_set_superset_closed(small_code):
    for k in range(small_code.K):
        for rset in small_code.minimal_recovery_sets(k):
            superset = set(rset) | {0, 1}
            assert small_code.is_recovery_set(superset, k)


def test_multi_symbol_decode():
    """A server storing two symbols contributes both to decoding."""
    code = LinearCode(F, 2, [np.array([[1, 1], [1, 2]]), np.array([[1, 0]])])
    rng = np.random.default_rng(3)
    xs = [code.field.random_vector(rng, 1) for _ in range(2)]
    syms = {0: code.encode(0, xs)}
    assert np.array_equal(code.decode(0, syms), xs[0])
    assert np.array_equal(code.decode(1, syms), xs[1])


# ---------------------------------------------------------------------------
# re-encoding (Definition 4)


@pytest.mark.parametrize("field", [PrimeField(7), PrimeField(257), GF256], ids=repr)
def test_reencode_definition4(field):
    """Gamma(Phi(x), x_k, x'_k) = Phi(x') for x, x' differing in slot k."""
    if field.characteristic == 2:
        code = LinearCode(field, 3, [[1, 1, 1], [1, 2, 3]], value_len=2)
    else:
        code = example1_code(field, value_len=2)

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def check(data):
        rng = np.random.default_rng(data.draw(st.integers(0, 100_000)))
        xs = [field.random_vector(rng, code.value_len) for _ in range(code.K)]
        k = data.draw(st.integers(0, code.K - 1))
        s = data.draw(st.integers(0, code.N - 1))
        new = field.random_vector(rng, code.value_len)
        xs2 = list(xs)
        xs2[k] = new
        sym = code.encode(s, xs)
        # direct swap
        assert np.array_equal(
            code.reencode(s, sym, k, xs[k], new), code.encode(s, xs2)
        )
        # two-step: remove then apply (the protocol's cancellation path)
        removed = code.reencode(s, sym, k, xs[k], code.zero_value())
        applied = code.reencode(s, removed, k, code.zero_value(), new)
        assert np.array_equal(applied, code.encode(s, xs2))

    check()


def test_reencode_noop_when_equal(small_code):
    rng = np.random.default_rng(4)
    xs = random_values(small_code, rng)
    sym = small_code.encode(3, xs)
    out = small_code.reencode(3, sym, 0, xs[0], xs[0])
    assert np.array_equal(out, sym)
    assert out is not sym  # pure: returns a copy


def test_reencode_does_not_mutate_input(small_code):
    rng = np.random.default_rng(5)
    xs = random_values(small_code, rng)
    sym = small_code.encode(3, xs)
    before = sym.copy()
    small_code.reencode(3, sym, 1, xs[1], small_code.zero_value())
    assert np.array_equal(sym, before)


def test_reencode_unstored_object_is_noop(small_code):
    """Re-encoding object X1 at server 2 (which stores only X2) is a no-op."""
    rng = np.random.default_rng(6)
    xs = random_values(small_code, rng)
    sym = small_code.encode(1, xs)
    new = small_code.field.random_vector(rng, small_code.value_len)
    assert np.array_equal(small_code.reencode(1, sym, 0, xs[0], new), sym)


# ---------------------------------------------------------------------------
# misc


def test_zero_symbol_shape(small_code):
    z = small_code.zero_symbol(0)
    assert z.shape == (1, small_code.value_len)
    assert not np.any(z)


def test_recovery_servers(small_code):
    assert small_code.recovery_servers(0) == frozenset(range(5))


def test_is_mds_false_for_example1(small_code):
    # servers {2,4,5} (1-indexed) cannot recover X1: y5 - y4 = x2 duplicates
    # y2, so Example 1's code is not MDS -- which is why its recovery sets
    # are the irregular families listed in Sec. 1.2.
    assert not small_code.is_mds()
    assert not small_code.is_recovery_set({1, 3, 4}, 0)  # 0-indexed {2,4,5}


def test_is_mds_false_for_multi_symbol():
    code = LinearCode(F, 2, [np.array([[1, 0], [0, 1]]), np.array([[1, 1]])])
    assert not code.is_mds()
