"""Batched flush, backpressure, and retransmit age gating on the live ARQ.

Regression tests for the throughput-first send path:

* **coalescing** -- frames enqueued in one event-loop tick leave in a
  single ``writer.write`` of concatenated frames that decodes back to the
  exact message sequence;
* **backpressure** -- while the transport sits over its high-water mark
  the channel stops feeding the socket (data frames wait in ``unacked``)
  and replays the skipped tail after ``drain()``, with no loss or
  reordering, chaos drops included;
* **age gating** -- the retransmission pass only re-sends unacked frames
  whose last transmission attempt is older than the interval (the old
  loop re-sent the whole tail every pass, multiplying chaos ``dup`` fates);
* **shutdown** -- real task failures surface in the log instead of being
  swallowed together with ``CancelledError``.

The channel-level tests drive a :class:`_PeerChannel` against a fake
``StreamWriter`` with a controllable drain gate and write-buffer size; the
end-to-end test runs a real batched cluster under chaos.
"""

from __future__ import annotations

import asyncio
import logging
import struct

from repro.consistency.causal import check_causal_consistency
from repro.ec.codes import example1_code
from repro.protocol.client_core import RetryPolicy
from repro.runtime import wire
from repro.runtime.asyncio_rt import (
    RETRANSMIT_INTERVAL,
    AsyncioCluster,
    _PeerChannel,
)
from repro.runtime.chaos_rt import LiveFaultInjector
from repro.sim.network import LinkFaults


class _FakeTransport:
    def __init__(self):
        self.buffer_size = 0

    def get_write_buffer_limits(self):
        return (16, 64)

    def get_write_buffer_size(self):
        return self.buffer_size

    def is_closing(self):
        return False


class _FakeWriter:
    """Collects writes; ``drain()`` blocks while ``drain_gate`` is unset."""

    def __init__(self):
        self.transport = _FakeTransport()
        self.writes: list[bytes] = []
        self.drain_gate: asyncio.Event | None = None

    def write(self, data):
        self.writes.append(bytes(data))

    async def drain(self):
        if self.drain_gate is not None:
            await self.drain_gate.wait()

    def close(self):
        pass


class _StubServer:
    batch = True
    chaos = None
    node_id = 0
    peers: dict = {}

    def __init__(self):
        self.frames_sent = 0
        self.flushes = 0


def _frames(blobs: list[bytes]) -> list:
    """Split concatenated wire frames back into decoded payloads."""
    data = b"".join(blobs)
    out, pos = [], 0
    while pos < len(data):
        (length,) = struct.unpack(">I", data[pos : pos + 4])
        out.append(wire.decode_frame(data[pos : pos + 4 + length]))
        pos += 4 + length
    return out


def _receive(frames: list) -> tuple[list, int]:
    """Replay the listener's watermark + out-of-order buffer over frames."""
    last, ooo, out = 0, {}, []
    for f in frames:
        if f[0] != "d":
            continue
        seq, msg = f[1], f[2]
        if seq > last:
            ooo[seq] = msg
            while last + 1 in ooo:
                last += 1
                out.append(ooo.pop(last))
    return out, last


def _channel(stub: _StubServer) -> tuple[_PeerChannel, _FakeWriter]:
    ch = _PeerChannel(stub, 1)
    fake = _FakeWriter()
    ch.writer = fake
    return ch, fake


def test_batched_sends_coalesce_into_single_write():
    async def run():
        stub = _StubServer()
        ch, fake = _channel(stub)
        ch._flush_task = asyncio.ensure_future(ch._flush_loop())
        msgs = [("payload", k) for k in range(5)]
        for m in msgs:
            ch.send(m)
        await asyncio.sleep(0.02)
        # one tick, one write -- not one write per frame
        assert len(fake.writes) == 1
        frames = _frames(fake.writes)
        assert [f[2] for f in frames] == msgs
        delivered, last = _receive(frames)
        assert delivered == msgs and last == len(msgs)
        assert stub.frames_sent == 5 and stub.flushes == 1
        await ch.stop()

    asyncio.run(run())


def test_backpressure_pauses_enqueue_and_replays_without_loss():
    async def run():
        stub = _StubServer()
        ch, fake = _channel(stub)
        fake.drain_gate = asyncio.Event()  # unset: drain() parks
        fake.transport.buffer_size = 1 << 20  # over the high-water mark
        ch._flush_task = asyncio.ensure_future(ch._flush_loop())
        for k in range(3):
            ch.send(("payload", k))
        await asyncio.sleep(0.02)
        # the flusher wrote the first batch, then parked in drain()
        assert ch._paused
        writes_before = len(fake.writes)
        for k in range(3, 6):
            ch.send(("payload", k))
        await asyncio.sleep(0.02)
        # over the high-water mark nothing new reaches the socket: the
        # skipped frames wait in unacked, not in an unbounded pending list
        assert len(fake.writes) == writes_before
        assert not ch._pending
        assert ch._stall_from == 4
        # the peer drains us; the flusher replays the skipped tail
        fake.transport.buffer_size = 0
        fake.drain_gate.set()
        await asyncio.sleep(0.02)
        delivered, last = _receive(_frames(fake.writes))
        assert last == 6
        assert delivered == [("payload", k) for k in range(6)]
        await ch.stop()

    asyncio.run(run())


def test_backpressure_under_chaos_drops_no_loss_no_reorder():
    async def run():
        stub = _StubServer()
        stub.chaos = LiveFaultInjector(
            LinkFaults(drop_prob=0.3, dup_prob=0.2, seed=11)
        )
        stub.chaos.arm(asyncio.get_running_loop())
        ch, fake = _channel(stub)
        ch._flush_task = asyncio.ensure_future(ch._flush_loop())
        total = 20
        for k in range(total):
            ch.send(("payload", k))
            if k == 9:
                # squeeze the transport mid-burst
                fake.drain_gate = asyncio.Event()
                fake.transport.buffer_size = 1 << 20
        await asyncio.sleep(0.03)
        fake.transport.buffer_size = 0
        fake.drain_gate.set()
        # drive acks + aged retransmissions until everything landed
        loop = asyncio.get_running_loop()
        last = 0
        for _ in range(200):
            await asyncio.sleep(0.005)
            _, last = _receive(_frames(fake.writes))
            ch._on_ack(last)
            if last == total:
                break
            ch._retransmit_pass(loop.time() + RETRANSMIT_INTERVAL)
        delivered, last = _receive(_frames(fake.writes))
        assert last == total, f"stalled at seq {last}"
        assert delivered == [("payload", k) for k in range(total)]
        assert stub.chaos.dropped > 0  # the chaos really bit
        await ch.stop()

    asyncio.run(run())


def test_retransmit_pass_is_age_gated():
    async def run():
        stub = _StubServer()
        stub.batch = False  # direct writes make the frame count visible
        ch, fake = _channel(stub)
        loop = asyncio.get_running_loop()
        ch.send(("payload", 1))
        ch.send(("payload", 2))
        sent_before = len(fake.writes)
        # both frames were transmitted microseconds ago: a pass now must
        # re-send nothing (the old loop re-sent the entire tail)
        assert ch._retransmit_pass(loop.time()) == 0
        assert len(fake.writes) == sent_before
        # once their age exceeds the interval they do go out again
        assert ch._retransmit_pass(loop.time() + RETRANSMIT_INTERVAL) == 2
        assert len(fake.writes) == sent_before + 2
        # acked frames leave the tail and the age map
        ch._on_ack(2)
        assert ch._retransmit_pass(loop.time() + 1.0) == 0
        assert not ch._last_tx
        await ch.stop()

    asyncio.run(run())


def test_stop_logs_real_task_failures(caplog):
    async def run():
        ch = _PeerChannel(_StubServer(), 1)

        async def boom():
            raise RuntimeError("wire codec exploded")

        ch.task = asyncio.ensure_future(boom())
        await asyncio.sleep(0)  # let the task fail before stop()
        await ch.stop()

    with caplog.at_level(logging.ERROR, logger="repro.runtime.asyncio_rt"):
        asyncio.run(run())
    failures = [r for r in caplog.records if "failed during stop" in r.message]
    assert failures, "real task failure was swallowed by stop()"
    assert "wire codec exploded" in str(failures[0].exc_info)


def test_stop_stays_quiet_on_clean_cancellation(caplog):
    async def run():
        ch = _PeerChannel(_StubServer(), 1)

        async def sleeper():
            await asyncio.sleep(60)

        ch.task = asyncio.ensure_future(sleeper())
        await asyncio.sleep(0)
        await ch.stop()

    with caplog.at_level(logging.ERROR, logger="repro.runtime.asyncio_rt"):
        asyncio.run(run())
    assert not [r for r in caplog.records if "failed during stop" in r.message]


def test_batched_cluster_end_to_end_under_chaos():
    """A real batched cluster under drops/dups stays causally consistent,
    and the flush coalescing actually happens (flushes < frames)."""
    code = example1_code()

    async def run():
        injector = LiveFaultInjector(
            LinkFaults(drop_prob=0.15, dup_prob=0.1, seed=7)
        )
        cluster = AsyncioCluster(
            code,
            retry=RetryPolicy(timeout=40.0, backoff=1.5, max_retries=8),
            chaos=injector,
        )
        await cluster.start()
        clients = [await cluster.add_client(i % code.N) for i in range(3)]
        for k in range(8):
            op = await clients[k % 3].write(k % code.K, cluster.value(k + 1))
            assert not op.failed
        for c in clients:
            op = await c.read(0)
            assert not op.failed
        injector.disable()
        await cluster.quiesce()
        check_causal_consistency(cluster.history, code.zero_value())
        stats = cluster.frame_stats()
        assert stats["flushes"] < stats["frames_sent"]
        await cluster.shutdown()

    asyncio.run(run())
