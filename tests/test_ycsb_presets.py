"""Tests for the YCSB core-workload presets and the latest distribution."""

import numpy as np
import pytest

from repro import (
    CausalECCluster,
    PrimeField,
    ServerConfig,
    UniformLatency,
    example1_code,
)
from repro.consistency import (
    check_causal_bad_patterns,
    check_causal_consistency,
)
from repro.workloads import (
    YCSB_PRESETS,
    ClosedLoopDriver,
    LatestGenerator,
    WorkloadConfig,
    ycsb_preset,
)


# ---------------------------------------------------------------------------
# presets


def test_preset_lookup_case_insensitive():
    assert ycsb_preset("a").name == "A"
    assert ycsb_preset("F").read_modify_write


def test_preset_unknown():
    with pytest.raises(ValueError, match="unknown YCSB preset"):
        ycsb_preset("E")


def test_preset_catalog():
    assert set(YCSB_PRESETS) == {"A", "B", "C", "D", "F"}
    assert YCSB_PRESETS["C"].read_ratio == 1.0
    assert YCSB_PRESETS["D"].distribution == "latest"


def test_preset_keygen_types():
    from repro.workloads import ZipfianGenerator

    assert isinstance(ycsb_preset("A").make_keygen(10), ZipfianGenerator)
    assert isinstance(ycsb_preset("D").make_keygen(10), LatestGenerator)


# ---------------------------------------------------------------------------
# latest distribution


def test_latest_prefers_newest():
    g = LatestGenerator(100, theta=0.99)
    g.newest = 50
    rng = np.random.default_rng(0)
    samples = [g.sample(rng) for _ in range(5000)]
    # the newest key must be the modal sample
    counts = np.bincount(samples, minlength=100)
    assert counts.argmax() == 50


def test_latest_advance_shifts_hotspot():
    g = LatestGenerator(10)
    assert g.advance() == 1
    assert g.advance() == 2
    rng = np.random.default_rng(1)
    samples = [g.sample(rng) for _ in range(3000)]
    counts = np.bincount(samples, minlength=10)
    assert counts.argmax() == 2


def test_latest_wraps_around():
    g = LatestGenerator(3)
    for _ in range(5):
        g.advance()
    assert g.newest == 2
    rng = np.random.default_rng(2)
    assert all(0 <= g.sample(rng) < 3 for _ in range(100))


# ---------------------------------------------------------------------------
# driver integration


def run_preset(name, seed=0, ops=30):
    code = example1_code(PrimeField(257))
    cluster = CausalECCluster(
        code, latency=UniformLatency(0.5, 8.0), seed=seed,
        config=ServerConfig(gc_interval=25.0),
    )
    driver = ClosedLoopDriver(
        cluster, num_objects=code.K, preset=ycsb_preset(name),
        config=WorkloadConfig(ops_per_client=ops, seed=seed),
    )
    driver.run()
    cluster.run(for_time=3000)
    return cluster


@pytest.mark.parametrize("name", sorted(YCSB_PRESETS))
def test_presets_run_causally(name):
    cluster = run_preset(name)
    cluster.assert_no_reencoding_errors()
    zero = cluster.code.zero_value()
    check_causal_consistency(cluster.history, zero)
    check_causal_bad_patterns(cluster.history, zero)


def test_workload_c_is_read_only():
    cluster = run_preset("C")
    assert not cluster.history.writes()


def test_workload_b_mostly_reads():
    cluster = run_preset("B", ops=60)
    reads = len(cluster.history.reads())
    assert reads / len(cluster.history) > 0.85


def test_workload_f_pairs_reads_with_writes():
    cluster = run_preset("F", ops=40)
    writes = cluster.history.writes()
    reads = cluster.history.reads()
    assert writes, "workload F must produce write-backs"
    # every write is a write-back of the key read immediately before it by
    # the same client
    by_client = cluster.history.by_client()
    for ops in by_client.values():
        for prev, nxt in zip(ops, ops[1:]):
            if nxt.kind == "write":
                assert prev.kind == "read" and prev.obj == nxt.obj


def test_workload_d_writes_follow_recency():
    cluster = run_preset("D", ops=60, seed=3)
    writes = cluster.history.writes()
    if len(writes) >= 2:
        # inserts advance cyclically: consecutive written keys differ
        keys = [w.obj for w in writes]
        assert any(a != b for a, b in zip(keys, keys[1:])) or len(set(keys)) == 1
