"""Tests for finite-field linear algebra (rref, solve, invert)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import GF256, PrimeField
from repro.ec.matrix import in_rowspan, invert, matmul, rank, rref, solve_left

F7 = PrimeField(7)


def test_rref_identity():
    eye = np.eye(3, dtype=F7.dtype)
    red, pivots = rref(F7, eye)
    assert np.array_equal(red, eye)
    assert pivots == [0, 1, 2]


def test_rref_dependent_rows():
    a = np.array([[1, 2, 3], [2, 4, 6], [0, 1, 1]], dtype=F7.dtype)
    assert rank(F7, a) == 2


def test_rref_rejects_non_matrix():
    with pytest.raises(ValueError):
        rref(F7, np.array([1, 2, 3]))


def test_rank_zero_matrix():
    assert rank(F7, np.zeros((3, 4), dtype=F7.dtype)) == 0


def test_matmul_matches_integer_matmul_mod_p():
    rng = np.random.default_rng(1)
    a = rng.integers(0, 7, size=(3, 4)).astype(F7.dtype)
    b = rng.integers(0, 7, size=(4, 2)).astype(F7.dtype)
    expected = (a.astype(np.int64) @ b.astype(np.int64)) % 7
    assert np.array_equal(matmul(F7, a, b), expected)


def test_matmul_dimension_mismatch():
    with pytest.raises(ValueError):
        matmul(F7, np.zeros((2, 3), dtype=F7.dtype), np.zeros((2, 3), dtype=F7.dtype))


def test_solve_left_simple():
    # lam @ A = b with A invertible
    a = np.array([[1, 1], [0, 1]], dtype=F7.dtype)
    b = np.array([2, 3], dtype=F7.dtype)
    lam = solve_left(F7, a, b)
    assert lam is not None
    assert np.array_equal(matmul(F7, lam.reshape(1, -1), a)[0], b)


def test_solve_left_inconsistent():
    a = np.array([[1, 0, 0]], dtype=F7.dtype)
    b = np.array([0, 1, 0], dtype=F7.dtype)
    assert solve_left(F7, a, b) is None


def test_in_rowspan():
    a = np.array([[1, 0, 1], [0, 1, 1]], dtype=F7.dtype)
    assert in_rowspan(F7, a, np.array([1, 1, 2], dtype=F7.dtype))
    assert not in_rowspan(F7, a, np.array([0, 0, 1], dtype=F7.dtype))


def test_invert_round_trip():
    rng = np.random.default_rng(2)
    for _ in range(10):
        a = rng.integers(0, 7, size=(4, 4)).astype(F7.dtype)
        if rank(F7, a) < 4:
            continue
        inv = invert(F7, a)
        assert np.array_equal(matmul(F7, a, inv), np.eye(4, dtype=F7.dtype))


def test_invert_singular_raises():
    a = np.array([[1, 2], [2, 4]], dtype=F7.dtype)
    with pytest.raises(np.linalg.LinAlgError):
        invert(F7, a)


def test_invert_requires_square():
    with pytest.raises(ValueError):
        invert(F7, np.zeros((2, 3), dtype=F7.dtype))


@pytest.mark.parametrize("field", [F7, PrimeField(257), GF256], ids=repr)
def test_solve_left_random_consistent_systems(field):
    """Solutions returned by solve_left actually solve the system."""

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def check(data):
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        n, m = data.draw(st.integers(1, 5)), data.draw(st.integers(1, 5))
        a = rng.integers(0, field.order, size=(n, m)).astype(field.dtype)
        true_lam = rng.integers(0, field.order, size=(1, n)).astype(field.dtype)
        b = matmul(field, true_lam, a)[0]
        lam = solve_left(field, a, b)
        assert lam is not None  # consistent by construction
        assert np.array_equal(matmul(field, lam.reshape(1, -1), a)[0], b)

    check()


def test_rref_is_idempotent():
    rng = np.random.default_rng(3)
    a = rng.integers(0, 7, size=(4, 6)).astype(F7.dtype)
    red, p1 = rref(F7, a)
    red2, p2 = rref(F7, red)
    assert np.array_equal(red, red2)
    assert p1 == p2
