"""Live-runtime repair: bounded convergence after irrecoverable state loss.

The scenario the ARQ provably cannot fix: a server crashes, its durable
checkpoint is wiped, and it restarts from the initial state.  Its peers'
channels fast-forward past everything the victim had already acked (acked
frames were pruned and are never replayed), so -- absent new writes --
retransmission alone leaves the victim stale forever.  With the repair
overlay attached, the victim's digest gossip exposes the gap and one pull
round re-installs the missed writes and re-encodes its symbol, within a
bounded number of digest intervals, under the online causal auditor with
zero violations.
"""

from __future__ import annotations

import asyncio

from repro.consistency.causal import (
    check_causal_consistency,
    check_returns_written_values,
)
from repro.ec.codes import example1_code
from repro.protocol.client_core import RetryPolicy
from repro.protocol.failure_detector import FailureDetectorConfig
from repro.protocol.repair_core import RepairConfig
from repro.protocol.server_core import ServerConfig
from repro.runtime.asyncio_rt import AsyncioCluster
from repro.runtime.auditor import OnlineAuditor

VICTIM = 4

#: bounded-convergence budget (seconds): a handful of digest intervals
#: plus one pull round at the configured 150 ms cadence
REPAIR_WAIT = 3.0


async def _wiped_restart_run(repair: RepairConfig | None, audit: bool):
    auditor = None
    if audit:
        auditor = OnlineAuditor()
        await auditor.start()
    cluster = AsyncioCluster(
        example1_code(),
        config=ServerConfig(gc_interval=25.0),
        retry=RetryPolicy(timeout=40.0, max_retries=8),
        detector=FailureDetectorConfig(heartbeat_interval=25.0,
                                       suspect_after=150.0),
        audit_addr=auditor.address if auditor else None,
        repair=repair,
    )
    await cluster.start()
    client = await cluster.add_client(server=0)
    try:
        op = await client.write(0, cluster.value(4))
        assert not op.failed
        await cluster.quiesce()

        # crash the victim AND wipe its checkpoint: restart = total loss
        await cluster.kill_server(VICTIM)
        cluster.store.wipe(VICTIM)
        op = await client.write(0, cluster.value(8))
        assert not op.failed
        op = await client.write(1, cluster.value(6))
        assert not op.failed
        await asyncio.sleep(0.3)
        await cluster.restart_server(VICTIM)

        # no further writes: convergence must come from repair (or never)
        await asyncio.sleep(REPAIR_WAIT)

        victim_core = cluster.servers[VICTIM].core
        recovered = (
            victim_core.repair_known_tag(0).ts.lamport > 0
            and victim_core.repair_known_tag(1).ts.lamport > 0
        )
        stats = cluster.repair_stats()
        violations = []
        if auditor is not None:
            violations = [
                f"auditor: {v.kind}: {v.detail}" for v in auditor.finalize()
            ]
        zero = cluster.code.zero_value()
        violations += check_causal_consistency(
            cluster.history, zero, raise_on_violation=False
        )
        violations += check_returns_written_values(
            cluster.history, zero, raise_on_violation=False
        )
        return recovered, stats, violations
    finally:
        await cluster.shutdown()
        if auditor is not None:
            await auditor.close()


def test_wiped_restart_stays_stale_without_repair():
    recovered, stats, violations = asyncio.run(
        _wiped_restart_run(repair=None, audit=False)
    )
    assert not recovered, (
        "victim converged without repair: the ARQ replayed acked frames?"
    )
    assert stats == {}
    assert violations == []


def test_wiped_restart_converges_bounded_with_repair():
    recovered, stats, violations = asyncio.run(
        _wiped_restart_run(
            repair=RepairConfig(digest_interval=150.0, round_timeout=500.0),
            audit=True,
        )
    )
    assert recovered, "victim still stale after the repair budget"
    assert stats["rounds_completed"] >= 1
    assert stats["entries_installed"] >= 1
    assert stats["bits_shipped"] > 0
    assert violations == [], f"repair broke consistency: {violations}"
