"""Live-cluster smoke test: a real 6-server asyncio deployment survives a
server kill + restart and stays causally consistent.

This is the test the CI ``live-smoke`` job runs: it boots the paper's
six-data-center (6, 4) cross-object code on localhost TCP sockets
(:class:`~repro.runtime.asyncio_rt.AsyncioCluster`), runs a read/write
workload from one client per server, crashes one server mid-workload,
keeps operating (clients of live servers must still complete), restarts
the victim from its file-backed durable checkpoint, and then verifies the
recorded history with the existing consistency checkers.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.consistency.causal import (
    check_causal_consistency,
    check_eventual_visibility,
    check_returns_written_values,
    expected_final_value,
)
from repro.ec.codes import six_dc_code
from repro.protocol.client_core import RetryPolicy
from repro.protocol.server_core import ServerConfig
from repro.runtime.asyncio_rt import AsyncioCluster

VICTIM = 2


async def _run(code):
    cluster = AsyncioCluster(
        code,
        config=ServerConfig(gc_interval=25.0),
        retry=RetryPolicy(timeout=40.0, max_retries=8),
    )
    await cluster.start()
    clients = [await cluster.add_client(i) for i in range(code.N)]

    # phase 1: every object written while all six servers are up
    for x in range(code.K):
        op = await clients[x % code.N].write(x, cluster.value(100 + x))
        assert not op.failed
    await cluster.quiesce()

    # phase 2: crash one server; clients of the other five keep operating
    await cluster.kill_server(VICTIM)
    assert cluster.servers[VICTIM].halted
    for x in range(code.K):
        writer = clients[(VICTIM + 1 + x) % code.N]
        op = await writer.write(x, cluster.value(200 + x))
        assert not op.failed, f"write during downtime failed: {op.error}"
    read_down = await clients[0].read(0)
    assert not read_down.failed

    # phase 3: restart from the durable checkpoint and converge
    await cluster.restart_server(VICTIM)
    assert not cluster.servers[VICTIM].halted
    await cluster.quiesce()

    # the victim's own client works again after recovery
    op = await clients[VICTIM].write(0, cluster.value(250))
    assert not op.failed, f"write after restart failed: {op.error}"
    await cluster.quiesce()

    # final reads from every server for every object
    final: dict[int, list] = {}
    for x in range(code.K):
        vals = []
        for client in clients:
            r = await client.read(x)
            assert not r.failed
            vals.append(r.value)
        final[x] = vals

    zero = code.zero_value()
    check_causal_consistency(cluster.history, zero)
    check_returns_written_values(cluster.history, zero)
    check_eventual_visibility(cluster.history, final, zero)
    for x in range(code.K):
        assert np.array_equal(
            final[x][0], expected_final_value(cluster.history, x, zero)
        )

    # the victim really recovered from disk, not from luck
    assert cluster.store.persist_counts.get(VICTIM, 0) > 0
    assert cluster.servers[VICTIM].stats.writes > 0

    completed = [op for op in cluster.history.operations if op.done]
    await cluster.shutdown()
    return len(completed)


def test_live_cluster_survives_kill_and_restart():
    code = six_dc_code()
    completed = asyncio.run(_run(code))
    # every issued operation completed (none were left hanging)
    assert completed >= 2 * code.K + code.K * code.N + 2
