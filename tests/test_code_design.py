"""Tests for the cross-object code designer (the paper's open problem)."""

import numpy as np
import pytest

from repro.analysis import (
    Topology,
    cross_object_latency,
    design_cross_object_code,
    search_partial_replication,
    sum_code,
)
from repro.analysis.code_design import _evaluate
from repro.ec import PrimeField, six_dc_code


def random_topology(n: int, seed: int) -> Topology:
    rng = np.random.default_rng(seed)
    rtt = rng.uniform(10, 250, size=(n, n))
    rtt = (rtt + rtt.T) / 2
    np.fill_diagonal(rtt, 0.0)
    return Topology(rtt)


# ---------------------------------------------------------------------------
# sum codes


def test_sum_code_structure():
    f = PrimeField(257)
    code = sum_code(f, 3, [frozenset({0, 2}), frozenset({1}), frozenset({0})])
    assert code.objects_at(0) == {0, 2}
    assert code.objects_at(1) == {1}
    assert code.is_recovery_set({1}, 1)
    assert code.is_recovery_set({0, 2}, 2)  # (x0+x2) - x0


def test_sum_code_infeasible_detected():
    f = PrimeField(257)
    topo = random_topology(3, 0)
    # object 2 never stored: infeasible
    score, code, profile = _evaluate(
        topo, f, 3, [frozenset({0}), frozenset({1}), frozenset({0, 1})],
        "worst_then_avg",
    )
    assert score is None


# ---------------------------------------------------------------------------
# the designer


def test_designer_matches_or_beats_hand_tuned_code_on_aws():
    """On the Fig. 1 topology the search finds worst-case 138 ms -- the
    number the paper claims for its hand-tuned code (which computes to 146
    on the printed matrix)."""
    topo = Topology.aws_six_dc()
    result = design_cross_object_code(topo, 4, restarts=4, seed=0)
    hand = cross_object_latency(topo, six_dc_code())
    assert result.profile.worst_case <= hand.worst_case
    assert result.profile.worst_case == pytest.approx(138.0)


def test_designer_beats_partial_replication_worst_case():
    topo = Topology.aws_six_dc()
    result = design_cross_object_code(topo, 4, restarts=2, seed=1)
    pr = search_partial_replication(topo, 4).profile
    assert result.profile.worst_case < pr.worst_case


def test_designer_average_objective():
    topo = Topology.aws_six_dc()
    result = design_cross_object_code(
        topo, 4, objective="avg_then_worst", restarts=3, seed=1
    )
    pr = search_partial_replication(topo, 4, objective="average").profile
    # mixing symbols can only add recovery options vs pure placement
    assert result.profile.average <= pr.average + 1e-9


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_designer_on_random_topologies(seed):
    """Designed codes never lose to their own single-object starts and stay
    fully recoverable."""
    topo = random_topology(5, seed)
    result = design_cross_object_code(topo, 3, restarts=2, seed=seed)
    for obj in range(3):
        assert result.code.minimal_recovery_sets(obj)
    # compare against the best partial-replication placement (one group per
    # server), the strongest same-storage pure-placement baseline
    pr = search_partial_replication(topo, 3).profile
    assert result.profile.worst_case <= pr.worst_case + 1e-9


def test_designer_rejects_more_objects_than_servers():
    with pytest.raises(ValueError):
        design_cross_object_code(random_topology(2, 0), 3)


def test_designer_rejects_bad_objective():
    with pytest.raises(ValueError):
        design_cross_object_code(
            random_topology(4, 0), 2, objective="nonsense"
        )


def test_designed_code_is_runnable():
    """The designed code drops straight into a CausalEC cluster."""
    from repro import CausalECCluster, ConstantLatency, ServerConfig

    topo = Topology.aws_six_dc()
    result = design_cross_object_code(topo, 4, restarts=1, seed=0)
    cluster = CausalECCluster(
        result.code, latency=ConstantLatency(1.0),
        config=ServerConfig(gc_interval=20.0),
    )
    writer = cluster.add_client(0)
    cluster.execute(writer.write(2, cluster.value(5)))
    cluster.run(for_time=500)
    reader = cluster.add_client(1)
    op = cluster.execute(reader.read(2))
    assert np.array_equal(op.value, cluster.value(5))
    cluster.assert_no_reencoding_errors()
