"""Acceptance test: a live view change under traffic moves only the
re-owned keys, stays causally consistent, and survives chaos.

The PR's headline scenario: a 2-shard :class:`~repro.runtime.sharded_rt
.ShardedAsyncioCluster` serves an open-loop workload while a third shard
is added.  The coordinator migrates exactly the keys the new ring owns
(epoch-fenced: writes drain per key, reads stay on the old owner until
the cutover floor covers the key), the online auditor -- fed by every
server of every shard -- must stay clean, and post-cutover reads of the
migrated keys must return the latest written values from the new owner.

The chaos variant repeats the view change while a server is killed and
restarted and another has its connections severed (a transient
partition) mid-migration.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.protocol.client_core import RetryPolicy
from repro.runtime.sharded_rt import ShardedAsyncioCluster

# 12 keys at 128 vnodes: adding shard 2 re-owns key05 and key07 (the
# ring is deterministic, so the planned move set is fixed per config)
KEYS = [f"key{i:02d}" for i in range(12)]
VNODES = 128
RETRY = RetryPolicy(timeout=100.0, backoff=1.5, max_retries=8)


async def _traffic(store, keys, last, stop, site, seed):
    """Serial put/get loop over a disjoint key subset (one session)."""
    session = store.session(site=site)
    rng = np.random.default_rng(seed)
    while not stop.is_set():
        key = keys[int(rng.integers(len(keys)))]
        if rng.random() < 0.6:
            value = int(rng.integers(1, 200))
            await session.put(key, value)
            last[key] = value
        else:
            op = await session.get(key)
            assert not op.failed
        await asyncio.sleep(0.002)


async def _boot(num_shards=2):
    store = ShardedAsyncioCluster(
        KEYS,
        num_shards=num_shards,
        slots_per_shard=len(KEYS),
        value_len=1,
        retry=RETRY,
        audit=True,
        vnodes=VNODES,
    )
    await store.start()
    return store


async def _check_outcome(store, change, stats, before, last):
    moved = {mv.key for mv in change.moves}
    # exactly the planned keys were handled: each either migrated or
    # skipped (never written), nothing else touched
    assert moved == set(stats["migrated"]) | set(stats["skipped"])
    for mv in change.moves:
        loc = store.router.location(mv.key)
        assert loc.shard == mv.dst_shard and loc.gen == mv.gen
    for k in KEYS:
        if k not in moved:
            assert store.router.location(k) == before[k], (
                f"unmoved key {k} changed location"
            )
    assert store.router.view_version == change.version
    # post-cutover reads of migrated keys are served by the new owner
    # (the router now routes them there) and return the latest values
    await store.quiesce()
    check = store.session(site=1)
    for k in sorted(moved):
        if k in last:
            op = await check.get(k)
            assert not op.failed
            assert int(op.value[0]) == last[k], (
                f"migrated key {k}: read {int(op.value[0])}, "
                f"last write was {last[k]}"
            )
    await store.quiesce()
    violations = store.finalize_audit()
    assert not violations, [f"{v.kind}: {v.detail}" for v in violations]
    return moved


# CI's sharded chaos lane widens the seed sweep via LIVE_RESHARD_SEEDS
RESHARD_SEEDS = [
    int(s)
    for s in os.environ.get("LIVE_RESHARD_SEEDS", "11,23").split(",")
]


@pytest.mark.parametrize("seed", RESHARD_SEEDS)
def test_add_shard_under_live_traffic(seed):
    async def run():
        store = await _boot()
        try:
            before = {k: store.router.location(k) for k in KEYS}
            stop, last = asyncio.Event(), {}
            tasks = [
                asyncio.ensure_future(
                    _traffic(store, KEYS[0::2], last, stop, 0, seed)
                ),
                asyncio.ensure_future(
                    _traffic(store, KEYS[1::2], last, stop, 1, seed + 1)
                ),
            ]
            await asyncio.sleep(0.3)  # accumulate pre-move history
            change, stats = await store.add_shard(2)
            assert change.moves, "ring re-owned no keys: test is vacuous"
            await asyncio.sleep(0.3)  # post-cutover traffic
            stop.set()
            await asyncio.gather(*tasks)
            moved = await _check_outcome(store, change, stats, before, last)
            # a migrated, then re-written key round-trips on the new owner
            victim = sorted(moved)[0]
            writer = store.session(site=0)
            await writer.put(victim, 177)
            assert int((await writer.get(victim)).value[0]) == 177
        finally:
            await store.shutdown()

    asyncio.run(run())


def test_add_shard_survives_kill_restart_and_partition():
    """Chaos during the in-flight view change: kill+restart one server,
    sever another's connections; the auditor must stay clean."""

    async def run():
        store = await _boot()
        try:
            before = {k: store.router.location(k) for k in KEYS}
            stop, last = asyncio.Event(), {}
            tasks = [
                asyncio.ensure_future(
                    _traffic(store, KEYS[0::2], last, stop, 0, 31)
                ),
                asyncio.ensure_future(
                    _traffic(store, KEYS[1::2], last, stop, 1, 32)
                ),
            ]
            await asyncio.sleep(0.2)

            async def chaos():
                await asyncio.sleep(0.02)
                # not server 0: that's the migration clients' home
                await store.kill_server(0, 2)
                store.shards[1].reset_server(1)  # transient partition
                await asyncio.sleep(0.25)
                await store.restart_server(0, 2)

            (change, stats), _ = await asyncio.gather(
                store.add_shard(2), chaos()
            )
            await asyncio.sleep(0.2)
            stop.set()
            await asyncio.gather(*tasks)
            assert not any(
                s.halted for c in store.shards.values() for s in c.servers
            )
            await _check_outcome(store, change, stats, before, last)
        finally:
            await store.shutdown()

    asyncio.run(run())
