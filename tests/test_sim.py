"""Tests for the discrete-event scheduler and the FIFO network."""

import numpy as np
import pytest

from repro.sim import (
    ConstantLatency,
    ExponentialLatency,
    MatrixLatency,
    Network,
    Node,
    Scheduler,
    UniformLatency,
)


# ---------------------------------------------------------------------------
# scheduler


def test_events_fire_in_time_order():
    s = Scheduler()
    order = []
    s.schedule(5, lambda: order.append("b"))
    s.schedule(1, lambda: order.append("a"))
    s.schedule(9, lambda: order.append("c"))
    s.run()
    assert order == ["a", "b", "c"]
    assert s.now == 9


def test_equal_time_events_fire_in_schedule_order():
    s = Scheduler()
    order = []
    for i in range(5):
        s.schedule(1.0, lambda i=i: order.append(i))
    s.run()
    assert order == [0, 1, 2, 3, 4]


def test_cancellation():
    s = Scheduler()
    fired = []
    h = s.schedule(1, lambda: fired.append(1))
    h.cancel()
    assert h.cancelled
    s.run()
    assert fired == []


def test_schedule_during_run():
    s = Scheduler()
    order = []

    def first():
        order.append("first")
        s.schedule(1, lambda: order.append("second"))

    s.schedule(1, first)
    s.run()
    assert order == ["first", "second"]
    assert s.now == 2


def test_run_until():
    s = Scheduler()
    fired = []
    s.schedule(1, lambda: fired.append(1))
    s.schedule(10, lambda: fired.append(2))
    s.run(until=5)
    assert fired == [1]
    assert s.now == 5
    s.run()
    assert fired == [1, 2]


def test_run_max_events():
    s = Scheduler()
    fired = []
    for i in range(10):
        s.schedule(i + 1, lambda i=i: fired.append(i))
    s.run(max_events=3)
    assert fired == [0, 1, 2]


def test_stop_when():
    s = Scheduler()
    fired = []
    for i in range(10):
        s.schedule(i + 1, lambda i=i: fired.append(i))
    s.run(stop_when=lambda: len(fired) >= 4)
    assert fired == [0, 1, 2, 3]


def test_negative_delay_rejected():
    s = Scheduler()
    with pytest.raises(ValueError):
        s.schedule(-1, lambda: None)


def test_past_scheduling_rejected():
    s = Scheduler()
    s.schedule(5, lambda: None)
    s.run()
    with pytest.raises(ValueError):
        s.at(1, lambda: None)


# ---------------------------------------------------------------------------
# network


class Recorder(Node):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def on_message(self, src, msg):
        self.received.append((self.scheduler.now, src, msg))


class Msg:
    kind = "test"
    size_bits = 100.0

    def __init__(self, tag):
        self.tag = tag

    def __repr__(self):
        return f"Msg({self.tag})"


def make_net(latency, seed=0):
    sched = Scheduler()
    net = Network(sched, latency=latency, rng=np.random.default_rng(seed))
    nodes = [Recorder(i, sched, net) for i in range(3)]
    return sched, net, nodes


def test_fifo_under_jittery_latency():
    """Per-channel FIFO must hold even when later sends draw lower delays."""
    sched, net, nodes = make_net(UniformLatency(0.1, 50.0), seed=42)
    for i in range(50):
        net.send(0, 1, Msg(i))
    sched.run()
    tags = [m.tag for _, _, m in nodes[1].received]
    assert tags == list(range(50))


def test_constant_latency_delivery_time():
    sched, net, nodes = make_net(ConstantLatency(7.5))
    net.send(0, 1, Msg("x"))
    sched.run()
    (t, src, msg), = nodes[1].received
    assert t == pytest.approx(7.5)
    assert src == 0


def test_matrix_latency_uses_half_rtt():
    rtt = np.array([[0, 100], [100, 0]], dtype=float)
    sched = Scheduler()
    net = Network(sched, latency=MatrixLatency(rtt))
    nodes = [Recorder(i, sched, net) for i in range(2)]
    net.send(0, 1, Msg("x"))
    sched.run()
    assert nodes[1].received[0][0] == pytest.approx(50.0)


def test_halted_node_receives_nothing():
    sched, net, nodes = make_net(ConstantLatency(1))
    nodes[1].halt()
    net.send(0, 1, Msg("x"))
    sched.run()
    assert nodes[1].received == []


def test_halted_node_sends_nothing():
    sched, net, nodes = make_net(ConstantLatency(1))
    nodes[0].halt()
    nodes[0].send(1, Msg("x"))
    sched.run()
    assert nodes[1].received == []


def test_halted_node_timers_suppressed():
    sched, net, nodes = make_net(ConstantLatency(1))
    fired = []
    nodes[0].set_timer(5, lambda: fired.append(1))
    nodes[0].halt()
    sched.run()
    assert fired == []


def test_unknown_destination_raises():
    sched, net, nodes = make_net(ConstantLatency(1))
    with pytest.raises(KeyError):
        net.send(0, 99, Msg("x"))


def test_duplicate_registration_rejected():
    sched = Scheduler()
    net = Network(sched)
    Recorder(0, sched, net)
    with pytest.raises(ValueError):
        Recorder(0, sched, net)


def test_stats_accounting():
    sched, net, nodes = make_net(ConstantLatency(1))
    for _ in range(3):
        net.send(0, 1, Msg("x"))
    sched.run()
    assert net.stats.messages["test"] == 3
    assert net.stats.bits["test"] == pytest.approx(300.0)
    assert net.stats.total_messages == 3
    assert net.stats.total_bits == pytest.approx(300.0)


def test_monitor_callback():
    sched, net, nodes = make_net(ConstantLatency(1))
    seen = []
    net.monitor = lambda s, d, m: seen.append((s, d, m.tag))
    net.send(0, 2, Msg("y"))
    sched.run()
    assert seen == [(0, 2, "y")]


def test_exponential_latency_positive():
    lat = ExponentialLatency(1.0, 5.0)
    rng = np.random.default_rng(0)
    for _ in range(100):
        assert lat.delay(0, 1, rng) >= 1.0


def test_determinism_same_seed():
    results = []
    for _ in range(2):
        sched, net, nodes = make_net(UniformLatency(0.1, 10), seed=7)
        for i in range(20):
            net.send(0, 1, Msg(i))
            net.send(0, 2, Msg(i))
        sched.run()
        results.append(
            [(round(t, 9), m.tag) for t, _, m in nodes[1].received + nodes[2].received]
        )
    assert results[0] == results[1]
