"""Chaos tests: crashes injected mid-execution under adversarial schedules.

Halting nodes mid-propagation exercises the hardest corner of the model:
app/del messages partially delivered, garbage collection stalled for some
objects, reads racing dead recovery sets.  Completed operations must remain
causally consistent (safety is unconditional); liveness is asserted only
where the paper promises it (a live home server and a live recovery set).
"""

import numpy as np
import pytest

from repro import (
    CausalECCluster,
    PrimeField,
    ServerConfig,
    UniformLatency,
    example1_code,
    reed_solomon_code,
)
from repro.consistency import (
    check_causal_bad_patterns,
    check_causal_consistency,
    check_session_guarantees,
)
from repro.workloads import ClosedLoopDriver, WorkloadConfig

F = PrimeField(257)


@pytest.mark.parametrize("seed", range(6))
def test_random_crashes_preserve_safety(seed):
    """Crash up to two random servers at random times during a workload;
    every completed operation must still satisfy all three checkers."""
    rng = np.random.default_rng(seed)
    code = reed_solomon_code(F, 5, 3)  # tolerates 2 crashes
    cluster = CausalECCluster(
        code,
        latency=UniformLatency(0.5, 12.0),
        seed=seed,
        config=ServerConfig(gc_interval=20.0),
    )
    victims = rng.choice(5, size=2, replace=False)
    for i, victim in enumerate(victims):
        cluster.scheduler.at(
            float(rng.uniform(20, 250)),
            lambda v=int(victim): cluster.servers[v].halt(),
        )
    driver = ClosedLoopDriver(
        cluster, num_objects=3,
        config=WorkloadConfig(ops_per_client=25, read_ratio=0.5, seed=seed),
    )
    driver.start()
    cluster.run(for_time=8_000)

    cluster.assert_no_reencoding_errors()
    zero = code.zero_value()
    check_causal_consistency(cluster.history, zero)
    check_session_guarantees(cluster.history, zero)
    check_causal_bad_patterns(cluster.history, zero)

    # liveness where promised: clients of live servers finish (MDS with 2
    # crashes leaves a recovery set for everything)
    live = {i for i in range(5) if not cluster.servers[i].halted}
    for op in cluster.history.pending():
        client = next(c for c in cluster.clients if c.node_id == op.client_id)
        assert client.server_id not in live, (
            f"op {op.opid} pending at live server {client.server_id}"
        )


def test_crash_during_propagation_then_read():
    """The writer's server dies right after acking; the app broadcast was
    already sent (FIFO reliable channels deliver it), so the write remains
    readable everywhere."""
    code = example1_code(F)
    cluster = CausalECCluster(
        code, latency=UniformLatency(1.0, 5.0), seed=1,
        config=ServerConfig(gc_interval=20.0),
    )
    writer = cluster.add_client(0)
    op = cluster.execute(writer.write(1, cluster.value(77)))
    assert op.done
    cluster.halt_server(0)  # dies with apps in flight
    cluster.run(for_time=2_000)
    for home in (1, 3):
        reader = cluster.add_client(home)
        r = cluster.execute(reader.read(1))
        assert np.array_equal(r.value, cluster.value(77))


def test_gc_stalls_but_reads_proceed_after_crash():
    """With one server dead, the global deletion watermark cannot complete
    (S needs del messages from every node), so histories stop draining for
    new writes -- but reads keep being served from those histories."""
    code = example1_code(F)
    cluster = CausalECCluster(
        code, latency=UniformLatency(0.5, 4.0), seed=2,
        config=ServerConfig(gc_interval=15.0),
    )
    writer = cluster.add_client(0)
    cluster.execute(writer.write(0, cluster.value(1)))
    cluster.run(for_time=1_000)
    assert cluster.total_history_entries() == 0  # drained while all alive

    cluster.halt_server(4)
    cluster.execute(writer.write(0, cluster.value(2)))
    cluster.run(for_time=3_000)
    # the new version cannot be globally acknowledged: it stays in history
    assert cluster.total_history_entries() > 0
    # yet reads at every live server return it
    for home in (1, 2, 3):
        reader = cluster.add_client(home)
        r = cluster.execute(reader.read(0))
        assert np.array_equal(r.value, cluster.value(2))


def test_majority_crash_blocks_only_unrecoverable_objects():
    code = example1_code(F)
    cluster = CausalECCluster(
        code, latency=UniformLatency(0.5, 4.0), seed=3,
        config=ServerConfig(gc_interval=15.0),
    )
    writer = cluster.add_client(0)
    for obj in range(3):
        cluster.execute(writer.write(obj, cluster.value(obj + 10)))
    cluster.run(for_time=2_000)  # drain
    # halt servers 1, 2 (0-indexed 0, 1): X1's sets {1},{2,3,4},{2,3,5},
    # {3,4,5}: {3,4,5} survives; X2's {2} dead, {4,5} survives
    cluster.halt_server(0)
    cluster.halt_server(1)
    reader = cluster.add_client(2)
    for obj in range(3):
        op = cluster.execute(reader.read(obj))
        assert op.done
        assert np.array_equal(op.value, cluster.value(obj + 10))
