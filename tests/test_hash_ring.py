"""Property tests for the consistent-hash ring and the shard router.

Satellite of the horizontal-sharding PR: the ring must (a) spread keys
evenly at >= 128 vnodes, (b) move only ~K/S keys when a shard joins or
leaves (the defining property of consistent hashing: every key whose
owner changes moves to/from the affected shard, never between two
bystanders), and (c) be deterministic across processes -- lookups are
blake2b-based, so ``PYTHONHASHSEED`` cannot perturb placement.  The
router on top must keep slots sticky (never reused within a run) and
plan view changes that touch exactly the keys whose ring owner changed.
"""

from __future__ import annotations

import pytest

from repro.sharding.ring import (
    DuplicateShardError,
    EmptyRingError,
    HashRing,
    LastShardError,
    RingError,
    UnknownShardError,
    ZeroVnodeError,
    _h64,
)
from repro.sharding.router import ShardRouter
from repro.sharding.view import plan_view_change

KEYS = [f"key{i:05d}" for i in range(2000)]


def _loads(ring, keys):
    loads = {s: 0 for s in ring.shards}
    for k in keys:
        loads[ring.lookup(k)] += 1
    return loads


# ---------------------------------------------------------------------------
# load balance


@pytest.mark.parametrize("num_shards", [2, 4, 8])
def test_load_balance_within_bound_at_128_vnodes(num_shards):
    """At >=128 vnodes every shard's load is within 2x of the mean."""
    ring = HashRing(range(num_shards), vnodes=128)
    loads = _loads(ring, KEYS)
    mean = len(KEYS) / num_shards
    assert set(loads) == set(range(num_shards))
    for shard, load in loads.items():
        assert 0.5 * mean <= load <= 2.0 * mean, (
            f"shard {shard} holds {load} of {len(KEYS)} keys "
            f"(mean {mean:.0f}): imbalance exceeds the 2x bound"
        )


def test_more_vnodes_tighten_balance():
    """The 128-vnode spread is no worse than the 8-vnode spread."""

    def spread(vnodes):
        loads = _loads(HashRing(range(4), vnodes=vnodes), KEYS)
        return max(loads.values()) - min(loads.values())

    assert spread(128) <= spread(8)


# ---------------------------------------------------------------------------
# minimal movement


def test_adding_a_shard_moves_only_its_keys():
    ring = HashRing(range(4), vnodes=128)
    before = {k: ring.lookup(k) for k in KEYS}
    ring.add_shard(4)
    moved = [k for k in KEYS if ring.lookup(k) != before[k]]
    # every moved key lands on the new shard -- no bystander churn
    assert moved and all(ring.lookup(k) == 4 for k in moved)
    # ~K/S keys move: within 2x of the fair share
    assert len(moved) <= 2.0 * len(KEYS) / 5


def test_removing_a_shard_moves_only_its_keys():
    ring = HashRing(range(4), vnodes=128)
    before = {k: ring.lookup(k) for k in KEYS}
    ring.remove_shard(2)
    moved = [k for k in KEYS if ring.lookup(k) != before[k]]
    assert moved and all(before[k] == 2 for k in moved)
    assert len(moved) <= 2.0 * len(KEYS) / 4


def test_add_then_remove_restores_placement():
    ring = HashRing(range(3), vnodes=128)
    before = {k: ring.lookup(k) for k in KEYS}
    ring.add_shard(7)
    ring.remove_shard(7)
    assert {k: ring.lookup(k) for k in KEYS} == before


def test_cannot_remove_last_shard():
    ring = HashRing([0], vnodes=16)
    with pytest.raises(LastShardError):
        ring.remove_shard(0)


def test_remove_then_readd_restores_exact_ownership():
    """A shard that leaves and rejoins owns byte-identical keys.

    Point hashes depend only on (shard, vnode-index), so a remove/readd
    round trip -- a shard bounced for maintenance -- must not shuffle
    anyone: ownership of every key is exactly what it was."""
    ring = HashRing(range(4), vnodes=128)
    before = {k: ring.lookup(k) for k in KEYS}
    ring.remove_shard(2)
    interim = {k: ring.lookup(k) for k in KEYS}
    ring.add_shard(2)
    assert {k: ring.lookup(k) for k in KEYS} == before
    # and during its absence only its keys had moved
    assert all(before[k] == 2 for k in KEYS if interim[k] != before[k])


def test_remove_then_readd_with_custom_vnodes_is_stable():
    ring = HashRing(range(3), vnodes=64)
    ring.set_vnodes(1, 17)
    before = {k: ring.lookup(k) for k in KEYS}
    ring.remove_shard(1)
    ring.add_shard(1, vnodes=17)
    assert {k: ring.lookup(k) for k in KEYS} == before
    assert ring.shard_vnodes(1) == 17


# ---------------------------------------------------------------------------
# typed structural errors


def test_zero_vnode_removal_is_a_typed_error():
    """Scaling a registered shard to zero vnodes must be refused.

    A zero-vnode shard would stay registered but own no arc, so lookups
    of its former keys would silently route to stale neighbours."""
    ring = HashRing(range(3), vnodes=16)
    with pytest.raises(ZeroVnodeError):
        ring.set_vnodes(1, 0)
    with pytest.raises(ZeroVnodeError):
        ring.set_vnodes(1, -4)
    # refused means state is untouched: shard 1 still owns its keys
    assert ring.shard_vnodes(1) == 16
    assert any(ring.lookup(k) == 1 for k in KEYS)
    with pytest.raises(ZeroVnodeError):
        ring.add_shard(9, vnodes=0)
    assert 9 not in ring
    with pytest.raises(ZeroVnodeError):
        HashRing(range(2), vnodes=0)


def test_typed_errors_are_valueerrors():
    """Legacy ``except ValueError`` callers keep working."""
    ring = HashRing([0, 1], vnodes=8)
    for exc, fn in [
        (UnknownShardError, lambda: ring.remove_shard(9)),
        (UnknownShardError, lambda: ring.set_vnodes(9, 4)),
        (UnknownShardError, lambda: ring.shard_vnodes(9)),
        (DuplicateShardError, lambda: ring.add_shard(0)),
    ]:
        with pytest.raises(exc) as info:
            fn()
        assert isinstance(info.value, ValueError)
        assert isinstance(info.value, RingError)
    with pytest.raises(EmptyRingError):
        HashRing((), vnodes=8).lookup("k")


def test_set_vnodes_rescales_and_copy_preserves_counts():
    ring = HashRing(range(3), vnodes=32)
    ring.set_vnodes(0, 96)
    assert ring.shard_vnodes(0) == 96
    clone = ring.copy()
    assert clone.shard_vnodes(0) == 96
    assert [clone.lookup(k) for k in KEYS] == [ring.lookup(k) for k in KEYS]
    # rescaling the clone does not perturb the original
    clone.set_vnodes(0, 1)
    assert ring.shard_vnodes(0) == 96


# ---------------------------------------------------------------------------
# determinism


def test_lookup_is_deterministic_across_instances():
    a = HashRing(range(5), vnodes=128)
    b = HashRing(range(5), vnodes=128)
    assert [a.lookup(k) for k in KEYS] == [b.lookup(k) for k in KEYS]


def test_hash_is_stable():
    """Pinned digests: placement must never change across python runs
    (the hash is blake2b, immune to PYTHONHASHSEED)."""
    assert _h64(b"k:key00000") == _h64(b"k:key00000")
    assert _h64(b"a") != _h64(b"b")


# ---------------------------------------------------------------------------
# router: sticky slots and view planning


def test_router_build_places_every_key_within_capacity():
    keys = [f"k{i}" for i in range(12)]
    router = ShardRouter.build(keys, num_shards=3, slots_per_shard=12)
    seen = set()
    for k in keys:
        loc = router.location(k)
        assert (loc.shard, loc.slot) not in seen
        seen.add((loc.shard, loc.slot))
        assert loc.gen == 0
        assert loc.shard == router.ring.lookup(k)


def test_plan_view_change_touches_only_reowned_keys():
    keys = [f"k{i}" for i in range(30)]
    router = ShardRouter.build(keys, num_shards=2, slots_per_shard=30)
    before = {k: router.location(k) for k in keys}
    change = plan_view_change(router, add=(2,))
    assert change.version == 1 and change.added == (2,)
    moved = {mv.key for mv in change.moves}
    for mv in change.moves:
        assert mv.dst_shard == 2
        assert mv.src_shard == before[mv.key].shard
        assert mv.gen == before[mv.key].gen + 1
    # planning is pure: the router itself is untouched
    assert {k: router.location(k) for k in keys} == before
    assert router.view_version == 0
    # and exactly the keys the new ring re-owns are planned
    new_ring = router.ring.copy()
    new_ring.add_shard(2)
    assert moved == {k for k in keys if new_ring.lookup(k) == 2}


def test_finish_move_keeps_slots_sticky():
    keys = ["a", "b", "c"]
    router = ShardRouter.build(keys, num_shards=2, slots_per_shard=4)
    victim = keys[0]
    old = router.begin_move(victim)
    assert router.moving(victim)
    dst = 1 - old.shard
    slot = max(router._used[dst], default=-1) + 1
    router.finish_move(victim, dst, slot, gen=1)
    assert not router.moving(victim)
    assert router.location(victim).gen == 1
    # the vacated source slot is NOT reused: a slot identifies one key
    # for the whole run (this is what the audit key maps rely on)
    assert old.slot in router._used[old.shard]


def test_from_placement_rejects_double_assigned_slot():
    with pytest.raises(ValueError):
        ShardRouter.from_placement({"a": (0, 1), "b": (0, 1)})


def test_from_placement_matches_grouped_layout():
    placement = {"a": (0, 0), "b": (0, 1), "c": (1, 0)}
    router = ShardRouter.from_placement(placement)
    assert {k: router.locate(k) for k in placement} == placement
