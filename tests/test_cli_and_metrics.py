"""Tests for the CLI entry points and the metrics summaries."""

import math

import numpy as np
import pytest

from repro.analysis import LatencySummary, summarize, throughput
from repro.cli import main
from repro.consistency.history import History, Operation


# ---------------------------------------------------------------------------
# metrics


def op(kind, invoke, response, client=1, obj=0):
    return Operation(
        client_id=client, opid=(client, invoke), kind=kind, obj=obj,
        value=np.array([1]), invoke_time=invoke, response_time=response,
    )


def test_latency_summary_basic():
    s = LatencySummary.of([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.p50 == pytest.approx(2.5)
    assert s.worst == 4.0
    assert len(s.row()) == 6


def test_latency_summary_empty():
    s = LatencySummary.of([])
    assert s.count == 0
    assert math.isnan(s.mean)
    assert s.row()[0] == "0"


def test_summarize_splits_reads_and_writes():
    h = History()
    h.record_invoke(op("read", 0, 5))
    h.record_invoke(op("read", 10, 12))
    h.record_invoke(op("write", 20, 21))
    s = summarize(h)
    assert s["read"].count == 2
    assert s["read"].mean == pytest.approx(3.5)
    assert s["write"].count == 1


def test_throughput():
    h = History()
    for i in range(10):
        h.record_invoke(op("write", i * 100.0, i * 100.0 + 1))
    # 10 ops over 901 ms
    assert throughput(h) == pytest.approx(10 / 0.901, rel=0.01)


def test_throughput_degenerate():
    h = History()
    assert throughput(h) == 0.0
    h.record_invoke(op("write", 0, 1))
    assert throughput(h) == 0.0


# ---------------------------------------------------------------------------
# CLI


def test_cli_demo(capsys):
    assert main(["demo", "--rtt", "4"]) == 0
    out = capsys.readouterr().out
    assert "write X1=42" in out
    assert "read X1 at server 5: 42" in out


def test_cli_fig2(capsys):
    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "Partial Replication" in out
    assert "Cross-Object Coding" in out
    assert "228" in out


def test_cli_ycsb(capsys):
    assert main(["ycsb"]) == 0
    out = capsys.readouterr().out
    assert "95.4%" in out


def test_cli_design(capsys):
    assert main(["design", "--restarts", "1", "--objects", "3"]) == 0
    out = capsys.readouterr().out
    assert "stores" in out
    assert "worst=" in out


def test_cli_bench(capsys):
    assert main(["bench", "--ops", "10"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])
