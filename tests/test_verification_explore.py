"""Bounded model checking tests: every delivery schedule of small scenarios
is enumerated; invariants must hold in every reachable state and all
executions must quiesce to the same semantic state (confluence)."""

import numpy as np

from repro.ec import LinearCode, PrimeField, example1_code
from repro.verification import StateExplorer, explore_schedules
from repro.verification.explore import _semantic_fingerprint

F = PrimeField(7)


def tiny_code():
    return LinearCode(F, 2, [[1, 0], [0, 1], [1, 1]], name="tiny(3,2)")


def d10_invariant(servers):
    code = servers[0].code
    for x in range(code.K):
        storing = [s for s in servers if x in s.objects]
        others = [s for s in servers if x not in s.objects]
        for s in others:
            for sp in storing:
                assert s.M.tagvec[x] <= sp.M.tagvec[x]
    for s in servers:
        for x in range(code.K):
            assert s.tmax[x] <= s.M.tagvec[x]
            assert s.M.tagvec[x].ts.leq(s.vc)


def test_single_write_fully_explored():
    res = explore_schedules(
        tiny_code(), [(0, 0, np.array([3]))], invariant=d10_invariant
    )
    assert not res.truncated
    assert res.ok
    assert res.states_visited > 10  # nontrivial interleaving space


def test_single_write_final_state_matches_sequential_run():
    """Confluence target equals the state a FIFO-sequential drain reaches."""
    code = tiny_code()
    res = explore_schedules(code, [(1, 1, np.array([4]))])
    assert res.ok

    explorer = StateExplorer(code)
    state = explorer.initial_state()
    explorer.issue_write(state, 1, 1, np.array([4]))
    while True:
        chans = [
            c for c in state.net.channels() if c[0] < code.N and c[1] < code.N
        ]
        if not chans:
            break
        state.net.deliver(*chans[0])
        explorer._drain_client_channels(state)
    assert res.final_semantic_states[0] == _semantic_fingerprint(state)
    # the drained state stores exactly the code's encoding of (0, 4)
    vals = [np.array([0]), np.array([4])]
    for s in state.servers:
        assert np.array_equal(s.M.value, code.encode(s.node_id, vals))
        assert s.history_size() == 0


def test_concurrent_writes_different_objects_confluent():
    res = explore_schedules(
        tiny_code(),
        [(0, 0, np.array([3])), (1, 1, np.array([5]))],
        max_states=100_000,
        invariant=d10_invariant,
    )
    assert not res.truncated
    assert res.ok
    assert res.states_visited > 1000


def test_concurrent_writes_same_object_confluent_lww():
    """Two concurrent writes to one object: every schedule converges to the
    same winner (the arbitration-max tag), never a mixed state."""
    code = tiny_code()
    res = explore_schedules(
        code,
        [(0, 0, np.array([3])), (1, 0, np.array([5]))],
        max_states=100_000,
        invariant=d10_invariant,
    )
    assert not res.truncated
    assert res.ok


def test_three_writes_same_writer_confluent():
    code = tiny_code()
    res = explore_schedules(
        code,
        [(0, 0, np.array([1])), (0, 0, np.array([2])), (0, 1, np.array([3]))],
        max_states=150_000,
    )
    assert not res.truncated
    assert res.ok


def test_truncation_reported():
    res = explore_schedules(
        tiny_code(),
        [(0, 0, np.array([3])), (1, 1, np.array([5]))],
        max_states=50,
    )
    assert res.truncated


def test_example1_single_write_explored_bounded():
    """The paper's own (5,3) code: one write across 5 servers.

    The full space is 50,208 states (checked exhaustively offline, confluent
    and violation-free, ~3 minutes); here a 10k-state bound keeps the suite
    fast while still covering thousands of distinct interleavings, with
    invariants checked in every visited state.
    """
    code = example1_code(F)
    res = explore_schedules(
        code, [(0, 0, np.array([2]))], max_states=10_000,
        invariant=d10_invariant,
    )
    assert not res.violations
    assert res.states_visited >= 10_000 - 1 or not res.truncated
    # DFS reaches terminal states early even under the bound
    assert res.final_semantic_states
    assert res.confluent


def test_liveness_no_livelocked_states():
    """Every reachable state can reach quiescence (Theorem 4.5's
    "eventually", verified as reverse reachability over the full graph)."""
    res = explore_schedules(
        tiny_code(),
        [(0, 0, np.array([3])), (1, 1, np.array([5]))],
        max_states=100_000,
        check_liveness=True,
    )
    assert not res.truncated
    assert res.livelocked_states == 0
    assert res.ok


def test_liveness_single_write():
    res = explore_schedules(
        tiny_code(), [(2, 1, np.array([6]))], check_liveness=True
    )
    assert res.livelocked_states == 0
    assert res.ok


def _settle(explorer, state, code):
    while any(c[0] < code.N and c[1] < code.N for c in state.net.channels()):
        for chan in state.net.channels():
            if chan[0] < code.N and chan[1] < code.N:
                state.net.deliver(*chan)
        explorer._drain_client_channels(state)


def test_read_liveness_model_checked():
    """A decode-path read racing a second write's propagation: every
    schedule of the combined app/del/val_inq/val_resp traffic must complete
    the read before quiescence (Theorem 4.3, exhaustively)."""
    code = tiny_code()
    explorer = StateExplorer(code, max_states=150_000)
    state = explorer.initial_state()
    explorer.issue_write(state, 0, 0, np.array([3]))
    _settle(explorer, state, code)  # GC drains every uncoded copy
    explorer.issue_write(state, 0, 0, np.array([4]))
    explorer.issue_read(state, 2, 0)  # must decode via {s2, s3} or catch
    res = explorer.explore(state)  # the racing app -- in every schedule
    assert not res.truncated
    assert res.states_visited > 300
    assert not res.violations  # includes the pending-read terminal check
    assert res.confluent


def test_read_liveness_local_race():
    """The simple case: a read racing the very first write is served from
    the initial history entry (locally) under every schedule."""
    code = tiny_code()
    explorer = StateExplorer(code, max_states=150_000)
    state = explorer.initial_state()
    explorer.issue_write(state, 0, 1, np.array([6]))
    state.net.deliver(0, 1)  # one app lands; the rest stays adversarial
    explorer._drain_client_channels(state)
    explorer.issue_read(state, 2, 1)
    res = explorer.explore(state)
    assert not res.truncated
    assert not res.violations
    assert res.confluent


def test_exploration_with_crashed_server():
    """Halt one server before exploring: every schedule of the surviving
    traffic keeps invariants, completes reads via the surviving recovery
    set, and converges to a single (degraded) quiescent state."""
    code = tiny_code()
    explorer = StateExplorer(code, max_states=150_000,
                             invariant=d10_invariant)
    state = explorer.initial_state()
    explorer.issue_write(state, 0, 0, np.array([3]))
    _settle(explorer, state, code)
    # server 1 (stores x2) dies; X1 remains recoverable via {0} and {1,2}..
    # halting 2 (stores x1+x2) instead keeps both X1 and X2 readable:
    state.servers[2].halt()
    state.net.halt(2)
    explorer.issue_write(state, 0, 0, np.array([5]))
    explorer.issue_read(state, 1, 0)  # needs {0} remote or the racing app
    res = explorer.explore(state)
    assert not res.truncated
    assert not res.violations  # reads completed in every schedule
    assert res.confluent


def test_exploration_crash_stalls_gc_but_stays_safe():
    """With a server dead, deletion acknowledgements never complete; every
    schedule still satisfies the invariants and converges, but history
    lists legitimately retain the undeletable version."""
    code = tiny_code()
    explorer = StateExplorer(code, max_states=150_000,
                             invariant=d10_invariant)
    state = explorer.initial_state()
    explorer.issue_write(state, 1, 1, np.array([4]))
    _settle(explorer, state, code)
    state.servers[0].halt()
    state.net.halt(0)
    explorer.issue_write(state, 1, 1, np.array([6]))
    res = explorer.explore(state)
    assert not res.truncated
    assert not res.violations
    assert res.confluent
