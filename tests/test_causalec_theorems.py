"""Executable versions of the paper's theorems (4.1-4.5) and properties I-IV."""

import numpy as np
import pytest

from repro import (
    CausalECCluster,
    ConstantLatency,
    PrimeField,
    ServerConfig,
    UniformLatency,
    check_causal_consistency,
    check_eventual_visibility,
    example1_code,
    six_dc_code,
)
from repro.consistency.causal import expected_final_value
from repro.workloads import ClosedLoopDriver, WorkloadConfig


def run_workload(code, seed, ops=40, gc_interval=20.0, latency=None):
    cluster = CausalECCluster(
        code,
        latency=latency or UniformLatency(0.5, 10.0),
        seed=seed,
        config=ServerConfig(gc_interval=gc_interval),
    )
    driver = ClosedLoopDriver(
        cluster,
        num_objects=code.K,
        config=WorkloadConfig(ops_per_client=ops, read_ratio=0.5, seed=seed),
    )
    driver.run()
    cluster.run(for_time=3000)
    return cluster


# ---------------------------------------------------------------------------
# Theorem 4.1: causal consistency


@pytest.mark.parametrize("seed", range(5))
def test_theorem_41_causal_consistency(seed):
    cluster = run_workload(example1_code(PrimeField(257)), seed)
    cluster.assert_no_reencoding_errors()
    check_causal_consistency(cluster.history, cluster.code.zero_value())


def test_theorem_41_six_dc_code():
    cluster = run_workload(six_dc_code(PrimeField(257)), seed=11)
    cluster.assert_no_reencoding_errors()
    check_causal_consistency(cluster.history, cluster.code.zero_value())


# ---------------------------------------------------------------------------
# Theorem 4.2: writes always terminate (locally)


def test_theorem_42_writes_terminate_even_with_all_others_halted():
    cluster = CausalECCluster(
        example1_code(PrimeField(257)), latency=ConstantLatency(1.0)
    )
    for s in range(1, 5):
        cluster.halt_server(s)
    c = cluster.add_client(server=0)
    for i in range(5):
        op = cluster.execute(c.write(0, cluster.value(i + 1)))
        assert op.done


# ---------------------------------------------------------------------------
# Theorem 4.3: reads terminate given one live recovery set


def test_theorem_43_read_survives_halts_outside_recovery_set():
    """Read X2 at server 5 with only {4, 5} alive ({4,5} recovers X2)."""
    cluster = CausalECCluster(
        example1_code(PrimeField(257)), latency=ConstantLatency(1.0)
    )
    writer = cluster.add_client(server=0)
    cluster.execute(writer.write(1, cluster.value(21)))
    cluster.run(for_time=100)
    for s in (0, 1, 2):
        cluster.halt_server(s)
    reader = cluster.add_client(server=4)
    op = cluster.execute(reader.read(1))
    assert op.done
    assert np.array_equal(op.value, cluster.value(21))


def test_theorem_43_local_recovery_survives_everything_else():
    """Read X1 at server 1 ({1} is a recovery set) with all others down."""
    cluster = CausalECCluster(
        example1_code(PrimeField(257)), latency=ConstantLatency(1.0)
    )
    writer = cluster.add_client(server=0)
    cluster.execute(writer.write(0, cluster.value(9)))
    cluster.run(for_time=100)
    for s in range(1, 5):
        cluster.halt_server(s)
    reader = cluster.add_client(server=0)
    op = cluster.execute(reader.read(0))
    assert np.array_equal(op.value, cluster.value(9))


def test_read_blocks_when_no_recovery_set_alive():
    """Sanity inverse: with every recovery set broken the read cannot end."""
    cluster = CausalECCluster(
        example1_code(PrimeField(257)), latency=ConstantLatency(1.0)
    )
    writer = cluster.add_client(server=0)
    cluster.execute(writer.write(1, cluster.value(5)))
    cluster.run(for_time=200)  # ensure GC removed uncoded copies
    # X2's recovery sets all intersect {2, 4, 5} (1-indexed {2},{4,5},...):
    # halting servers 2, 4, 5 (0-indexed 1, 3, 4) breaks every one of them.
    for s in (1, 3, 4):
        cluster.halt_server(s)
    reader = cluster.add_client(server=2)
    op = reader.read(1)
    cluster.run(for_time=5_000)
    assert not op.done


# ---------------------------------------------------------------------------
# Theorem 4.4: eventual consistency / eventual visibility


@pytest.mark.parametrize("seed", [3, 17])
def test_theorem_44_eventual_visibility(seed):
    code = example1_code(PrimeField(257))
    cluster = run_workload(code, seed, ops=30)
    final = {}
    for obj in range(code.K):
        vals = []
        for s in range(code.N):
            client = cluster.add_client(server=s)
            op = cluster.execute(client.read(obj))
            assert op.done
            vals.append(op.value)
        final[obj] = vals
    check_eventual_visibility(
        cluster.history, final, code.zero_value()
    )


# ---------------------------------------------------------------------------
# Theorem 4.5: storage converges to exactly the code's prescription


@pytest.mark.parametrize("gc_interval", [None, 15.0])
def test_theorem_45_transient_state_vanishes(gc_interval):
    code = example1_code(PrimeField(257))
    cluster = CausalECCluster(
        code,
        latency=UniformLatency(0.5, 8.0),
        seed=5,
        config=ServerConfig(gc_interval=gc_interval),
    )
    driver = ClosedLoopDriver(
        cluster, num_objects=3,
        config=WorkloadConfig(ops_per_client=25, read_ratio=0.3, seed=5),
    )
    driver.run()
    assert cluster.total_history_entries() > 0  # transient state existed
    cluster.run(for_time=5000)
    # (a) history lists empty, (b) InQueue empty, (c) ReadL empty
    for s in cluster.servers:
        assert s.history_size() == 0, f"server {s.node_id} retains history"
        assert len(s.inqueue) == 0
        assert len(s.readl) == 0
    # stable state: the only value-bearing state is the codeword symbol
    for s in cluster.servers:
        assert s.stored_value_bits(1.0) == code.symbols_at(s.node_id)


def test_theorem_45_codeword_encodes_final_values():
    """After quiescence every codeword symbol is the code's encoding of the
    arbitration winners -- the stable state the code prescribes."""
    code = example1_code(PrimeField(257))
    cluster = run_workload(code, seed=23, ops=20)
    finals = [
        expected_final_value(cluster.history, obj, code.zero_value())
        for obj in range(code.K)
    ]
    for s in range(code.N):
        expected = code.encode(s, finals)
        assert np.array_equal(cluster.server(s).M.value, expected)
