"""Tests for message cost accounting and the cluster public API."""

import numpy as np
import pytest

from repro import (
    CausalECCluster,
    ConstantLatency,
    CostModel,
    PrimeField,
    ServerConfig,
    example1_code,
)
from repro.core.messages import App, Del, ReadReturn, ValInq, WriteAck
from repro.core.tags import Tag, VectorClock


# ---------------------------------------------------------------------------
# cost model


def test_cost_model_size():
    cm = CostModel(value_bits=100.0, tag_bits=10.0, header_bits=2.0)
    assert cm.size() == 2.0
    assert cm.size(n_values=3) == 302.0
    assert cm.size(n_values=1, n_tags=4) == 142.0


def test_message_kinds():
    t = Tag(VectorClock((1, 0)), 3)
    assert App(0, np.array([1]), t).kind == "app"
    assert Del(0, t).kind == "del"
    assert ValInq(1, "op", 0, {}).kind == "val_inq"
    assert WriteAck("op").kind == "write-return-ack"
    assert ReadReturn("op", np.array([1])).kind == "read-return"


def test_app_messages_carry_value_and_tag_costs():
    cm = CostModel(value_bits=1000.0, tag_bits=50.0, header_bits=0.0)
    cluster = CausalECCluster(
        example1_code(PrimeField(257)),
        latency=ConstantLatency(1.0),
        config=ServerConfig(cost_model=cm),
    )
    client = cluster.add_client(0)
    cluster.execute(client.write(0, cluster.value(1)))
    cluster.run(for_time=50)
    # 4 app messages at 1 value + 1 tag each
    assert cluster.stats.bits["app"] == pytest.approx(4 * 1050.0)


def test_val_inq_carries_k_tags():
    cm = CostModel(value_bits=0.0, tag_bits=7.0, header_bits=0.0)
    code = example1_code(PrimeField(257))
    cluster = CausalECCluster(
        code,
        latency=ConstantLatency(1.0),
        config=ServerConfig(cost_model=cm, gc_interval=10.0),
    )
    writer = cluster.add_client(0)
    cluster.execute(writer.write(1, cluster.value(2)))
    cluster.run(for_time=2000)  # drain so the next read goes remote
    reader = cluster.add_client(4)
    before = cluster.stats.bits.get("val_inq", 0.0)
    cluster.execute(reader.read(1))
    per_inq = (cluster.stats.bits["val_inq"] - before) / 4  # broadcast to 4
    assert per_inq == pytest.approx(code.K * 7.0)


# ---------------------------------------------------------------------------
# cluster API


def test_cluster_value_coercion():
    cluster = CausalECCluster(example1_code(PrimeField(257), value_len=3))
    v = cluster.value(5)
    assert v.tolist() == [5, 5, 5]
    v2 = cluster.value([1, 2, 3])
    assert v2.tolist() == [1, 2, 3]
    with pytest.raises(ValueError):
        cluster.value([1, 2, 300])  # out of field range


def test_cluster_add_client_validates_server():
    cluster = CausalECCluster(example1_code(PrimeField(257)))
    with pytest.raises(ValueError):
        cluster.add_client(server=9)


def test_cluster_now_and_stats():
    cluster = CausalECCluster(
        example1_code(PrimeField(257)), latency=ConstantLatency(1.0)
    )
    assert cluster.now == 0.0
    c = cluster.add_client(0)
    cluster.execute(c.write(0, cluster.value(1)))
    assert cluster.now > 0.0
    assert cluster.stats.total_messages > 0


def test_cluster_settle_reaches_fixpoint():
    cluster = CausalECCluster(
        example1_code(PrimeField(257)),
        latency=ConstantLatency(1.0),
        config=ServerConfig(gc_interval=20.0),
    )
    c = cluster.add_client(0)
    cluster.execute(c.write(0, cluster.value(1)))
    cluster.settle()
    assert cluster.total_transient_entries() == 0


def test_server_requires_valid_index():
    from repro.core.server import CausalECServer
    from repro.sim import Network, Scheduler

    code = example1_code(PrimeField(257))
    sched = Scheduler()
    net = Network(sched)
    with pytest.raises(ValueError):
        CausalECServer(7, sched, net, code)


def test_execute_returns_op_even_when_stuck():
    cluster = CausalECCluster(
        example1_code(PrimeField(257)), latency=ConstantLatency(1.0)
    )
    for s in range(1, 5):
        cluster.halt_server(s)
    # server 1 alone cannot serve X2 after... actually X2 has no local copy
    # at server 1 initially? initial zero entry serves it; write first:
    c = cluster.add_client(0)
    cluster.execute(c.write(1, cluster.value(3)))
    op = cluster.execute(c.read(1))  # local list still has it: completes
    assert op.done


def test_history_records_invoke_and_response_times():
    cluster = CausalECCluster(
        example1_code(PrimeField(257)), latency=ConstantLatency(2.0)
    )
    c = cluster.add_client(0)
    op = cluster.execute(c.write(0, cluster.value(1)))
    assert op.invoke_time < op.response_time
    assert cluster.history.operations[0] is op
