"""Basic CausalEC behaviours on the Example 1 (5,3) code."""

import numpy as np
import pytest

from repro import (
    CausalECCluster,
    ConstantLatency,
    PrimeField,
    example1_code,
    reed_solomon_code,
    replication_code,
)


@pytest.fixture
def cluster():
    return CausalECCluster(
        example1_code(PrimeField(257)), latency=ConstantLatency(1.0), seed=0
    )


def v(cluster, x):
    return cluster.value(x)


# ---------------------------------------------------------------------------
# reads and writes


def test_initial_read_returns_zero(cluster):
    c = cluster.add_client(server=3)
    op = cluster.execute(c.read(0))
    assert np.array_equal(op.value, cluster.code.zero_value())


def test_write_is_local_one_round_trip(cluster):
    """Property (I): writes return after one client<->server round trip."""
    c = cluster.add_client(server=2)
    op = cluster.execute(c.write(1, v(cluster, 9)))
    assert op.done
    assert op.latency == pytest.approx(2.0)  # 1 ms each way, no server waits


def test_read_own_write_local(cluster):
    c = cluster.add_client(server=0)
    cluster.execute(c.write(0, v(cluster, 5)))
    op = cluster.execute(c.read(0))
    assert np.array_equal(op.value, v(cluster, 5))
    assert op.latency == pytest.approx(2.0)
    assert cluster.server(0).stats.local_reads >= 1


def test_read_propagated_write_local(cluster):
    c0 = cluster.add_client(server=0)
    c1 = cluster.add_client(server=1)
    cluster.execute(c0.write(1, v(cluster, 7)))
    cluster.run(for_time=10)  # let the app message land
    op = cluster.execute(c1.read(1))
    assert np.array_equal(op.value, v(cluster, 7))
    assert op.latency == pytest.approx(2.0)


def test_remote_read_decodes_from_recovery_set(cluster):
    """A read at server 5 for X2 after GC must decode via {4, 5}."""
    c0 = cluster.add_client(server=1)
    c4 = cluster.add_client(server=4)
    cluster.execute(c0.write(1, v(cluster, 11)))
    cluster.run(for_time=200)  # propagate + encode + garbage collect
    assert cluster.server(4).history_size() == 0  # X2's value was GC'd
    op = cluster.execute(c4.read(1))
    assert np.array_equal(op.value, v(cluster, 11))
    assert cluster.server(4).stats.remote_reads >= 1


def test_overwrite_returns_latest(cluster):
    c = cluster.add_client(server=0)
    cluster.execute(c.write(0, v(cluster, 1)))
    cluster.execute(c.write(0, v(cluster, 2)))
    cluster.execute(c.write(0, v(cluster, 3)))
    op = cluster.execute(c.read(0))
    assert np.array_equal(op.value, v(cluster, 3))


def test_two_objects_independent(cluster):
    c = cluster.add_client(server=0)
    cluster.execute(c.write(0, v(cluster, 1)))
    cluster.execute(c.write(2, v(cluster, 2)))
    assert np.array_equal(cluster.execute(c.read(0)).value, v(cluster, 1))
    assert np.array_equal(cluster.execute(c.read(2)).value, v(cluster, 2))


def test_client_well_formedness(cluster):
    c = cluster.add_client(server=0)
    c.write(0, v(cluster, 1))  # not yet completed
    with pytest.raises(RuntimeError):
        c.read(0)


def test_vector_values():
    code = example1_code(PrimeField(257), value_len=4)
    cluster = CausalECCluster(code, latency=ConstantLatency(1.0))
    c = cluster.add_client(server=0)
    val = np.array([1, 2, 3, 4])
    cluster.execute(c.write(0, val))
    cluster.run(for_time=50)
    c4 = cluster.add_client(server=4)
    op = cluster.execute(c4.read(0))
    assert np.array_equal(op.value, val)


# ---------------------------------------------------------------------------
# codeword state


def test_codeword_reencoded_after_write(cluster):
    c = cluster.add_client(server=0)
    cluster.execute(c.write(0, v(cluster, 5)))
    cluster.run(for_time=100)
    # server 4 stores x1 + 2 x2 + x3; with x2 = x3 = 0 its symbol is x1 = 5
    assert int(cluster.server(4).M.value[0][0]) == 5
    # server 3 stores x1 + x2 + x3 = 5
    assert int(cluster.server(3).M.value[0][0]) == 5
    # server 1 stores x2 = 0
    assert int(cluster.server(1).M.value[0][0]) == 0


def test_codeword_tagvec_advances_everywhere(cluster):
    c = cluster.add_client(server=2)
    op = cluster.execute(c.write(0, v(cluster, 5)))
    cluster.run(for_time=300)
    for s in cluster.servers:
        assert s.M.tagvec[0] == op.tag  # including servers not storing X1


def test_replication_code_reads_always_local():
    cluster = CausalECCluster(
        replication_code(num_servers=3, num_objects=2),
        latency=ConstantLatency(1.0),
    )
    c0, c2 = cluster.add_client(0), cluster.add_client(2)
    cluster.execute(c0.write(0, cluster.value(3)))
    cluster.run(for_time=50)
    op = cluster.execute(c2.read(0))
    assert np.array_equal(op.value, cluster.value(3))
    assert cluster.server(2).stats.remote_reads == 0


def test_mds_code_property_ii_round_trip():
    """RS(5,3): reads decode with one round trip to any recovery set."""
    cluster = CausalECCluster(
        reed_solomon_code(PrimeField(257), 5, 3),
        latency=ConstantLatency(2.0),
    )
    writer = cluster.add_client(server=0)
    cluster.execute(writer.write(2, cluster.value(8)))
    cluster.run(for_time=500)
    reader = cluster.add_client(server=4)  # parity server: remote read
    op = cluster.execute(reader.read(2))
    assert np.array_equal(op.value, cluster.value(8))
    # client->server (2ms)*2 + server->recovery-set round trip (2ms)*2 = 8ms
    assert op.latency == pytest.approx(8.0)


def test_no_reencoding_errors(cluster):
    c = cluster.add_client(server=0)
    for i in range(5):
        cluster.execute(c.write(i % 3, v(cluster, i + 1)))
    cluster.run(for_time=500)
    cluster.assert_no_reencoding_errors()
