"""Tests for the grouped multi-key store (Sec. 4.2's per-group codes)."""

import pytest

from repro import ConstantLatency, PrimeField, ServerConfig, UniformLatency
from repro.ec import example1_code
from repro.kv.grouped import GroupedCausalKVStore


def make_store(num_keys=7, **kwargs):
    keys = [f"key{i:03d}" for i in range(num_keys)]
    kwargs.setdefault("latency", ConstantLatency(1.0))
    return GroupedCausalKVStore(keys, **kwargs)


def test_grouping_layout():
    store = make_store(num_keys=7, group_size=3)
    assert store.num_groups == 3
    assert [len(g) for g in store.group_keys] == [3, 3, 1]
    assert store.locate("key000") == (0, 0)
    assert store.locate("key004") == (1, 1)
    assert store.locate("key006") == (2, 0)


def test_put_get_across_groups():
    store = make_store(num_keys=7, group_size=3)
    s = store.session(0)
    for i in range(7):
        s.put(f"key{i:03d}", f"value-{i}".encode())
    store.settle()
    remote = store.session(4)
    for i in range(7):
        assert remote.get(f"key{i:03d}") == f"value-{i}".encode()


def test_unwritten_keys_empty():
    store = make_store()
    assert store.session(2).get("key005") == b""


def test_unknown_key():
    store = make_store()
    with pytest.raises(KeyError):
        store.locate("missing")


def test_duplicate_keys_rejected():
    with pytest.raises(ValueError, match="distinct"):
        GroupedCausalKVStore(["a", "a"])


def test_empty_keys_rejected():
    with pytest.raises(ValueError, match="at least one"):
        GroupedCausalKVStore([])


def test_bad_group_size():
    with pytest.raises(ValueError, match="group_size"):
        make_store(group_size=0)


def test_custom_code_factory():
    def factory(n, k, vlen):
        if k == 3:
            return example1_code(PrimeField(257), value_len=vlen)
        from repro.ec import reed_solomon_code

        return reed_solomon_code(PrimeField(257), n, k, value_len=vlen)

    store = make_store(num_keys=4, group_size=3, code_factory=factory)
    assert store.clusters[0].code.name.startswith("example1")
    s = store.session(1)
    s.put("key001", b"mixed")
    store.settle()
    assert store.session(3).get("key001") == b"mixed"


def test_session_read_your_writes_across_groups():
    store = make_store(num_keys=9, group_size=2,
                       latency=UniformLatency(0.5, 10.0))
    s = store.session(2)
    for i in range(9):
        key = f"key{i:03d}"
        s.put(key, f"v{i}".encode())
        assert s.get(key) == f"v{i}".encode()


def test_crash_site_affects_all_groups():
    store = make_store(num_keys=6, group_size=3)  # RS(5,3): 2-fault tolerant
    s = store.session(0)
    s.put("key000", b"a")
    s.put("key004", b"b")
    store.settle()
    store.crash_site(0)
    store.crash_site(1)
    r = store.session(3)
    assert r.get("key000") == b"a"
    assert r.get("key004") == b"b"


def test_groups_drain_independently():
    store = make_store(num_keys=6, group_size=3,
                       config=ServerConfig(gc_interval=20.0))
    s = store.session(0)
    for i in range(6):
        s.put(f"key{i:03d}", bytes([i]))
    store.settle(for_time=10_000)
    assert store.total_transient_entries() == 0


def test_shared_clock():
    store = make_store(num_keys=4, group_size=2)
    s = store.session(0)
    s.put("key000", b"x")  # group 0
    t1 = store.scheduler.now
    s.put("key002", b"y")  # group 1, later on the SAME clock
    assert store.scheduler.now > t1


def test_message_accounting_aggregates():
    store = make_store(num_keys=4, group_size=2)
    s = store.session(0)
    s.put("key000", b"x")
    store.settle()
    assert store.total_messages() > 0
